#!/usr/bin/env python3
"""Quickstart: build an index shard, run a query, try intra-query parallelism.

Builds a small synthetic web shard, executes one query sequentially and
at several parallelism degrees, and prints the ranked results, the work
accounting, and the speedup — the per-query mechanics everything else in
this library is built on.

Run:  python examples/quickstart.py
"""

from repro import quickstart_workbench


def main() -> None:
    print("Building a small synthetic shard (4k docs)...")
    workbench = quickstart_workbench(seed=7)
    engine = workbench.engine
    print(f"  corpus: {workbench.corpus}")
    print(f"  index:  {workbench.index}\n")

    # Draw realistic queries and demo the longest one — short queries
    # don't benefit from parallelism (that asymmetry is the point of the
    # paper; see the degree table at the end).
    generator = workbench.query_generator()
    candidates = generator.sample_many(60)
    query = max(candidates, key=lambda q: engine.execute(q, 1).latency)
    print(f"query (longest of 60 sampled): {query}\n")

    # Sequential execution.
    sequential = engine.execute(query, degree=1)
    print("top-k results (sequential):")
    for ranked in sequential.results[:5]:
        print(
            f"  #{ranked.rank}  doc {ranked.doc_id:>6}  score {ranked.score:.4f}"
        )
    print(
        f"\nwork: {sequential.chunks_evaluated} chunks, "
        f"{sequential.postings_scanned} postings, "
        f"{sequential.docs_matched} matches "
        f"(terminated early: {sequential.terminated_early}, "
        f"rule: {sequential.termination_rule})"
    )
    print(f"sequential latency: {sequential.latency * 1e3:.3f} ms (virtual)\n")

    # The same query at increasing parallelism degrees. The chunk trace
    # is shared, so each chunk is evaluated only once.
    trace = engine.trace(query)
    print(f"{'degree':>6} {'latency_ms':>11} {'speedup':>8} "
          f"{'cpu_ms':>8} {'chunks':>7}")
    for degree in (1, 2, 4, 8):
        result = engine.execute_trace(trace, degree)
        print(
            f"{degree:>6} {result.latency * 1e3:>11.3f} "
            f"{sequential.latency / result.latency:>8.2f} "
            f"{result.cpu_time * 1e3:>8.3f} {result.chunks_evaluated:>7}"
        )
    print(
        "\nNote how CPU time (total work) grows with degree even as latency"
        "\nfalls: that efficiency loss is why degree must adapt to load."
        "\nRe-run the table with a short query (most of the other 59) and"
        "\nthe speedups drop below 1 — parallelism only pays on long queries."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Write your own parallelism policy and race it against the built-ins.

Demonstrates the policy plug-in surface: subclass
:class:`repro.policies.ParallelismPolicy`, implement ``choose_degree``,
and hand it to the simulator. Two custom policies are included:

* ``FreeCoresPolicy`` — grab all currently idle cores. Tempting, but a
  trap: each query monopolizes the machine, serializing execution into a
  convoy, and on the many *short* queries wide parallelism has speedup
  below 1 — so effective capacity collapses even at low load;
* ``UtilizationEwmaPolicy`` — smooth the in-system count with an EWMA
  before thresholding, trading reactivity for stability.

Run:  python examples/policy_playground.py
"""

from repro.core import AdaptiveSearchSystem, SystemConfig
from repro.policies import ParallelismPolicy, QueryInfo, SystemState
from repro.sim.experiment import LoadPointConfig, run_load_point
from repro.util.tables import Table
from repro.workloads import WorkbenchConfig, build_workbench


class FreeCoresPolicy(ParallelismPolicy):
    """Use every idle core for each arriving query."""

    name = "free-cores"

    def choose_degree(self, state: SystemState, info: QueryInfo) -> int:
        return max(1, state.free_cores)


class UtilizationEwmaPolicy(ParallelismPolicy):
    """Adaptive thresholds applied to an EWMA of queries-in-system."""

    name = "ewma-adaptive"

    def __init__(self, table, alpha: float = 0.2) -> None:
        self.table = table
        self.alpha = alpha
        self._smoothed = 1.0

    def choose_degree(self, state: SystemState, info: QueryInfo) -> int:
        self._smoothed = (
            self.alpha * state.n_in_system + (1 - self.alpha) * self._smoothed
        )
        return self.table.degree_for(max(1, round(self._smoothed)))


def main() -> None:
    print("Building and profiling the workbench...")
    workbench = build_workbench(WorkbenchConfig.small(seed=5))
    system = AdaptiveSearchSystem.from_workbench(
        workbench, SystemConfig(n_queries=300)
    )

    contenders = [
        system.policy("sequential"),
        system.policy("adaptive"),
        FreeCoresPolicy(),
        UtilizationEwmaPolicy(system.threshold_table),
    ]

    utilizations = (0.1, 0.4, 0.7)
    table = Table(
        ["utilization"] + [p.name for p in contenders],
        title="P99 latency (ms): custom policies vs built-ins",
    )
    for i, u in enumerate(utilizations):
        rate = system.rate_for_utilization(u)
        row = [u]
        for policy in contenders:
            summary = run_load_point(
                system.oracle,
                policy,
                LoadPointConfig(rate=rate, duration=5.0, warmup=1.0,
                                n_cores=system.n_cores, seed=60 + i),
            )
            row.append(summary.p99_latency * 1e3)
        table.add_row(row)
    table.print()

    print("free-cores melts down at every load: it serializes the machine")
    print("into one convoy of maximally-wide queries, and wide execution of")
    print("short queries has speedup < 1 — idle cores at dispatch time say")
    print("nothing about the queue forming behind. EWMA-adaptive tracks the")
    print("threshold policy, trading a little reactivity for stability.")


if __name__ == "__main__":
    main()

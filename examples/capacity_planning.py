#!/usr/bin/env python3
"""Capacity planning: latency-vs-load envelopes and SLO capacity.

The operator's question this answers: *how should I configure intra-query
parallelism on my index-serving nodes, and how many QPS can each node
take while meeting the P99 SLO?*

The script profiles a workbench, derives the adaptive policy, sweeps
arrival rates for sequential / fixed / adaptive configurations, prints
the P99-vs-load table, and solves for each policy's SLO capacity.

Run:  python examples/capacity_planning.py [--reference]
(default is a small, fast configuration; --reference uses the full
experiment scale and takes a few minutes.)
"""

import argparse

from repro.core import AdaptiveSearchSystem, SystemConfig, capacity_at_slo
from repro.util.tables import Table
from repro.workloads import WorkbenchConfig, build_workbench

POLICIES = ("sequential", "fixed-2", "fixed-4", "fixed-8", "adaptive")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reference", action="store_true",
                        help="full experiment scale (slower)")
    args = parser.parse_args()

    config = (
        WorkbenchConfig.reference() if args.reference else WorkbenchConfig.small()
    )
    print("Building and profiling the workbench "
          f"({config.corpus.n_docs} docs)...")
    workbench = build_workbench(config)
    system = AdaptiveSearchSystem.from_workbench(
        workbench, SystemConfig(n_queries=600 if args.reference else 300)
    )

    print(f"\nderived threshold table: {system.threshold_table.describe()}")
    print(f"sequential saturation:   {system.saturation_rate:,.0f} QPS\n")

    utilizations = (0.05, 0.2, 0.4, 0.6, 0.8)
    duration = 12.0 if args.reference else 4.0
    comparison = system.sweep(POLICIES, utilizations, duration=duration,
                              warmup=duration / 4)

    table = Table(
        ["utilization"] + [system.policy(p).name for p in POLICIES],
        title="P99 latency (ms) vs load",
    )
    for i, u in enumerate(utilizations):
        table.add_row(
            [u]
            + [
                comparison.summaries[system.policy(p).name][i].p99_latency * 1e3
                for p in POLICIES
            ]
        )
    table.print()

    slo = 2.5 * system.service_distribution.percentile(99)
    print(f"SLO: P99 <= {slo * 1e3:.2f} ms (2.5 x idle sequential P99)\n")
    capacity_table = Table(["policy", "capacity_qps", "fraction_of_sequential"],
                           title="SLO capacity")
    sequential_capacity = None
    for policy in POLICIES:
        outcome = capacity_at_slo(system, policy, slo,
                                  duration=duration / 2, warmup=duration / 8)
        if policy == "sequential":
            sequential_capacity = outcome.capacity_qps
        fraction = (
            outcome.capacity_qps / sequential_capacity
            if sequential_capacity
            else float("nan")
        )
        capacity_table.add_row([policy, outcome.capacity_qps, fraction])
    capacity_table.print()

    print("Reading the tables: fixed parallelism buys low-load latency but")
    print("forfeits capacity; adaptive gets (nearly) both.\n")

    # Finally, the operator-level question: given a daily load shape and
    # the SLO, which configuration should this ISN run?
    from repro.core.planner import plan_deployment

    day_profile = [0.08, 0.05, 0.1, 0.25, 0.45, 0.6, 0.55, 0.35]
    plan = plan_deployment(
        system, slo=slo, load_profile=day_profile,
        candidates=("sequential", "fixed-4", "adaptive"),
        duration=duration / 2, warmup=duration / 8,
    )
    plan.to_table().print()
    print(f"recommended configuration: {plan.recommended}")


if __name__ == "__main__":
    main()

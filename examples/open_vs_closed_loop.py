#!/usr/bin/env python3
"""Open-loop vs closed-loop load generation near saturation.

The paper evaluates with open-loop (Poisson) arrivals — the right model
for a server behind millions of independent users: arrivals do not slow
down when the server does, so past saturation the queue and the latency
grow without bound. Closed-loop load generators (a fixed client pool)
self-throttle instead: each client waits for its response, so the system
pins at ~100% utilization with finite latency. Benchmarking a policy
with the wrong loop model can hide exactly the failure mode that matters.

This example pushes both loops past sequential saturation with the
fixed-4 policy (whose work inflation makes it saturate early) and with
adaptive (which doesn't).

Run:  python examples/open_vs_closed_loop.py
"""

from repro.core import AdaptiveSearchSystem, SystemConfig
from repro.sim.closedloop import ClosedLoopConfig, run_closed_loop_point
from repro.util.tables import Table
from repro.workloads import WorkbenchConfig, build_workbench

POLICIES = ("fixed-4", "adaptive")
UTILIZATION = 0.9  # past fixed-4's capacity, below sequential's


def main() -> None:
    print("Building and profiling the workbench...")
    workbench = build_workbench(WorkbenchConfig.small(seed=9))
    system = AdaptiveSearchSystem.from_workbench(
        workbench, SystemConfig(n_queries=300)
    )
    rate = system.rate_for_utilization(UTILIZATION)
    mean_t1 = system.oracle.mean_sequential_latency()

    # A client pool sized to offer roughly the same throughput when the
    # server keeps up: N ≈ rate x (think + service).
    think = 4.0 * mean_t1
    n_clients = max(1, round(rate * (think + mean_t1)))
    print(f"target load u={UTILIZATION} ({rate:,.0f} QPS); "
          f"closed loop: {n_clients} clients, think {think*1e3:.2f} ms\n")

    table = Table(
        ["policy", "loop", "throughput (QPS)", "utilization",
         "mean latency (ms)", "P99 latency (ms)"],
        title="Open vs closed loop at the same offered load",
    )
    for policy in POLICIES:
        open_summary = system.run_point(policy, rate, duration=6.0, warmup=1.5)
        table.add_row(
            [policy, "open", open_summary.throughput, open_summary.utilization,
             open_summary.mean_latency * 1e3, open_summary.p99_latency * 1e3]
        )
        closed_summary = run_closed_loop_point(
            system.oracle,
            system.policy(policy),
            ClosedLoopConfig(
                n_clients=n_clients, think_time=think, duration=6.0,
                warmup=1.5, n_cores=system.n_cores, seed=13,
            ),
        )
        table.add_row(
            [policy, "closed", closed_summary.throughput,
             closed_summary.utilization,
             closed_summary.mean_latency * 1e3,
             closed_summary.p99_latency * 1e3]
        )
    table.print()

    print("Under the open loop, fixed-4's latency explodes (offered load")
    print("exceeds its inflated-work capacity) while adaptive stays flat.")
    print("Under the closed loop the same overload shows up as *lost")
    print("throughput* and moderated latency — the clients are stuck")
    print("waiting, so the catastrophe is hidden from the latency axis.")


if __name__ == "__main__":
    main()

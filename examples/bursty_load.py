#!/usr/bin/env python3
"""Bursty traffic: how adaptive parallelism behaves under MMPP arrivals.

Production query streams are not Poisson — traffic arrives in bursts.
This example holds the *mean* load fixed and raises burstiness (the
ratio between the high- and low-intensity states of a 2-state MMPP),
comparing sequential, fixed-4, and adaptive execution.

Run:  python examples/bursty_load.py
"""

from repro.core import AdaptiveSearchSystem, SystemConfig
from repro.sim.arrivals import MMPP2Arrivals
from repro.util.rng import RngFactory
from repro.util.tables import Table
from repro.workloads import WorkbenchConfig, build_workbench

POLICIES = ("sequential", "fixed-4", "adaptive")
BURST_RATIOS = (1.0, 2.0, 4.0, 8.0)
MEAN_UTILIZATION = 0.3


def main() -> None:
    print("Building and profiling the workbench...")
    workbench = build_workbench(WorkbenchConfig.small(seed=2))
    system = AdaptiveSearchSystem.from_workbench(
        workbench, SystemConfig(n_queries=300)
    )
    mean_rate = system.rate_for_utilization(MEAN_UTILIZATION)
    print(f"mean load: u={MEAN_UTILIZATION} ({mean_rate:,.0f} QPS); "
          "20% of time in the burst state\n")

    factory = RngFactory(77)
    table = Table(
        ["burst_ratio"] + [system.policy(p).name for p in POLICIES]
        + ["adaptive mean degree"],
        title="P99 latency (ms) under bursty arrivals",
    )
    for i, ratio in enumerate(BURST_RATIOS):
        row = [ratio]
        adaptive_mean_degree = float("nan")
        for policy in POLICIES:
            arrivals = MMPP2Arrivals.with_mean_rate(
                mean_rate=mean_rate,
                burst_ratio=ratio,
                mean_dwell_s=0.05,
                rng=factory.stream("mmpp", i, policy),
            )
            summary = system.run_point(
                policy, mean_rate, duration=6.0, warmup=1.5,
                seed=31 + i, arrivals=arrivals,
            )
            row.append(summary.p99_latency * 1e3)
            if policy == "adaptive":
                adaptive_mean_degree = summary.mean_degree
        row.append(adaptive_mean_degree)
        table.add_row(row)
    table.print()

    print("At ratio 1 (Poisson) adaptive parallelizes aggressively; as")
    print("bursts intensify it backs off (falling mean degree) — static")
    print("fixed-4 has no such recourse and its tail explodes first.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Diurnal trace replay: adaptive parallelism over a synthetic 'day'.

Generates a timestamped workload trace whose arrival rate follows a
sinusoidal day/night pattern (trough ≈ 10% utilization, peak ≈ 60%),
saves it to JSONL, reloads it, and replays the *identical* stream under
the sequential and adaptive policies. The windowed report shows the
adaptive policy widening parallelism in the night trough (big tail-
latency cuts) and folding back to near-sequential at the daily peak.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import AdaptiveSearchSystem, SystemConfig
from repro.sim.arrivals import diurnal_arrivals
from repro.sim.experiment import run_trace_point
from repro.util.rng import RngFactory
from repro.util.tables import Table
from repro.workloads import WorkbenchConfig, build_workbench
from repro.workloads.trace import WorkloadTrace

DAY = 12.0  # simulated 'day' length in seconds
MEAN_UTILIZATION = 0.35
AMPLITUDE = 0.7


def main() -> None:
    print("Building and profiling the workbench...")
    workbench = build_workbench(WorkbenchConfig.small(seed=4))
    system = AdaptiveSearchSystem.from_workbench(
        workbench, SystemConfig(n_queries=300)
    )
    factory = RngFactory(2024)

    # --- Generate a diurnal trace over a pool of measured queries -----
    mean_rate = system.rate_for_utilization(MEAN_UTILIZATION)
    arrivals = diurnal_arrivals(
        base_rate=mean_rate, amplitude=AMPLITUDE, period_s=DAY,
        rng=factory.stream("arrivals"),
        phase=-np.pi / 2,  # start the day at the trough
    )
    trace = WorkloadTrace.generate(
        workbench.query_generator("trace"), arrivals, horizon=DAY
    )
    print(f"trace: {len(trace)} queries over {trace.horizon:.1f}s "
          f"(mean {trace.mean_rate:,.0f} QPS)")

    # --- Save / reload (JSONL round trip) ------------------------------
    path = Path(tempfile.gettempdir()) / "repro_diurnal_trace.jsonl"
    trace.save(path)
    trace = WorkloadTrace.load(path)
    print(f"saved and reloaded {path}\n")

    # --- Replay the identical stream under both policies ---------------
    # Trace queries are mapped onto the measured pool by sampling indices
    # (real traces repeat queries; the pool is the measured cost table).
    pool_rng = factory.stream("pool")
    indices = pool_rng.integers(system.oracle.n_queries, size=len(trace))

    window = DAY / 6.0
    table = Table(
        ["window (s)", "arrivals/s", "seq P99 (ms)", "adaptive P99 (ms)",
         "P99 cut", "adaptive mean degree"],
        title="Windowed replay over the 'day'",
    )
    results = {}
    for policy in ("sequential", "adaptive"):
        _, records = run_trace_point(
            system.oracle, system.policy(policy), trace.times,
            query_indices=indices, n_cores=system.n_cores,
        )
        results[policy] = records

    for w in range(int(DAY / window)):
        lo, hi = w * window, (w + 1) * window
        row = [f"{lo:.0f}-{hi:.0f}"]
        in_window = (trace.times >= lo) & (trace.times < hi)
        row.append(float(in_window.sum()) / window)
        cells = {}
        for policy in ("sequential", "adaptive"):
            lats = [r.latency for r in results[policy] if lo <= r.arrival < hi]
            cells[policy] = np.percentile(lats, 99) if lats else float("nan")
        row.append(cells["sequential"] * 1e3)
        row.append(cells["adaptive"] * 1e3)
        row.append(1.0 - cells["adaptive"] / cells["sequential"])
        degrees = [r.degree for r in results["adaptive"] if lo <= r.arrival < hi]
        row.append(float(np.mean(degrees)) if degrees else float("nan"))
        table.add_row(row)
    table.print()

    print("The adaptive column's mean degree follows the inverse of the")
    print("load curve: wide at the trough, near 1 at the peak — exactly")
    print("the behaviour that lets one configuration serve the whole day.")


if __name__ == "__main__":
    main()

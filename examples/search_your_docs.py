#!/usr/bin/env python3
"""Index and search your own documents (the adoption path).

Everything else in this repository runs on the synthetic corpus the
experiments need; this example shows the same engine serving real text:
ingest (text, static-rank) pairs, build the index, parse query strings,
and execute them — sequentially and in parallel.

Run:  python examples/search_your_docs.py
"""

from repro.corpus.ingest import ingest_documents, parse_query
from repro.engine import Engine, EngineConfig
from repro.index import IndexConfig, build_index

# A miniature "web": (text, static rank). Rank plays the PageRank role —
# higher-ranked pages are laid out first and win score ties.
PAGES = [
    ("Adaptive parallelism for web search cuts tail latency by choosing "
     "each query's degree of parallelism from the instantaneous load", 0.95),
    ("Index serving nodes hold an inverted index in memory and return "
     "the top k documents for every query", 0.90),
    ("Sequential query execution maximizes throughput but leaves long "
     "queries slow at low load", 0.70),
    ("Fixed parallelism wastes capacity because parallel execution of a "
     "query inflates its total work", 0.65),
    ("Early termination stops scanning once enough good matches are "
     "found in static rank order", 0.80),
    ("Tail latency service level objectives drive datacenter capacity "
     "planning for interactive services", 0.55),
    ("Work stealing balances dynamic chunks of the document space "
     "across worker threads", 0.50),
    ("A latency predictor can decide which queries deserve parallel "
     "execution", 0.45),
]

QUERIES = [
    "tail latency",
    "parallelism query execution",
    "inverted index memory",
    "static rank order",
]


def main() -> None:
    corpus, vocabulary = ingest_documents(PAGES)
    index = build_index(corpus, IndexConfig(chunk_size=4))
    engine = Engine(index, EngineConfig(max_degree=4))
    print(f"indexed {corpus.n_docs} documents, "
          f"{len(vocabulary)} distinct terms\n")

    for text in QUERIES:
        query = parse_query(text, vocabulary, k=3)
        result = engine.execute(query, degree=2)
        assert result.doc_ids == engine.execute(query, degree=1).doc_ids
        print(f"query: {text!r}  (parsed to {query.n_terms} terms)")
        if result.n_results == 0:
            print("   no conjunctive matches")
        for ranked in result.results:
            snippet = PAGES_BY_RANK[ranked.doc_id][:68]
            print(f"   #{ranked.rank} score {ranked.score:.3f}  {snippet}...")
        print()

    print("Parallel degree 2 returned identical results to sequential for")
    print("every query above — the executors share exact semantics; only")
    print("the (virtual) time differs.")


# Rebuild the id -> text mapping the way ingestion ordered documents
# (descending static rank, stable).
PAGES_BY_RANK = [
    text for text, _ in sorted(PAGES, key=lambda p: -p[1])
]


if __name__ == "__main__":
    main()

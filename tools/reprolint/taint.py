"""Determinism-taint dataflow rule R018.

The repo's guarantee is bit-identical experiment outputs across
refactors. The syntactic rules (R003 wall-clock in sim code, R010 RNG
streams) catch *direct* uses of nondeterministic machinery, but a value
that merely *derives* from one — an elapsed wall-clock delta, an
environment string, a ``set``'s iteration order — can flow through
assignments and helper calls into a serialized result undetected. R018
tracks that flow:

* **Sources** — wall-clock reads (``time.time``/``monotonic``/
  ``perf_counter``, ``datetime.now`` …), ad-hoc RNG (unseeded
  ``np.random.default_rng()``, the global ``random``/``np.random``
  streams, ``uuid.uuid4``, ``os.urandom``), environment reads
  (``os.environ``/``os.getenv``), ``id()``, and iteration or
  materialization of a ``set``/``frozenset`` (hash-randomized order).
* **Propagation** — assignments, arithmetic/boolean/compare/f-string
  expressions, container displays, attribute/subscript access on
  tainted values, pass-through builtins (``str``/``float``/…), and
  calls into project functions via the ``project.py`` call graph
  (tainted arguments taint the matched parameters; a callee returning a
  tainted value taints the call result — computed as memoized function
  summaries).
* **Sinks** — declared per tree in ``layers.toml`` ``[taint]``:
  ``sink_modules`` (kernel decisions, serialized results, provenance
  manifests) and ``sink_functions``. A tainted value passed to a sink
  call, or returned / stored to an attribute or subscript *inside* a
  sink module, is a finding.
* **Sanitizers** — ``sorted()`` plus the callables declared in
  ``[taint] sanitizers`` (e.g. ``VirtualClock``, ``RngFactory``)
  produce clean values no matter their inputs, killing taint.

Like the other layer-driven rules the analysis is sound-by-omission: a
tree with no layer map or no ``[taint]`` section produces no findings,
unresolvable calls propagate nothing, and only locally-trackable values
are followed (instance attributes are not modelled).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.reprolint.asyncsafety import _canonical, _terminal
from tools.reprolint.core import FileContext, Finding, Rule, register
from tools.reprolint.layers import LayerMap, find_layer_map, module_matches
from tools.reprolint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    match_call_args,
)

#: canonical dotted names whose call result is a wall-clock reading
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "time.localtime",
    "time.gmtime",
}
#: canonical dotted names whose call result is ad-hoc (unreplayable) RNG
_ADHOC_RNG_CALLS = {
    "numpy.random.rand", "numpy.random.randn", "numpy.random.randint",
    "numpy.random.random", "numpy.random.random_sample",
    "numpy.random.choice", "numpy.random.normal", "numpy.random.uniform",
    "numpy.random.permutation", "numpy.random.shuffle",
    "uuid.uuid4", "uuid.uuid1", "os.urandom", "secrets.token_bytes",
    "secrets.token_hex", "secrets.randbelow",
}
#: `random.<fn>()` module-level calls draw from the global stream
_GLOBAL_RANDOM_PREFIX = "random."
#: seeded-when-given-an-argument constructors: a *bare* call is a source
_SEEDABLE_CONSTRUCTORS = {
    "numpy.random.default_rng", "numpy.random.RandomState", "random.Random",
}
#: builtins whose result carries the taint of their arguments
_PASSTHROUGH_BUILTINS = {
    "str", "repr", "format", "int", "float", "bool", "round", "abs",
    "min", "max", "sum", "tuple", "list", "dict", "zip", "enumerate",
    "reversed", "map", "filter", "next", "iter", "divmod", "pow",
}
#: builtins that are always-clean no matter the argument
_BUILTIN_SANITIZERS = {"sorted", "len", "isinstance", "hash", "type", "print"}
#: set-producing builtins (results have hash-randomized iteration order)
_SET_CONSTRUCTORS = {"set", "frozenset"}
#: set methods that return another set (order nondeterminism persists)
_SET_COMBINATORS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}


@dataclass(frozen=True)
class Taint:
    """Where a nondeterministic value came from."""

    kind: str  # "wall-clock read", "environment read", ...
    site: str  # "path:line" of the originating expression

    def describe(self) -> str:
        return f"{self.kind} at {self.site}"


class _Scope:
    """Mutable per-scope analysis state."""

    __slots__ = ("env", "sets")

    def __init__(
        self,
        env: Optional[Dict[str, Taint]] = None,
        sets: Optional[Set[str]] = None,
    ) -> None:
        #: local name -> taint of its current value
        self.env: Dict[str, Taint] = dict(env or {})
        #: local names currently bound to set-valued expressions
        self.sets: Set[str] = set(sets or ())


@register
class DeterminismTaintRule(Rule):
    """R018 — no nondeterministic value may flow into a declared sink."""

    rule_id = "R018"
    summary = "no wall-clock/RNG/env/set-order taint into results or kernel"
    rationale = (
        "Bit-identical outputs are the repo's core guarantee. A value "
        "derived from a wall-clock read, an unseeded RNG, os.environ, "
        "id(), or set iteration order that reaches a kernel decision, a "
        "serialized experiment result, or a provenance manifest makes "
        "outputs differ across runs and hosts in ways no syntactic rule "
        "can see. Taint is tracked through assignments, expressions, and "
        "project calls; sorted() and the sanitizers declared in "
        "layers.toml [taint] kill it."
    )
    project_rule = True

    #: hard cap on summary recursion depth (paranoid cycle guard)
    _MAX_DEPTH = 24

    def check_project(
        self, ctxs: Sequence[FileContext], project: ProjectModel
    ) -> Iterator[Finding]:
        self._project = project
        self._findings: List[Finding] = []
        self._emitted: Set[Tuple[str, int, str]] = set()
        #: (qualname, frozen tainted-param items) -> returns-taint flag
        self._summaries: Dict[Tuple[str, frozenset], Optional[Taint]] = {}
        self._in_progress: Set[Tuple[str, frozenset]] = set()
        #: id(fn.node) -> inferred local types (recomputed at every
        #: nesting level of _walk otherwise — a hot-path cost)
        self._local_types: Dict[int, Dict[str, ClassInfo]] = {}

        for ctx in ctxs:
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            layer_map = find_layer_map(ctx.path)
            if layer_map is None or not layer_map.taint.enabled:
                continue
            scope = _Scope()
            self._walk(
                ctx.tree.body, scope, ctx, module, layer_map, None, None, 0
            )
            for fn, owner in self._functions(module):
                if not isinstance(
                    fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                self._walk(
                    list(fn.node.body), _Scope(), ctx, module, layer_map,
                    fn, owner, 0,
                )
        yield from sorted(self._findings)

    @staticmethod
    def _functions(
        module: ModuleInfo,
    ) -> Iterator[Tuple[FunctionInfo, Optional[ClassInfo]]]:
        for fn in module.functions.values():
            yield fn, None
        for cls_info in module.classes.values():
            for fn in cls_info.methods.values():
                yield fn, cls_info

    # ------------------------------------------------------------------
    # Statement walk
    # ------------------------------------------------------------------

    def _walk(
        self,
        statements: Sequence[ast.stmt],
        scope: _Scope,
        ctx: FileContext,
        module: ModuleInfo,
        layer_map: LayerMap,
        fn: Optional[FunctionInfo],
        owner: Optional[ClassInfo],
        depth: int,
    ) -> None:
        # Return/store findings inside sink modules are reported only at
        # depth 0 (the module's own analysis): when a summary walk at
        # depth > 0 carries taint in via a parameter, the *call site*
        # finding already covers that flow.
        in_sink = depth == 0 and (
            self._sink_prefix(module, layer_map) is not None
        )
        local_types: Dict[str, ClassInfo] = {}
        if fn is not None:
            key = id(fn.node)
            if key not in self._local_types:
                self._local_types[key] = self._project.infer_local_types(
                    fn, owner
                )
            local_types = self._local_types[key]
        for statement in statements:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # separate scope, seeded independently
            # Inspect every call in the statement for sink flows and
            # interprocedural propagation.
            for node in self._own_nodes(statement):
                if isinstance(node, ast.Call):
                    self._visit_call(
                        node, scope, ctx, module, layer_map, local_types,
                        owner, depth,
                    )
            if isinstance(statement, ast.Assign):
                taint = self._taint_of(statement.value, scope, ctx, module,
                                       layer_map, local_types, owner, depth)
                is_set = self._is_set_expr(statement.value, scope)
                for target in statement.targets:
                    self._assign(target, taint, is_set, scope)
                    if in_sink and taint is not None and isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ):
                        self._emit_store(ctx, statement, taint, module, layer_map)
            elif isinstance(statement, ast.AnnAssign):
                if statement.value is not None:
                    taint = self._taint_of(
                        statement.value, scope, ctx, module, layer_map,
                        local_types, owner, depth,
                    )
                    is_set = self._is_set_expr(statement.value, scope)
                    self._assign(statement.target, taint, is_set, scope)
                    if in_sink and taint is not None and isinstance(
                        statement.target, (ast.Attribute, ast.Subscript)
                    ):
                        self._emit_store(ctx, statement, taint, module, layer_map)
            elif isinstance(statement, ast.AugAssign):
                taint = self._taint_of(statement.value, scope, ctx, module,
                                       layer_map, local_types, owner, depth)
                if taint is not None:
                    self._assign(statement.target, taint, False, scope)
                    if in_sink and isinstance(
                        statement.target, (ast.Attribute, ast.Subscript)
                    ):
                        self._emit_store(ctx, statement, taint, module, layer_map)
            elif isinstance(statement, ast.Return):
                if statement.value is not None:
                    taint = self._taint_of(
                        statement.value, scope, ctx, module, layer_map,
                        local_types, owner, depth,
                    )
                    if taint is not None:
                        self._returned = taint
                        if in_sink:
                            prefix = self._sink_prefix(module, layer_map)
                            self._emit(
                                ctx, statement, taint,
                                f"value returned from sink module "
                                f"'{prefix}'",
                            )
            elif isinstance(statement, ast.For):
                iter_taint = self._taint_of(
                    statement.iter, scope, ctx, module, layer_map,
                    local_types, owner, depth,
                )
                if iter_taint is None and self._is_set_expr(
                    statement.iter, scope
                ):
                    iter_taint = Taint(
                        "unordered set iteration",
                        f"{ctx.path}:{statement.iter.lineno}",
                    )
                self._assign(statement.target, iter_taint, False, scope)
                self._walk(statement.body, scope, ctx, module, layer_map,
                           fn, owner, depth)
                self._walk(statement.orelse, scope, ctx, module, layer_map,
                           fn, owner, depth)
            elif isinstance(statement, (ast.While, ast.If)):
                self._walk(statement.body, scope, ctx, module, layer_map,
                           fn, owner, depth)
                self._walk(statement.orelse, scope, ctx, module, layer_map,
                           fn, owner, depth)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    if item.optional_vars is not None and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        taint = self._taint_of(
                            item.context_expr, scope, ctx, module, layer_map,
                            local_types, owner, depth,
                        )
                        self._assign(item.optional_vars, taint, False, scope)
                self._walk(statement.body, scope, ctx, module, layer_map,
                           fn, owner, depth)
            elif isinstance(statement, ast.Try):
                self._walk(statement.body, scope, ctx, module, layer_map,
                           fn, owner, depth)
                for handler in statement.handlers:
                    self._walk(handler.body, scope, ctx, module, layer_map,
                               fn, owner, depth)
                self._walk(statement.orelse, scope, ctx, module, layer_map,
                           fn, owner, depth)
                self._walk(statement.finalbody, scope, ctx, module, layer_map,
                           fn, owner, depth)

    def _own_nodes(self, statement: ast.stmt) -> Iterator[ast.AST]:
        """Nodes of ``statement`` excluding nested statement bodies (those
        are walked recursively) and nested function/class definitions."""
        compound = (
            ast.For, ast.While, ast.If, ast.With, ast.AsyncWith, ast.Try,
        )
        if isinstance(statement, compound):
            # Only the header expressions belong to this statement.
            headers: List[ast.AST] = []
            if isinstance(statement, ast.For):
                headers = [statement.iter, statement.target]
            elif isinstance(statement, (ast.While, ast.If)):
                headers = [statement.test]
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                headers = [item.context_expr for item in statement.items]
            for header in headers:
                yield from ast.walk(header)
            return
        for node in ast.walk(statement):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return
            yield node

    def _assign(
        self,
        target: ast.expr,
        taint: Optional[Taint],
        is_set: bool,
        scope: _Scope,
    ) -> None:
        if isinstance(target, ast.Name):
            if taint is not None:
                scope.env[target.id] = taint
            else:
                scope.env.pop(target.id, None)
            if is_set:
                scope.sets.add(target.id)
            else:
                scope.sets.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, taint, False, scope)

    # ------------------------------------------------------------------
    # Expression taint
    # ------------------------------------------------------------------

    def _taint_of(
        self,
        expr: ast.expr,
        scope: _Scope,
        ctx: FileContext,
        module: ModuleInfo,
        layer_map: LayerMap,
        local_types: Dict[str, ClassInfo],
        owner: Optional[ClassInfo],
        depth: int,
    ) -> Optional[Taint]:
        def recur(node: ast.expr) -> Optional[Taint]:
            return self._taint_of(
                node, scope, ctx, module, layer_map, local_types, owner, depth
            )

        if isinstance(expr, ast.Name):
            return scope.env.get(expr.id)
        if isinstance(expr, ast.Await):
            return recur(expr.value)
        if isinstance(expr, ast.Starred):
            return recur(expr.value)
        if isinstance(expr, ast.Attribute):
            source = self._attribute_source(expr, module, ctx)
            if source is not None:
                return source
            return recur(expr.value)
        if isinstance(expr, ast.Subscript):
            source = self._attribute_source(expr.value, module, ctx)
            if source is not None:  # os.environ["X"]
                return source
            return recur(expr.value) or (
                recur(expr.slice) if isinstance(expr.slice, ast.expr) else None
            )
        if isinstance(expr, ast.Call):
            return self._call_taint(
                expr, scope, ctx, module, layer_map, local_types, owner, depth
            )
        if isinstance(expr, ast.BinOp):
            return recur(expr.left) or recur(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return recur(expr.operand)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                taint = recur(value)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.Compare):
            taint = recur(expr.left)
            if taint is not None:
                return taint
            for comparator in expr.comparators:
                taint = recur(comparator)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.IfExp):
            return recur(expr.test) or recur(expr.body) or recur(expr.orelse)
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            for element in expr.elts:
                taint = recur(element)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                if key is not None:
                    taint = recur(key)
                    if taint is not None:
                        return taint
            for value in expr.values:
                taint = recur(value)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.JoinedStr):
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    taint = recur(value.value)
                    if taint is not None:
                        return taint
            return None
        if isinstance(expr, ast.FormattedValue):
            return recur(expr.value)
        return None

    def _attribute_source(
        self, expr: ast.expr, module: ModuleInfo, ctx: FileContext
    ) -> Optional[Taint]:
        """``os.environ`` (read as attribute or subscript base) is a
        source even without a call."""
        if not isinstance(expr, ast.Attribute):
            return None
        canonical = _canonical(expr, module)
        if canonical == "os.environ":
            return Taint("environment read", f"{ctx.path}:{expr.lineno}")
        return None

    def _is_set_expr(self, expr: ast.expr, scope: _Scope) -> bool:
        """True if ``expr`` is statically known to be a set/frozenset."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in scope.sets
        if isinstance(expr, ast.Call):
            terminal = _terminal(expr.func)
            if terminal in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in _SET_COMBINATORS
                and self._is_set_expr(expr.func.value, scope)
            ):
                return True
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(expr.left, scope) or self._is_set_expr(
                expr.right, scope
            )
        return False

    def _call_taint(
        self,
        call: ast.Call,
        scope: _Scope,
        ctx: FileContext,
        module: ModuleInfo,
        layer_map: LayerMap,
        local_types: Dict[str, ClassInfo],
        owner: Optional[ClassInfo],
        depth: int,
    ) -> Optional[Taint]:
        func = call.func
        terminal = _terminal(func)
        canonical = _canonical(func, module)
        site = f"{ctx.path}:{call.lineno}"

        # Sanitizers first: their result is clean whatever went in.
        if self._is_sanitizer(terminal, canonical, layer_map):
            return None

        # Direct sources.
        if canonical is not None:
            if canonical in _WALL_CLOCK_CALLS:
                return Taint("wall-clock read", site)
            if canonical in _ADHOC_RNG_CALLS:
                return Taint("ad-hoc RNG draw", site)
            if canonical in _SEEDABLE_CONSTRUCTORS and not (
                call.args or call.keywords
            ):
                return Taint("unseeded RNG construction", site)
            if canonical.startswith(_GLOBAL_RANDOM_PREFIX) and isinstance(
                func, (ast.Attribute, ast.Name)
            ):
                head = canonical.split(".", 1)[0]
                if head == "random" and canonical != "random.Random":
                    return Taint("global random-stream draw", site)
            if canonical == "os.getenv":
                return Taint("environment read", site)
        if isinstance(func, ast.Name) and func.id == "id":
            return Taint("id() value", site)

        # Materializing a set into an ordered sequence.
        if (
            terminal in {"list", "tuple"}
            and call.args
            and self._is_set_expr(call.args[0], scope)
        ):
            return Taint("unordered set iteration", site)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and self._is_set_expr(func.value, scope)
            and not call.args
        ):
            return Taint("unordered set iteration", site)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and call.args
            and self._is_set_expr(call.args[0], scope)
        ):
            return Taint("unordered set iteration", site)

        # Pass-through builtins and methods on tainted receivers.
        arg_taint: Optional[Taint] = None
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            node = arg.value if isinstance(arg, ast.Starred) else arg
            taint = self._taint_of(
                node, scope, ctx, module, layer_map, local_types, owner, depth
            )
            if taint is not None:
                arg_taint = taint
                break
        if terminal in _PASSTHROUGH_BUILTINS and isinstance(func, ast.Name):
            return arg_taint
        if isinstance(func, ast.Attribute):
            receiver_taint = self._taint_of(
                func.value, scope, ctx, module, layer_map, local_types,
                owner, depth,
            )
            if receiver_taint is not None:
                return receiver_taint

        # Project calls: consult the callee's summary.
        callee = self._project.resolve_call(module, call, local_types, owner)
        if callee is not None and isinstance(
            callee.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            tainted_params = self._tainted_params(
                callee, call, scope, ctx, module, layer_map, local_types,
                owner, depth,
            )
            return self._summary_returns(callee, tainted_params, depth + 1)
        return None

    def _is_sanitizer(
        self,
        terminal: Optional[str],
        canonical: Optional[str],
        layer_map: LayerMap,
    ) -> bool:
        declared = layer_map.taint.sanitizers
        if terminal is not None and (
            terminal in _BUILTIN_SANITIZERS or terminal in declared
        ):
            return True
        return canonical is not None and canonical in declared

    def _tainted_params(
        self,
        callee: FunctionInfo,
        call: ast.Call,
        scope: _Scope,
        ctx: FileContext,
        module: ModuleInfo,
        layer_map: LayerMap,
        local_types: Dict[str, ClassInfo],
        owner: Optional[ClassInfo],
        depth: int,
    ) -> Dict[str, Taint]:
        tainted: Dict[str, Taint] = {}
        for param, arg in match_call_args(callee, call):
            taint = self._taint_of(
                arg, scope, ctx, module, layer_map, local_types, owner, depth
            )
            if taint is not None:
                tainted[param.arg] = taint
        return tainted

    # ------------------------------------------------------------------
    # Function summaries (interprocedural propagation)
    # ------------------------------------------------------------------

    def _summary_returns(
        self,
        fn: FunctionInfo,
        tainted_params: Dict[str, Taint],
        depth: int,
    ) -> Optional[Taint]:
        """Does ``fn`` return a tainted value, given tainted parameters?
        Analyzing the callee also reports any sink flows inside it."""
        if depth > self._MAX_DEPTH:
            return None
        key = (
            f"{fn.module.name}.{fn.qualname}",
            frozenset(
                (name, taint.kind, taint.site)
                for name, taint in tainted_params.items()
            ),
        )
        if key in self._summaries:
            return self._summaries[key]
        if key in self._in_progress:  # recursion: assume clean (sound-by-
            return None  # omission, like unresolved calls)
        self._in_progress.add(key)
        layer_map = find_layer_map(fn.path)
        returned: Optional[Taint] = None
        if layer_map is not None and layer_map.taint.enabled and isinstance(
            fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            callee_owner = None
            if fn.is_method:
                callee_owner = fn.module.classes.get(fn.qualname.split(".")[0])
            scope = _Scope(env=dict(tainted_params))
            previous = getattr(self, "_returned", None)
            self._returned = None
            self._walk(
                list(fn.node.body), scope, fn.module.ctx, fn.module,
                layer_map, fn, callee_owner, depth,
            )
            returned = self._returned
            self._returned = previous
        self._in_progress.discard(key)
        self._summaries[key] = returned
        return returned

    # ------------------------------------------------------------------
    # Sinks
    # ------------------------------------------------------------------

    def _sink_prefix(
        self, module: ModuleInfo, layer_map: LayerMap
    ) -> Optional[str]:
        return module_matches(module.name, layer_map.taint.sink_modules)

    def _visit_call(
        self,
        call: ast.Call,
        scope: _Scope,
        ctx: FileContext,
        module: ModuleInfo,
        layer_map: LayerMap,
        local_types: Dict[str, ClassInfo],
        owner: Optional[ClassInfo],
        depth: int,
    ) -> None:
        """Report tainted arguments flowing into sink calls, and drive
        interprocedural propagation for project callees."""
        callee = self._project.resolve_call(module, call, local_types, owner)
        sink_name = self._sink_name(call, callee, module, layer_map)
        tainted_args: List[Tuple[ast.expr, Taint]] = []
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            node = arg.value if isinstance(arg, ast.Starred) else arg
            taint = self._taint_of(
                node, scope, ctx, module, layer_map, local_types, owner, depth
            )
            if taint is not None:
                tainted_args.append((node, taint))
        if sink_name is not None and tainted_args:
            _, taint = tainted_args[0]
            self._emit(
                ctx, call, taint, f"argument to sink '{sink_name}'"
            )
        if (
            callee is not None
            and tainted_args
            and isinstance(callee.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            tainted_params = self._tainted_params(
                callee, call, scope, ctx, module, layer_map, local_types,
                owner, depth,
            )
            if tainted_params:
                # Analyzing for the return value also walks the body and
                # reports sink flows inside the callee.
                self._summary_returns(callee, tainted_params, depth + 1)

    def _sink_name(
        self,
        call: ast.Call,
        callee: Optional[FunctionInfo],
        module: ModuleInfo,
        layer_map: LayerMap,
    ) -> Optional[str]:
        config = layer_map.taint
        terminal = _terminal(call.func)
        canonical = _canonical(call.func, module)
        for declared in config.sink_functions:
            if declared == terminal or declared == canonical:
                return declared
            if canonical is not None and canonical.endswith("." + declared):
                return declared
        if callee is not None:
            prefix = module_matches(callee.module.name, config.sink_modules)
            if prefix is not None:
                return f"{callee.qualname}' in sink module '{prefix}"
        return None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _emit(
        self, ctx: FileContext, node: ast.AST, taint: Taint, flow: str
    ) -> None:
        key = (ctx.path, getattr(node, "lineno", 1), taint.kind)
        if key in self._emitted:
            return
        self._emitted.add(key)
        self._findings.append(
            self.finding(
                ctx, node,
                f"nondeterministic value ({taint.describe()}) flows into "
                f"{flow}; derive it from the injected clock/RNG, sort the "
                "iteration, or route it through a declared sanitizer "
                "(layers.toml [taint])",
            )
        )

    def _emit_store(
        self,
        ctx: FileContext,
        statement: ast.stmt,
        taint: Taint,
        module: ModuleInfo,
        layer_map: LayerMap,
    ) -> None:
        prefix = self._sink_prefix(module, layer_map)
        self._emit(
            ctx, statement, taint,
            f"state stored in sink module '{prefix}'",
        )

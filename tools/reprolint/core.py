"""Core machinery for reprolint: rule registry, suppression, file walking.

Rules are small classes registered with :func:`register`. Each parsed
file becomes a :class:`FileContext` (source, AST, suppression table,
path components); per-file rules yield :class:`Finding` objects from
``check(ctx)``, and project rules (cross-file analyses such as R006 and
R009-R013) yield findings from ``check_project(ctxs, project)`` after
every file is parsed, where ``project`` is the
:class:`~tools.reprolint.project.ProjectModel` built once per run.

Suppression follows the ruff/flake8 ``noqa`` convention but with an
explicit justification slot::

    arrival_rng = np.random.default_rng()  # reprolint: disable=R001 -- why

A ``disable`` comment silences the listed rule ids (or ``all``) on its
own physical line; ``disable-file=R006`` anywhere in a file silences a
rule for the whole file (used to whitelist config fields consumed via
reflection).
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from tools.reprolint.project import ProjectModel

#: Directory names never descended into (fixture trees contain
#: deliberate violations; caches contain generated code).
DEFAULT_EXCLUDED_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
    "fixtures",
    "node_modules",
}

_DISABLE_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+?)(?:\s*--.*)?$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One reported violation."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class Suppressions:
    """Per-line and per-file rule suppression parsed from comments."""

    def __init__(self, by_line: Dict[int, Set[str]], whole_file: Set[str]) -> None:
        self.by_line = by_line
        self.whole_file = whole_file

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        by_line: Dict[int, Set[str]] = {}
        whole_file: Set[str] = set()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _DISABLE_RE.search(tok.string)
                if not match:
                    continue
                kind, spec = match.group(1), match.group(2)
                rules = {part.strip().upper() for part in spec.split(",") if part.strip()}
                if kind == "disable-file":
                    whole_file |= rules
                else:
                    by_line.setdefault(tok.start[0], set()).update(rules)
        except tokenize.TokenError:  # pragma: no cover - malformed tail
            pass
        return cls(by_line, whole_file)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rule_id = rule_id.upper()
        if rule_id in self.whole_file or "ALL" in self.whole_file:
            return True
        on_line = self.by_line.get(line, ())
        return rule_id in on_line or "ALL" in on_line


@dataclass
class FileContext:
    """One parsed source file handed to the rules."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    parts: Tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def from_source(cls, source: str, path: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            suppressions=Suppressions.from_source(source),
            parts=PurePath(path).parts,
        )

    @property
    def filename(self) -> str:
        return self.parts[-1] if self.parts else self.path

    def in_dirs(self, names: Iterable[str]) -> bool:
        """True if any directory component of the path is in ``names``."""
        return any(part in names for part in self.parts[:-1])


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` / ``summary`` / ``rationale`` and override
    either ``check`` (per-file) or ``check_project`` (cross-file; set
    ``project_rule = True``).
    """

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""
    project_rule: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, ctxs: Sequence[FileContext], project: "ProjectModel"
    ) -> Iterator[Finding]:
        return iter(())

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Return the registry (importing the built-in rules on demand)."""
    # Imported for their side effect of registering rules.
    from tools.reprolint import asyncsafety as _asyncsafety  # noqa: F401
    from tools.reprolint import deadlines as _deadlines  # noqa: F401
    from tools.reprolint import hotpath as _hotpath  # noqa: F401
    from tools.reprolint import layering as _layering  # noqa: F401
    from tools.reprolint import rules as _rules  # noqa: F401
    from tools.reprolint import taint as _taint  # noqa: F401
    from tools.reprolint import units as _units  # noqa: F401
    from tools.reprolint import wholeprogram as _wholeprogram  # noqa: F401

    return dict(_REGISTRY)


@dataclass
class LintResult:
    """Outcome of a lint run."""

    findings: List[Finding]
    files_scanned: int
    parse_errors: List[Finding] = field(default_factory=list)
    #: findings silenced by ``# reprolint: disable`` comments
    suppressed: List[Finding] = field(default_factory=list)
    #: findings silenced by the baseline file (staged adoption)
    baselined: List[Finding] = field(default_factory=list)
    #: rule ids that actually ran in this invocation
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.parse_errors + self.findings)

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.all_findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def suppressed_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.suppressed:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[Rule]:
    registry = all_rules()
    selected = {s.upper() for s in select} if select else set(registry)
    ignored = {s.upper() for s in ignore} if ignore else set()
    unknown = (selected | ignored) - set(registry)
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [
        registry[rule_id]()
        for rule_id in sorted(selected - ignored)
    ]


def iter_python_files(
    paths: Sequence[str], use_default_excludes: bool = True
) -> Iterator[Path]:
    """Yield .py files under ``paths`` (files are taken as given)."""
    excluded = DEFAULT_EXCLUDED_DIRS if use_default_excludes else set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        if not root.exists():
            raise FileNotFoundError(f"no such path: {raw}")
        for candidate in sorted(root.rglob("*.py")):
            relative = candidate.relative_to(root)
            if any(part in excluded for part in relative.parts[:-1]):
                continue
            yield candidate


def _hash_text(text: str) -> str:
    """Stable short content hash (same scheme the cache layer uses)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]


@dataclass
class _FileInfo:
    """One file staged for analysis: contents read, hash computed."""

    posix: str
    text: str
    text_hash: str


def _parse_one(
    item: Tuple[str, str],
) -> Tuple[str, Optional[FileContext], Optional[Tuple[int, int, str]]]:
    """Parse (path, source) into a FileContext or a syntax-error triple.

    Module-level so worker processes can import it by reference.
    """
    path, text = item
    try:
        return path, FileContext.from_source(text, path), None
    except SyntaxError as exc:
        col = (exc.offset or 0) + 1 if exc.offset is not None else 1
        return path, None, (exc.lineno or 1, col, str(exc.msg))


def _parse_files(
    infos: Sequence[_FileInfo], jobs: int
) -> Tuple[Dict[str, FileContext], Dict[str, List[Finding]]]:
    """Parse ``infos`` (with ``jobs`` worker processes when > 1); return
    (path -> context, path -> parse-error findings). Results are
    reassembled in input order, so ``--jobs N`` is byte-identical to a
    serial run."""
    items = [(info.posix, info.text) for info in infos]
    results: List[Tuple[str, Optional[FileContext], Optional[Tuple[int, int, str]]]]
    if jobs > 1 and len(items) > 1:
        import concurrent.futures

        workers = min(jobs, len(items))
        chunk = max(1, len(items) // (workers * 4))
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as executor:
                results = list(
                    executor.map(_parse_one, items, chunksize=chunk)
                )
        except (OSError, PermissionError, ImportError):
            # Sandboxes without process support degrade to serial.
            results = [_parse_one(item) for item in items]
    else:
        results = [_parse_one(item) for item in items]
    contexts: Dict[str, FileContext] = {}
    errors: Dict[str, List[Finding]] = {}
    for path, ctx, error in results:
        if ctx is not None:
            contexts[path] = ctx
        elif error is not None:
            line, col, msg = error
            errors[path] = [
                Finding(
                    path=path,
                    line=line,
                    col=col,
                    rule_id="E999",
                    message=f"syntax error: {msg}",
                )
            ]
    return contexts, errors


def _module_imports(tree: ast.Module, parts: Sequence[str]) -> List[str]:
    """Dotted names imported by a module, with relative imports resolved
    against the module's own (full, as-given) path components so they
    land in the same name space :func:`_dotted` produces."""
    names: Set[str] = set()
    package = [part for part in parts[:-1] if part != "/"]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = package[: len(package) - (node.level - 1)] if (
                    node.level > 1
                ) else list(package)
                anchor += node.module.split(".") if node.module else []
                base = ".".join(anchor)
            if base:
                names.add(base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                names.add(f"{base}.{alias.name}" if base else alias.name)
    return sorted(names)


def _dotted(posix: str) -> str:
    """Full dotted name of a path as given (no layout-root stripping —
    import matching is dotted-suffix based, so prefixes are harmless)."""
    components = [part for part in PurePath(posix).parts if part != "/"]
    if components and components[-1].endswith(".py"):
        components[-1] = components[-1][: -len(".py")]
    if components and components[-1] == "__init__":
        components = components[:-1]
    return ".".join(components)


def _git_changed_paths() -> Set[str]:
    """Resolved absolute posix paths of files modified or untracked in
    the enclosing git checkout."""
    import subprocess

    try:
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, timeout=30,
        )
        status = subprocess.run(
            ["git", "status", "--porcelain=v1", "--untracked-files=all"],
            capture_output=True, text=True, timeout=60,
        )
    except (OSError, subprocess.SubprocessError) as exc:
        raise ValueError(f"--changed-only could not run git: {exc}")
    if toplevel.returncode != 0 or status.returncode != 0:
        raise ValueError(
            "--changed-only requires a git checkout: "
            + (status.stderr or toplevel.stderr).strip()
        )
    root = Path(toplevel.stdout.strip())
    changed: Set[str] = set()
    for line in status.stdout.splitlines():
        if len(line) < 4:
            continue
        entry = line[3:]
        if " -> " in entry:
            entry = entry.split(" -> ", 1)[1]
        entry = entry.strip().strip('"')
        changed.add((root / entry).resolve().as_posix())
    return changed


def _changed_closure(
    files: Sequence[_FileInfo], cache, jobs: int
) -> Tuple[List[_FileInfo], List[_FileInfo]]:
    """Restrict a run to git-changed files: returns (report, universe).

    ``report`` is the dirty transitive closure — the changed files plus
    everything that (transitively) imports them, whose findings may all
    shift when a callee changes. ``universe`` additionally pulls in the
    forward import closure of the dirty set so the project model can
    still resolve cross-module calls. Import edges come from the cache
    for unchanged files; only cache misses are parsed here (and those
    parses are not wasted — the contexts are re-derived cheaply later
    only if actually analyzed)."""
    changed_abs = _git_changed_paths()
    dirty: Set[str] = {
        info.posix
        for info in files
        if Path(info.posix).resolve().as_posix() in changed_abs
    }
    if not dirty:
        return [], []

    imports: Dict[str, List[str]] = {}
    need: List[_FileInfo] = []
    for info in files:
        cached = (
            cache.imports_for(info.posix, info.text_hash) if cache else None
        )
        if cached is not None:
            imports[info.posix] = cached
        else:
            need.append(info)
    contexts, _errors = _parse_files(need, jobs)
    for info in need:
        ctx = contexts.get(info.posix)
        names = _module_imports(ctx.tree, ctx.parts) if ctx is not None else []
        imports[info.posix] = names
        if cache is not None:
            cache.store_imports(info.posix, info.text_hash, names)

    # Dotted-suffix lookup: every suffix of every module name -> paths.
    suffix_map: Dict[str, List[str]] = {}
    for info in files:
        components = _dotted(info.posix).split(".")
        for start in range(len(components)):
            suffix_map.setdefault(
                ".".join(components[start:]), []
            ).append(info.posix)

    forward: Dict[str, Set[str]] = {info.posix: set() for info in files}
    reverse: Dict[str, Set[str]] = {info.posix: set() for info in files}
    for info in files:
        for name in imports[info.posix]:
            for target in suffix_map.get(name, ()):
                if target != info.posix:
                    forward[info.posix].add(target)
                    reverse[target].add(info.posix)

    stack = list(dirty)
    while stack:
        for importer in reverse[stack.pop()]:
            if importer not in dirty:
                dirty.add(importer)
                stack.append(importer)
    context_set: Set[str] = set(dirty)
    stack = list(dirty)
    while stack:
        for dependency in forward[stack.pop()]:
            if dependency not in context_set:
                context_set.add(dependency)
                stack.append(dependency)

    report = [info for info in files if info.posix in dirty]
    universe = [info for info in files if info.posix in context_set]
    return report, universe


def _split_suppressed(
    raw: Iterable[Finding], by_path: Dict[str, FileContext]
) -> Tuple[List[Finding], List[Finding]]:
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        ctx = by_path.get(finding.path)
        if ctx is not None and ctx.suppressions.is_suppressed(
            finding.rule_id, finding.line
        ):
            suppressed.append(finding)
        else:
            findings.append(finding)
    return sorted(findings), sorted(suppressed)


def _run_rules(
    contexts: Sequence[FileContext], rules: Sequence[Rule]
) -> Tuple[List[Finding], List[Finding]]:
    """Run ``rules`` over ``contexts``; return (findings, suppressed)."""
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    by_path = {ctx.path: ctx for ctx in contexts}
    project = None
    if any(rule.project_rule for rule in rules):
        from tools.reprolint.project import ProjectModel

        project = ProjectModel.build(contexts)
    for rule in rules:
        raw: List[Finding] = []
        if rule.project_rule:
            assert project is not None
            raw.extend(rule.check_project(contexts, project))
        else:
            for ctx in contexts:
                if rule.applies_to(ctx):
                    raw.extend(rule.check(ctx))
        for finding in raw:
            ctx = by_path.get(finding.path)
            if ctx is not None and ctx.suppressions.is_suppressed(
                finding.rule_id, finding.line
            ):
                suppressed.append(finding)
                continue
            findings.append(finding)
    return sorted(findings), sorted(suppressed)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    use_default_excludes: bool = True,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    changed_only: bool = False,
) -> LintResult:
    """Lint every Python file under ``paths`` and return the result.

    The driver is incremental when ``cache_dir`` is given: per-file
    results are reused whenever a file's content hash (plus the rule-set
    version and governing layer maps) is unchanged, and the whole-program
    pass is reused when *no* file in the run changed — a fully warm run
    parses and analyzes nothing. ``changed_only`` restricts the run to
    git-changed files plus their dirty transitive closure (everything
    importing them); ``jobs`` parses with worker processes. All three
    are pure accelerations: findings and report bytes are identical to a
    cold serial run over the same reported file set.
    """
    rules = _select_rules(select, ignore)
    rules_sig = ",".join(rule.rule_id for rule in rules)
    file_rules = [rule for rule in rules if not rule.project_rule]
    project_rules = [rule for rule in rules if rule.project_rule]

    files: List[_FileInfo] = []
    file_paths: List[Path] = []
    for file_path in iter_python_files(paths, use_default_excludes):
        text = file_path.read_text(encoding="utf-8")
        file_paths.append(file_path)
        files.append(_FileInfo(file_path.as_posix(), text, _hash_text(text)))

    cache = None
    if cache_dir is not None:
        from tools.reprolint.cache import (
            AnalysisCache,
            layer_maps_fingerprint,
            ruleset_version,
        )

        cache = AnalysisCache(
            cache_dir, ruleset_version(), layer_maps_fingerprint(file_paths)
        )

    report = files
    universe = files
    if changed_only:
        report, universe = _changed_closure(files, cache, jobs)

    # Per-file stage: cache hits skip parsing and analysis outright.
    from tools.reprolint.cache import FileResult

    per_file: Dict[str, FileResult] = {}
    misses: List[_FileInfo] = []
    for info in report:
        cached = (
            cache.file_result(info.posix, info.text_hash, rules_sig)
            if cache is not None
            else None
        )
        if cached is not None:
            per_file[info.posix] = cached
        else:
            misses.append(info)

    # Whole-program stage key: every (path, hash) in the universe plus
    # the reported subset. Unchanged tree -> hit -> no parsing at all.
    pkey = None
    project_cached = None
    if project_rules:
        from tools.reprolint.cache import project_key

        pkey = project_key(
            ((info.posix, info.text_hash) for info in universe),
            (info.posix for info in report),
            rules_sig,
        )
        if cache is not None:
            project_cached = cache.project_result(pkey)

    to_parse = universe if (project_rules and project_cached is None) else misses
    contexts, parse_errors_by_path = _parse_files(to_parse, jobs)
    if cache is not None:
        for info in to_parse:
            ctx = contexts.get(info.posix)
            if ctx is not None:
                cache.store_imports(
                    info.posix,
                    info.text_hash,
                    _module_imports(ctx.tree, ctx.parts),
                )

    by_path = dict(contexts)
    for info in misses:
        ctx = contexts.get(info.posix)
        raw: List[Finding] = []
        if ctx is not None:
            for rule in file_rules:
                if rule.applies_to(ctx):
                    raw.extend(rule.check(ctx))
        findings, suppressed = _split_suppressed(raw, by_path)
        result = FileResult(
            findings=findings,
            suppressed=suppressed,
            errors=parse_errors_by_path.get(info.posix, []),
        )
        per_file[info.posix] = result
        if cache is not None:
            cache.store_file_result(
                info.posix, info.text_hash, rules_sig, result
            )

    project_findings: List[Finding] = []
    project_suppressed: List[Finding] = []
    if project_rules:
        if project_cached is not None:
            project_findings = project_cached.findings
            project_suppressed = project_cached.suppressed
        else:
            from tools.reprolint.project import ProjectModel

            ordered = [
                contexts[info.posix]
                for info in universe
                if info.posix in contexts
            ]
            project = ProjectModel.build(ordered)
            report_set = {info.posix for info in report}
            report_ctxs = [ctx for ctx in ordered if ctx.path in report_set]
            raw = []
            for rule in project_rules:
                raw.extend(rule.check_project(report_ctxs, project))
            project_findings, project_suppressed = _split_suppressed(
                raw, by_path
            )
            if cache is not None and pkey is not None:
                cache.store_project_result(
                    pkey, project_findings, project_suppressed
                )

    findings = list(project_findings)
    suppressed = list(project_suppressed)
    parse_errors: List[Finding] = []
    for info in report:
        result = per_file.get(info.posix)
        if result is None:  # pragma: no cover - defensive
            continue
        findings.extend(result.findings)
        suppressed.extend(result.suppressed)
        parse_errors.extend(result.errors)

    if cache is not None:
        cache.save()
    return LintResult(
        findings=sorted(findings),
        files_scanned=len(report),
        parse_errors=sorted(parse_errors),
        suppressed=sorted(suppressed),
        rules_run=[rule.rule_id for rule in rules],
    )


def lint_source(
    source: str,
    path: str = "module.py",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint a single in-memory source string (test/API convenience)."""
    rules = _select_rules(select, ignore)
    ctx = FileContext.from_source(source, path)
    findings, _ = _run_rules([ctx], rules)
    return findings

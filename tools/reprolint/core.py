"""Core machinery for reprolint: rule registry, suppression, file walking.

Rules are small classes registered with :func:`register`. Each parsed
file becomes a :class:`FileContext` (source, AST, suppression table,
path components); per-file rules yield :class:`Finding` objects from
``check(ctx)``, and project rules (cross-file analyses such as R006 and
R009-R013) yield findings from ``check_project(ctxs, project)`` after
every file is parsed, where ``project`` is the
:class:`~tools.reprolint.project.ProjectModel` built once per run.

Suppression follows the ruff/flake8 ``noqa`` convention but with an
explicit justification slot::

    arrival_rng = np.random.default_rng()  # reprolint: disable=R001 -- why

A ``disable`` comment silences the listed rule ids (or ``all``) on its
own physical line; ``disable-file=R006`` anywhere in a file silences a
rule for the whole file (used to whitelist config fields consumed via
reflection).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from tools.reprolint.project import ProjectModel

#: Directory names never descended into (fixture trees contain
#: deliberate violations; caches contain generated code).
DEFAULT_EXCLUDED_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    "build",
    "dist",
    "fixtures",
    "node_modules",
}

_DISABLE_RE = re.compile(
    r"#\s*reprolint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+?)(?:\s*--.*)?$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One reported violation."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class Suppressions:
    """Per-line and per-file rule suppression parsed from comments."""

    def __init__(self, by_line: Dict[int, Set[str]], whole_file: Set[str]) -> None:
        self.by_line = by_line
        self.whole_file = whole_file

    @classmethod
    def from_source(cls, source: str) -> "Suppressions":
        by_line: Dict[int, Set[str]] = {}
        whole_file: Set[str] = set()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _DISABLE_RE.search(tok.string)
                if not match:
                    continue
                kind, spec = match.group(1), match.group(2)
                rules = {part.strip().upper() for part in spec.split(",") if part.strip()}
                if kind == "disable-file":
                    whole_file |= rules
                else:
                    by_line.setdefault(tok.start[0], set()).update(rules)
        except tokenize.TokenError:  # pragma: no cover - malformed tail
            pass
        return cls(by_line, whole_file)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rule_id = rule_id.upper()
        if rule_id in self.whole_file or "ALL" in self.whole_file:
            return True
        on_line = self.by_line.get(line, ())
        return rule_id in on_line or "ALL" in on_line


@dataclass
class FileContext:
    """One parsed source file handed to the rules."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    parts: Tuple[str, ...] = field(default_factory=tuple)

    @classmethod
    def from_source(cls, source: str, path: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            suppressions=Suppressions.from_source(source),
            parts=PurePath(path).parts,
        )

    @property
    def filename(self) -> str:
        return self.parts[-1] if self.parts else self.path

    def in_dirs(self, names: Iterable[str]) -> bool:
        """True if any directory component of the path is in ``names``."""
        return any(part in names for part in self.parts[:-1])


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` / ``summary`` / ``rationale`` and override
    either ``check`` (per-file) or ``check_project`` (cross-file; set
    ``project_rule = True``).
    """

    rule_id: str = ""
    summary: str = ""
    rationale: str = ""
    project_rule: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, ctxs: Sequence[FileContext], project: "ProjectModel"
    ) -> Iterator[Finding]:
        return iter(())

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.rule_id,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Return the registry (importing the built-in rules on demand)."""
    # Imported for their side effect of registering rules.
    from tools.reprolint import asyncsafety as _asyncsafety  # noqa: F401
    from tools.reprolint import hotpath as _hotpath  # noqa: F401
    from tools.reprolint import layering as _layering  # noqa: F401
    from tools.reprolint import rules as _rules  # noqa: F401
    from tools.reprolint import units as _units  # noqa: F401
    from tools.reprolint import wholeprogram as _wholeprogram  # noqa: F401

    return dict(_REGISTRY)


@dataclass
class LintResult:
    """Outcome of a lint run."""

    findings: List[Finding]
    files_scanned: int
    parse_errors: List[Finding] = field(default_factory=list)
    #: findings silenced by ``# reprolint: disable`` comments
    suppressed: List[Finding] = field(default_factory=list)
    #: findings silenced by the baseline file (staged adoption)
    baselined: List[Finding] = field(default_factory=list)
    #: rule ids that actually ran in this invocation
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.parse_errors + self.findings)

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.all_findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def suppressed_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.suppressed:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[Rule]:
    registry = all_rules()
    selected = {s.upper() for s in select} if select else set(registry)
    ignored = {s.upper() for s in ignore} if ignore else set()
    unknown = (selected | ignored) - set(registry)
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [
        registry[rule_id]()
        for rule_id in sorted(selected - ignored)
    ]


def iter_python_files(
    paths: Sequence[str], use_default_excludes: bool = True
) -> Iterator[Path]:
    """Yield .py files under ``paths`` (files are taken as given)."""
    excluded = DEFAULT_EXCLUDED_DIRS if use_default_excludes else set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        if not root.exists():
            raise FileNotFoundError(f"no such path: {raw}")
        for candidate in sorted(root.rglob("*.py")):
            relative = candidate.relative_to(root)
            if any(part in excluded for part in relative.parts[:-1]):
                continue
            yield candidate


def _run_rules(
    contexts: Sequence[FileContext], rules: Sequence[Rule]
) -> Tuple[List[Finding], List[Finding]]:
    """Run ``rules`` over ``contexts``; return (findings, suppressed)."""
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    by_path = {ctx.path: ctx for ctx in contexts}
    project = None
    if any(rule.project_rule for rule in rules):
        from tools.reprolint.project import ProjectModel

        project = ProjectModel.build(contexts)
    for rule in rules:
        raw: List[Finding] = []
        if rule.project_rule:
            assert project is not None
            raw.extend(rule.check_project(contexts, project))
        else:
            for ctx in contexts:
                if rule.applies_to(ctx):
                    raw.extend(rule.check(ctx))
        for finding in raw:
            ctx = by_path.get(finding.path)
            if ctx is not None and ctx.suppressions.is_suppressed(
                finding.rule_id, finding.line
            ):
                suppressed.append(finding)
                continue
            findings.append(finding)
    return sorted(findings), sorted(suppressed)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    use_default_excludes: bool = True,
) -> LintResult:
    """Lint every Python file under ``paths`` and return the result."""
    rules = _select_rules(select, ignore)
    contexts: List[FileContext] = []
    parse_errors: List[Finding] = []
    n_files = 0
    for file_path in iter_python_files(paths, use_default_excludes):
        n_files += 1
        text = file_path.read_text(encoding="utf-8")
        posix = file_path.as_posix()
        try:
            contexts.append(FileContext.from_source(text, posix))
        except SyntaxError as exc:
            parse_errors.append(
                Finding(
                    path=posix,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                    rule_id="E999",
                    message=f"syntax error: {exc.msg}",
                )
            )
    findings, suppressed = _run_rules(contexts, rules)
    return LintResult(
        findings=findings,
        files_scanned=n_files,
        parse_errors=parse_errors,
        suppressed=suppressed,
        rules_run=[rule.rule_id for rule in rules],
    )


def lint_source(
    source: str,
    path: str = "module.py",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint a single in-memory source string (test/API convenience)."""
    rules = _select_rules(select, ignore)
    ctx = FileContext.from_source(source, path)
    findings, _ = _run_rules([ctx], rules)
    return findings

"""Whole-program rules R010-R013 (RNG streams, configs, threads, registry).

All four are project rules over the :class:`~tools.reprolint.project.
ProjectModel`:

* **R010** — two call sites deriving the *same* named RNG stream from
  the same factory get bit-identical generators: the components are
  silently correlated. Factory values are tracked through assignments,
  ``child()`` derivations, and cross-module calls.
* **R011** — typed strengthening of R006: a ``*Config`` field only
  counts as consumed when a receiver *of that config class* (or an
  untyped receiver) reads it. A name-coincidence read on a different
  class no longer masks a dead knob.
* **R012** — mutable state reachable from thread-pool worker callables
  must be written under a lock (``with <obj>.<lock>:``); the worker →
  callee closure is computed over the project call graph.
* **R013** — every module under ``experiments/`` that defines an
  ``EXPERIMENT_ID`` must be registered in ``harness/registry.py``'s
  ``_MODULES`` tuple, ids must be unique, and registered modules must
  exist with a ``run`` entry point. A dead experiment silently drops a
  headline result from ``--all`` runs.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from tools.reprolint.core import FileContext, Finding, Rule, register
from tools.reprolint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    match_call_args,
)

_FACTORY_CONSTRUCTORS = {"RngFactory"}
_STREAM_METHODS = {"stream", "child"}

Label = Tuple[object, ...]
Token = Tuple[str, Label]  # (factory origin, child-label prefix)


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _const_labels(call: ast.Call) -> Optional[Label]:
    """The call's label path if every argument is a literal, else None."""
    if call.keywords:
        return None
    labels: List[object] = []
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, (str, int)):
            labels.append(arg.value)
        else:
            return None
    return tuple(labels)


class _StreamUse:
    """One ``factory.stream(...)`` / ``factory.child(...)`` call site."""

    __slots__ = ("token", "method", "labels", "ctx", "node", "in_loop")

    def __init__(
        self,
        token: Token,
        method: str,
        labels: Label,
        ctx: FileContext,
        node: ast.Call,
        in_loop: bool,
    ) -> None:
        self.token = token
        self.method = method
        self.labels = labels
        self.ctx = ctx
        self.node = node
        self.in_loop = in_loop


@register
class RngStreamCollisionRule(Rule):
    """R010 — no two call sites may derive the same RNG stream label path."""

    rule_id = "R010"
    summary = "no colliding RngFactory stream/child label paths"
    rationale = (
        "RngFactory.stream('x') is deterministic in its label: two call "
        "sites requesting the same label from the same factory receive "
        "bit-identical generators, silently correlating components that "
        "should be independent (the exact bug class hash-derived streams "
        "were introduced to prevent). Each component must use a distinct "
        "label; deliberate replay of a stream needs a suppression."
    )
    project_rule = True

    def check_project(
        self, ctxs: Sequence[FileContext], project: ProjectModel
    ) -> Iterator[Finding]:
        uses: List[_StreamUse] = []
        #: (qualname, frozenset of param->token) already analyzed
        visited: Set[Tuple[str, frozenset]] = set()
        pending: List[Tuple[FunctionInfo, Dict[str, Token]]] = []

        def analyze_scope(
            ctx: FileContext,
            module: ModuleInfo,
            body: Sequence[ast.stmt],
            env: Dict[str, Token],
            scope_key: str,
            owner: Optional[ClassInfo],
            info: Optional[FunctionInfo],
        ) -> None:
            local_types = (
                project.infer_local_types(info, owner) if info is not None else {}
            )

            def token_of(expr: ast.expr) -> Optional[Token]:
                if isinstance(expr, ast.Name):
                    return env.get(expr.id)
                if isinstance(expr, ast.Call):
                    name = _terminal(expr.func)
                    if name in _FACTORY_CONSTRUCTORS:
                        # Identity: the seed expression within this scope
                        # (two RngFactory(cfg.seed) in one scope are the
                        # SAME root), falling back to the call site.
                        seed_dump = "|".join(
                            ast.dump(a) for a in list(expr.args)
                        ) or f"line{expr.lineno}"
                        return (f"{scope_key}::{seed_dump}", ())
                    if (
                        name == "child"
                        and isinstance(expr.func, ast.Attribute)
                    ):
                        base = token_of(expr.func.value)
                        labels = _const_labels(expr)
                        if base is not None and labels is not None:
                            return (base[0], base[1] + labels)
                return None

            def walk(statements: Sequence[ast.stmt], in_loop: bool) -> None:
                for statement in statements:
                    if isinstance(
                        statement,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    ):
                        continue
                    for node in ast.walk(statement):
                        if isinstance(
                            node, (ast.FunctionDef, ast.AsyncFunctionDef)
                        ):
                            break
                        if isinstance(node, ast.Call):
                            self._visit_call(
                                node, env, token_of, uses, ctx, in_loop,
                                project, module, local_types, owner,
                                pending,
                            )
                    if isinstance(statement, ast.Assign) and len(
                        statement.targets
                    ) == 1:
                        target = statement.targets[0]
                        token = token_of(statement.value)
                        if isinstance(target, ast.Name):
                            if token is not None:
                                env[target.id] = token
                            elif target.id in env:
                                del env[target.id]
                    elif isinstance(statement, (ast.For, ast.While)):
                        walk(statement.body, True)
                        walk(statement.orelse, in_loop)
                    elif isinstance(statement, ast.If):
                        walk(statement.body, in_loop)
                        walk(statement.orelse, in_loop)
                    elif isinstance(statement, (ast.With, ast.Try)):
                        for field_name in ("body", "orelse", "finalbody"):
                            walk(getattr(statement, field_name, []) or [], in_loop)
                        for handler in getattr(statement, "handlers", []):
                            walk(handler.body, in_loop)

            walk(body, False)

        # Seed: every function and the module level of every file.
        for ctx in ctxs:
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            analyze_scope(
                ctx, module, ctx.tree.body, {}, f"{ctx.path}:<module>", None, None
            )
            for fn, owner in self._module_functions(module):
                analyze_scope(
                    ctx, module, list(fn.node.body), {},  # type: ignore[attr-defined]
                    f"{ctx.path}:{fn.qualname}", owner, fn,
                )

        # Cross-module propagation: factories passed into callees.
        while pending:
            fn, bindings = pending.pop()
            if not isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # synthetic dataclass constructor: no body
            key = (f"{fn.module.name}.{fn.qualname}", frozenset(bindings.items()))
            if key in visited:
                continue
            visited.add(key)
            owner = None
            if fn.is_method:
                class_name = fn.qualname.split(".")[0]
                owner = fn.module.classes.get(class_name)
            analyze_scope(
                fn.module.ctx, fn.module, list(fn.node.body),  # type: ignore[attr-defined]
                dict(bindings),
                f"{fn.path}:{fn.qualname}", owner, fn,
            )

        yield from self._collisions(uses)

    @staticmethod
    def _module_functions(
        module: ModuleInfo,
    ) -> Iterator[Tuple[FunctionInfo, Optional[ClassInfo]]]:
        for fn in module.functions.values():
            yield fn, None
        for cls_info in module.classes.values():
            for fn in cls_info.methods.values():
                yield fn, cls_info

    def _visit_call(
        self,
        node: ast.Call,
        env: Dict[str, Token],
        token_of,
        uses: List[_StreamUse],
        ctx: FileContext,
        in_loop: bool,
        project: ProjectModel,
        module: ModuleInfo,
        local_types: Dict[str, ClassInfo],
        owner: Optional[ClassInfo],
        pending: List[Tuple[FunctionInfo, Dict[str, Token]]],
    ) -> None:
        # stream() usage on a tracked factory. child() calls are not
        # recorded as uses — identical child factories surface as
        # colliding tokens at the stream() calls they feed, so reporting
        # the derivation too would double-count every collision.
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _STREAM_METHODS
        ):
            if node.func.attr == "stream":
                token = token_of(node.func.value)
                labels = _const_labels(node)
                if token is not None and labels is not None:
                    uses.append(
                        _StreamUse(token, "stream", labels, ctx, node, in_loop)
                    )
            return
        # A tracked factory passed to a project function: follow it.
        factory_args = [
            (index, arg)
            for index, arg in enumerate(node.args)
            if isinstance(arg, ast.Name) and arg.id in env
        ] + [
            (kw.arg, kw.value)
            for kw in node.keywords
            if isinstance(kw.value, ast.Name) and kw.value.id in env
        ]
        if not factory_args:
            return
        callee = project.resolve_call(module, node, local_types, owner)
        if callee is None:
            return
        bindings: Dict[str, Token] = {}
        for param, arg in match_call_args(callee, node):
            if isinstance(arg, ast.Name) and arg.id in env:
                bindings[param.arg] = env[arg.id]
        if bindings:
            pending.append((callee, bindings))

    def _collisions(self, uses: Sequence[_StreamUse]) -> Iterator[Finding]:
        grouped: Dict[Tuple[Token, str, Label], List[_StreamUse]] = {}
        for use in uses:
            grouped.setdefault((use.token, use.method, use.labels), []).append(use)
        emitted: Set[Tuple[str, int, str]] = set()
        for (token, method, labels), group in grouped.items():
            label_text = "/".join(str(piece) for piece in labels)
            sites = sorted(
                {(use.ctx.path, use.node.lineno) for use in group}
            )
            for use in group:
                site = (use.ctx.path, use.node.lineno, label_text)
                if site in emitted:
                    continue
                if use.in_loop:
                    emitted.add(site)
                    yield self.finding(
                        use.ctx, use.node,
                        f"'{method}(\"{label_text}\")' with a constant label "
                        "inside a loop derives the SAME stream every "
                        "iteration; include the loop variable in the label",
                    )
                    continue
                if len(sites) > 1:
                    emitted.add(site)
                    others = ", ".join(
                        f"{path}:{line}"
                        for path, line in sites
                        if (path, line) != (use.ctx.path, use.node.lineno)
                    )
                    yield self.finding(
                        use.ctx, use.node,
                        f"stream label path '{label_text}' is derived from "
                        f"the same factory at multiple call sites (also "
                        f"{others}); the streams are bit-identical — use "
                        "distinct labels, or suppress if replay is intended",
                    )


@register
class TypedConfigConsumptionRule(Rule):
    """R011 — config fields must be consumed via *their own* class."""

    rule_id = "R011"
    summary = "config fields consumed through typed receivers (cross-module)"
    rationale = (
        "R006 treats any attribute read of a matching NAME as consumption, "
        "so FooConfig.rate looks alive whenever any other class has a "
        ".rate. R011 resolves receiver types through annotations and "
        "constructor calls across modules: only reads through the config's "
        "own class (or an untracked receiver) count, catching dead knobs "
        "that name coincidences hide — and fields consumed in another "
        "module no longer need whole-file suppressions."
    )
    project_rule = True

    def check_project(
        self, ctxs: Sequence[FileContext], project: ProjectModel
    ) -> Iterator[Finding]:
        typed_reads: Set[Tuple[str, str]] = set()  # (class name, attr)
        untyped_read_names: Set[str] = set()

        for ctx in ctxs:
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            for roots, local_types, owner in self._scopes(module, project):
                for root in roots:
                    for node in ast.walk(root):
                        if isinstance(node, ast.Attribute):
                            receiver = project.receiver_class(
                                node.value, module, local_types, owner
                            )
                            if receiver is not None:
                                typed_reads.add((receiver.name, node.attr))
                            else:
                                untyped_read_names.add(node.attr)
                        elif isinstance(node, ast.Call):
                            terminal = _terminal(node.func)
                            if (
                                terminal in {"getattr", "hasattr", "setattr"}
                                and len(node.args) >= 2
                            ):
                                arg = node.args[1]
                                if isinstance(arg, ast.Constant) and isinstance(
                                    arg.value, str
                                ):
                                    untyped_read_names.add(arg.value)

        for ctx in ctxs:
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            for cls_info in module.classes.values():
                if not cls_info.name.endswith("Config"):
                    continue
                if not cls_info.is_dataclass:
                    continue
                for field_name, (field_node, _) in cls_info.fields.items():
                    if self._annotation_is_classvar(field_node):
                        continue
                    if (cls_info.name, field_name) in typed_reads:
                        continue
                    # An untyped read is still consumption — R011 only
                    # sharpens the cases where the receiver IS resolvable.
                    if field_name in untyped_read_names:
                        continue
                    yield self.finding(
                        ctx, field_node,
                        f"field '{field_name}' of {cls_info.name} is "
                        "never read through a receiver of its own type "
                        "(name-matching reads all resolve to other "
                        "classes); wire it up, delete it, or whitelist "
                        "with '# reprolint: disable=R011 -- <why>'",
                    )

    @staticmethod
    def _scopes(
        module: ModuleInfo, project: ProjectModel
    ) -> Iterator[
        Tuple[Sequence[ast.AST], Dict[str, ClassInfo], Optional[ClassInfo]]
    ]:
        """(root nodes, local types, owner) triples covering the module:
        top-level statements, then each function/method with its inferred
        locals (nested closures ride along with the enclosing scope)."""
        top_level = [
            statement
            for statement in module.ctx.tree.body
            if not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        yield top_level, {}, None
        for fn in module.functions.values():
            yield [fn.node], project.infer_local_types(fn, None), None
        for cls_info in module.classes.values():
            for fn in cls_info.methods.values():
                yield (
                    [fn.node],
                    project.infer_local_types(fn, cls_info),
                    cls_info,
                )

    @staticmethod
    def _annotation_is_classvar(node: ast.AnnAssign) -> bool:
        annotation = node.annotation
        head = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        return getattr(head, "id", getattr(head, "attr", None)) == "ClassVar"


_MUTATOR_METHODS = {
    "append", "appendleft", "add", "update", "extend", "insert", "pop",
    "popleft", "remove", "discard", "clear", "setdefault", "offer",
    "offer_many", "push", "record_matches",
}
_LOCK_WORDS = ("lock", "mutex", "guard")


@register
class ThreadSafetyRule(Rule):
    """R012 — shared state written from worker threads must hold a lock."""

    rule_id = "R012"
    summary = "no unlocked writes to shared state in thread-reachable code"
    rationale = (
        "The real-thread executor exists to prove the engine's claim/merge "
        "protocol is a working concurrent algorithm. Any mutable state "
        "reachable from a worker callable (via the project call graph) "
        "that is written outside a 'with <lock>:' block is a data race "
        "the virtual-time executor can never exhibit — it only shows up "
        "as rare, irreproducible validation failures. Objects a thread "
        "constructs and never publishes are *owned* — thread-local by "
        "construction — and writes to them are not races: ownership flows "
        "from constructor calls ('self' inside __init__), from method "
        "receivers rooted at an owned name, and through call arguments "
        "that are owned in the caller. Ownership is per-path: a scope "
        "also reachable with an unowned receiver is still checked there."
    )
    project_rule = True

    #: one work item: (scope node, module, owner class, spawn site,
    #: inherited local types — the enclosing scope's for closures,
    #: parameter names owned by this path: thread-local by construction)
    _Item = Tuple[
        ast.AST, ModuleInfo, Optional[ClassInfo], str, Dict[str, ClassInfo],
        FrozenSet[str],
    ]

    def check_project(
        self, ctxs: Sequence[FileContext], project: ProjectModel
    ) -> Iterator[Finding]:
        # 1. Find worker entry points: f in pool.submit(f, ...),
        #    Thread(target=f), executor.map(f, xs). A nested worker
        #    closure inherits the spawning function's local types so its
        #    closed-over variables (shared state!) stay resolvable.
        entries: List[ThreadSafetyRule._Item] = []
        for ctx in ctxs:
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            for fn, owner in self._all_functions(module):
                nested = {
                    child.name: child
                    for child in ast.walk(fn.node)
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and child is not fn.node
                }
                local_types = project.infer_local_types(fn, owner)
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    worker = self._worker_ref(node)
                    if worker is None:
                        continue
                    spawn_site = f"{ctx.path}:{node.lineno}"
                    if worker in nested:
                        entries.append(
                            (nested[worker], module, owner, spawn_site,
                             local_types, frozenset())
                        )
                        continue
                    resolved = project.resolve_function(module, worker)
                    if resolved is not None:
                        entries.append(
                            (resolved.node, resolved.module, None, spawn_site,
                             {}, frozenset())
                        )

        # 2. BFS the call graph from the entry points. Calls made while
        #    holding a lock are NOT followed: the callee runs under the
        #    caller's lock, so its writes are protected (single-lock
        #    discipline, which is what this codebase uses). A scope is
        #    revisited per distinct owned-parameter set so a path that
        #    reaches it with an unowned receiver still gets checked.
        reachable: List[ThreadSafetyRule._Item] = []
        seen: Set[Tuple[int, FrozenSet[str]]] = set()
        queue = list(entries)
        while queue:
            item = queue.pop()
            key = (id(item[0]), item[5])
            if key in seen:
                continue
            seen.add(key)
            reachable.append(item)
            queue.extend(self._unlocked_callees(item, project))

        # 3. Flag unlocked writes to shared state in reachable scopes.
        #    Findings are the union over every (scope, ownership) path.
        emitted: Set[Tuple[str, int]] = set()
        for node, module, owner, spawn_site, _, owned in reachable:
            for finding in self._check_scope(node, module, spawn_site, owned):
                key = (finding.path, finding.line)
                if key not in emitted:
                    emitted.add(key)
                    yield finding

    @staticmethod
    def _all_functions(
        module: ModuleInfo,
    ) -> Iterator[Tuple[FunctionInfo, Optional[ClassInfo]]]:
        for fn in module.functions.values():
            yield fn, None
        for cls_info in module.classes.values():
            for fn in cls_info.methods.values():
                yield fn, cls_info

    @staticmethod
    def _worker_ref(node: ast.Call) -> Optional[str]:
        """Name of the callable handed to a thread-spawning call."""
        terminal = _terminal(node.func)
        if terminal == "submit" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Name):
                return first.id
        if terminal == "Thread":
            for keyword in node.keywords:
                if keyword.arg == "target" and isinstance(
                    keyword.value, ast.Name
                ):
                    return keyword.value.id
        if terminal == "map" and isinstance(node.func, ast.Attribute):
            base = _terminal(node.func.value)
            if base in {"pool", "executor"} and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name):
                    return first.id
        return None

    def _unlocked_callees(
        self, item: "ThreadSafetyRule._Item", project: ProjectModel
    ) -> List["ThreadSafetyRule._Item"]:
        """Project functions called from ``item``'s scope outside any
        ``with <lock>:`` block, each with the parameter-ownership set the
        call induces (see :meth:`_callee_owned`)."""
        scope, module, owner, spawn_site, inherited, owned = item
        info = self._info_for(scope, module, owner)
        local_types = dict(inherited)
        if info is not None:
            local_types.update(project.infer_local_types(info, owner))
        owned_names = self._fresh_names(scope) | owned

        calls: List[ast.Call] = []

        def collect(node: ast.AST) -> None:
            if isinstance(node, ast.With) and any(
                self._is_lock(with_item.context_expr)
                for with_item in node.items
            ):
                return  # callee runs under the caller's lock: protected
            if isinstance(node, ast.Call):
                calls.append(node)
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ) and child is not node:
                    continue
                collect(child)

        for statement in getattr(scope, "body", []):
            collect(statement)

        out: List[ThreadSafetyRule._Item] = []
        for node in calls:
            callee = project.resolve_call(module, node, local_types, owner)
            if callee is None and isinstance(node.func, ast.Name):
                callee = project.resolve_function(module, node.func.id)
            if callee is None:
                continue
            if not isinstance(callee.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # synthetic dataclass constructor
            callee_owner = None
            if callee.is_method:
                callee_owner = callee.module.classes.get(
                    callee.qualname.split(".")[0]
                )
            callee_owned = self._callee_owned(node, callee, owned_names)
            out.append(
                (callee.node, callee.module, callee_owner, spawn_site, {},
                 callee_owned)
            )
        return out

    @staticmethod
    def _rooted_at_owned(expr: ast.expr, owned_names: Set[str]) -> bool:
        """True when ``expr`` is a name (or attribute chain on a name)
        whose base is owned in the calling scope."""
        base = expr
        while isinstance(base, ast.Attribute):
            base = base.value
        return isinstance(base, ast.Name) and base.id in owned_names

    @classmethod
    def _callee_owned(
        cls, node: ast.Call, callee: FunctionInfo, owned_names: Set[str]
    ) -> FrozenSet[str]:
        """Callee parameters that are thread-local on this call path.

        Three transfers, all rooted in "constructed by this thread and
        never published": ``self`` inside ``__init__`` reached as a
        constructor call (the instance does not exist elsewhere yet);
        ``self`` of a method whose receiver chain is rooted at an owned
        name (transitive ownership — matches the engine's discipline of
        not aliasing owned object graphs); and parameters bound to
        arguments that are owned names in the caller.
        """
        owned: Set[str] = set()
        raw_args = callee.node.args
        positional = list(raw_args.posonlyargs) + list(raw_args.args)
        is_static = any(
            getattr(decorator, "id", None) == "staticmethod"
            for decorator in callee.node.decorator_list
        )
        has_self = callee.is_method and not is_static and positional
        if has_self:
            is_ctor = (
                callee.qualname.split(".")[-1] == "__init__"
                and _terminal(node.func) != "__init__"
            )
            receiver_owned = isinstance(node.func, ast.Attribute) and (
                cls._rooted_at_owned(node.func.value, owned_names)
            )
            if is_ctor or receiver_owned:
                owned.add(positional[0].arg)
        offset = 1 if has_self else 0
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break
            index = offset + position
            if index < len(positional) and cls._rooted_at_owned(arg, owned_names):
                owned.add(positional[index].arg)
        keyword_params = {a.arg for a in positional[offset:]} | set(
            a.arg for a in raw_args.kwonlyargs
        )
        for keyword in node.keywords:
            if keyword.arg in keyword_params and cls._rooted_at_owned(
                keyword.value, owned_names
            ):
                owned.add(keyword.arg)
        return frozenset(owned)

    @staticmethod
    def _fresh_names(scope: ast.AST) -> Set[str]:
        """Names bound in ``scope`` to freshly constructed values — the
        same value forms :meth:`_check_scope` treats as thread-local
        (constructor/literal results and loop targets). Nested function
        and class bodies are separate scopes and are excluded."""
        fresh: Set[str] = set()
        constructed = (
            ast.Call, ast.List, ast.Dict, ast.Set, ast.ListComp,
            ast.DictComp, ast.SetComp, ast.Constant, ast.Tuple, ast.BinOp,
        )

        def visit(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ) and child is not node:
                    continue
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        if isinstance(target, ast.Name) and isinstance(
                            child.value, constructed
                        ):
                            fresh.add(target.id)
                        elif isinstance(target, (ast.Tuple, ast.List)):
                            for element in target.elts:
                                if isinstance(element, ast.Name):
                                    fresh.add(element.id)
                elif isinstance(child, ast.AnnAssign) and isinstance(
                    child.target, ast.Name
                ):
                    fresh.add(child.target.id)
                elif isinstance(child, ast.For) and isinstance(
                    child.target, ast.Name
                ):
                    fresh.add(child.target.id)
                visit(child)

        visit(scope)
        return fresh

    @staticmethod
    def _info_for(
        scope: ast.AST, module: ModuleInfo, owner: Optional[ClassInfo]
    ) -> Optional[FunctionInfo]:
        name = getattr(scope, "name", None)
        if name is None:
            return None
        if owner is not None and name in owner.methods:
            candidate = owner.methods[name]
            return candidate if candidate.node is scope else None
        candidate = module.functions.get(name)
        return candidate if candidate is not None and candidate.node is scope else None

    def _check_scope(
        self,
        scope: ast.AST,
        module: ModuleInfo,
        spawn_site: str,
        owned: FrozenSet[str] = frozenset(),
    ) -> Iterator[Finding]:
        ctx = module.ctx
        # Locals constructed in this scope, seeded with parameters the
        # calling path owns (thread-local object graphs, incl. 'self' in
        # constructors and methods of owned receivers).
        fresh: Set[str] = set(owned)
        nonlocals: Set[str] = set()
        body = getattr(scope, "body", [])
        args = getattr(scope, "args", None)
        params = set()
        if args is not None:
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                params.add(arg.arg)

        def is_shared(expr: ast.expr) -> Optional[str]:
            """A dotted description if ``expr`` names shared state."""
            if isinstance(expr, ast.Attribute):
                base = expr
                while isinstance(base, ast.Attribute):
                    base = base.value
                if isinstance(base, ast.Name) and base.id in fresh:
                    return None
                return ast.unparse(expr) if hasattr(ast, "unparse") else expr.attr
            if isinstance(expr, ast.Name):
                if expr.id in nonlocals:
                    return expr.id
                if expr.id not in fresh and expr.id not in params:
                    # A bare name that is neither a parameter nor created
                    # here is a closure/global; only flag mutations via
                    # methods (handled by the caller), not rebinding.
                    return None
            return None

        def walk(statements: Sequence[ast.stmt], locked: bool) -> Iterator[Finding]:
            for statement in statements:
                if isinstance(
                    statement,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                if isinstance(statement, ast.Nonlocal):
                    nonlocals.update(statement.names)
                    continue
                if isinstance(statement, ast.Global):
                    nonlocals.update(statement.names)
                    continue
                if isinstance(statement, ast.With):
                    inner_locked = locked or any(
                        self._is_lock(item.context_expr)
                        for item in statement.items
                    )
                    yield from walk(statement.body, inner_locked)
                    continue
                if isinstance(statement, (ast.For, ast.While)):
                    if isinstance(statement, ast.For) and isinstance(
                        statement.target, ast.Name
                    ):
                        fresh.add(statement.target.id)
                    yield from walk(statement.body, locked)
                    yield from walk(statement.orelse, locked)
                    continue
                if isinstance(statement, ast.If):
                    yield from walk(statement.body, locked)
                    yield from walk(statement.orelse, locked)
                    continue
                if isinstance(statement, ast.Try):
                    yield from walk(statement.body, locked)
                    for handler in statement.handlers:
                        yield from walk(handler.body, locked)
                    yield from walk(statement.orelse, locked)
                    yield from walk(statement.finalbody, locked)
                    continue
                if not locked:
                    yield from self._flag_writes(
                        statement, ctx, spawn_site, is_shared
                    )
                # Track freshly constructed locals AFTER checking writes.
                if isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    fresh.add(statement.target.id)
                elif isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name) and isinstance(
                            statement.value,
                            (ast.Call, ast.List, ast.Dict, ast.Set,
                             ast.ListComp, ast.DictComp, ast.SetComp,
                             ast.Constant, ast.Tuple, ast.BinOp),
                        ):
                            fresh.add(target.id)
                        elif isinstance(target, (ast.Tuple, ast.List)):
                            for element in target.elts:
                                if isinstance(element, ast.Name):
                                    fresh.add(element.id)

        yield from walk(body, False)

    @staticmethod
    def _is_lock(expr: ast.expr) -> bool:
        name = _terminal(expr)
        if name is None and isinstance(expr, ast.Call):
            name = _terminal(expr.func)
        if name is None:
            return False
        lowered = name.lower()
        return any(word in lowered for word in _LOCK_WORDS)

    def _flag_writes(
        self, statement: ast.stmt, ctx: FileContext, spawn_site: str, is_shared
    ) -> Iterator[Finding]:
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
        elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
            targets = [statement.target]
        for target in targets:
            write_target = target
            if isinstance(target, ast.Subscript):
                write_target = target.value
            if isinstance(write_target, (ast.Attribute, ast.Subscript)):
                shared = is_shared(
                    write_target.value
                    if isinstance(write_target, ast.Subscript)
                    else write_target
                )
                if shared is not None:
                    yield self.finding(
                        ctx, statement,
                        f"write to shared state '{shared}' without holding "
                        f"a lock in code reachable from a worker thread "
                        f"(spawned at {spawn_site}); wrap in "
                        "'with <obj>.lock:' or move out of the worker",
                    )
        # Mutating method calls on shared receivers.
        for node in ast.walk(statement):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _MUTATOR_METHODS:
                continue
            receiver = node.func.value
            shared = is_shared(receiver)
            if shared is None and isinstance(receiver, ast.Name):
                continue
            if shared is not None:
                yield self.finding(
                    ctx, node,
                    f"mutating call '{shared}.{node.func.attr}(...)' without "
                    f"holding a lock in code reachable from a worker thread "
                    f"(spawned at {spawn_site}); wrap in 'with <obj>.lock:'",
                )


@register
class DeadExperimentRule(Rule):
    """R013 — experiments must be registered, unique, and runnable."""

    rule_id = "R013"
    summary = "experiments registered in the harness registry, ids unique"
    rationale = (
        "python -m repro --all runs exactly what harness/registry.py "
        "lists. An experiment module with an EXPERIMENT_ID that never "
        "reaches _MODULES silently drops a headline result from every "
        "full run and CI sweep; a duplicated id makes one experiment "
        "shadow another in the EXPERIMENTS dict."
    )
    project_rule = True

    def check_project(
        self, ctxs: Sequence[FileContext], project: ProjectModel
    ) -> Iterator[Finding]:
        registry = self._find_registry(project)
        experiment_modules = [
            info
            for info in project.modules.values()
            if "experiments" in info.ctx.parts[:-1]
            and "EXPERIMENT_ID" in info.constants
        ]
        if registry is None:
            return  # partial lint run (no registry in scope): stay silent
        registry_module, registered = registry

        # Unregistered experiment modules. Matching is suffix-tolerant
        # so a tree rooted in an unexpected place (fixture copies) still
        # pairs `from pkg.experiments import e01` with its module.
        def is_registered(info: ModuleInfo) -> bool:
            return any(
                info.name == target or info.name.endswith("." + target)
                for target in registered.values()
            )

        for info in sorted(experiment_modules, key=lambda m: m.name):
            if not is_registered(info):
                node = self._experiment_id_node(info)
                yield self.finding(
                    info.ctx, node,
                    f"experiment module '{info.name}' defines EXPERIMENT_ID="
                    f"'{info.constants['EXPERIMENT_ID']}' but is not listed "
                    "in the registry's _MODULES tuple — it will never run "
                    "under 'python -m repro --all'",
                )

        # Duplicate experiment ids.
        by_id: Dict[object, List[ModuleInfo]] = {}
        for info in experiment_modules:
            by_id.setdefault(info.constants["EXPERIMENT_ID"], []).append(info)
        for experiment_id, infos in sorted(by_id.items(), key=lambda kv: str(kv[0])):
            if len(infos) > 1:
                infos = sorted(infos, key=lambda m: m.name)
                for info in infos[1:]:
                    node = self._experiment_id_node(info)
                    yield self.finding(
                        info.ctx, node,
                        f"EXPERIMENT_ID '{experiment_id}' is also defined by "
                        f"'{infos[0].name}'; registry lookups will silently "
                        "shadow one of them",
                    )

        # Registered names that are not valid experiment modules.
        modules_node = self._modules_node(registry_module)
        for local_name, target in sorted(registered.items()):
            target_module = project.resolve_module(target)
            if target_module is None:
                continue  # outside the linted tree
            if (
                "EXPERIMENT_ID" not in target_module.constants
                or "run" not in target_module.functions
            ):
                yield self.finding(
                    registry_module.ctx, modules_node,
                    f"registry entry '{local_name}' ({target}) lacks an "
                    "EXPERIMENT_ID constant or a run() entry point",
                )

    @staticmethod
    def _find_registry(
        project: ProjectModel,
    ) -> Optional[Tuple[ModuleInfo, Dict[str, str]]]:
        for info in project.modules.values():
            if info.ctx.filename != "registry.py":
                continue
            names = DeadExperimentRule._modules_names(info)
            if names is None:
                continue
            registered = {
                name: info.imports.get(name, name) for name in names
            }
            return info, registered
        return None

    @staticmethod
    def _modules_names(info: ModuleInfo) -> Optional[List[str]]:
        node = DeadExperimentRule._modules_node(info)
        if node is None or not isinstance(node, ast.Assign):
            return None
        value = node.value
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        names: List[str] = []
        for element in value.elts:
            if isinstance(element, ast.Name):
                names.append(element.id)
        return names

    @staticmethod
    def _modules_node(info: ModuleInfo) -> Optional[ast.stmt]:
        for node in info.ctx.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id == "_MODULES":
                    return node
        return None

    @staticmethod
    def _experiment_id_node(info: ModuleInfo) -> ast.stmt:
        for node in info.ctx.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and target.id == "EXPERIMENT_ID":
                    return node
        return info.ctx.tree.body[0] if info.ctx.tree.body else ast.Pass(
            lineno=1, col_offset=0
        )

"""Built-in reprolint rules (R001–R008).

Each rule encodes one determinism / simulation-correctness convention of
this repository; CONTRIBUTING.md documents the rationale and the
suppression policy for every id. Path scoping uses directory components,
so the same rules work on ``src/repro/sim/...`` and on fixture trees
laid out as ``<tmp>/sim/...`` in the rule tests.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.reprolint.core import FileContext, Finding, Rule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from tools.reprolint.project import ProjectModel

#: Code that runs in *simulated* time: wall-clock reads and swallowed
#: exceptions here silently corrupt replays.
SIM_TIME_DIRS = {"sim", "engine", "policies", "core"}
#: Wall-clock is legitimate in the harness / CLI (progress timing).
WALL_CLOCK_EXEMPT_DIRS = {"harness"}
WALL_CLOCK_EXEMPT_FILES = {"cli.py"}
#: Public simulation APIs that must be fully annotated.
ANNOTATION_DIRS = {"sim", "policies", "core"}


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve ``a.b.c`` attribute chains to a dotted string."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The final identifier of a name/attribute expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _in_sim_time_scope(ctx: FileContext) -> bool:
    if ctx.in_dirs(WALL_CLOCK_EXEMPT_DIRS) or ctx.filename in WALL_CLOCK_EXEMPT_FILES:
        return False
    return ctx.in_dirs(SIM_TIME_DIRS)


_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

_STDLIB_RANDOM_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
}


@register
class GlobalRngRule(Rule):
    """R001 — no global or unseeded RNGs outside ``util/rng.py``."""

    rule_id = "R001"
    summary = "no global/unseeded RNGs"
    rationale = (
        "Module-level RNG state (np.random.*, random.*) and unseeded "
        "default_rng() make runs irreproducible and couple every caller "
        "to a shared stream; all randomness must flow from an explicit "
        "seed through repro.util.rng."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not (ctx.filename == "rng.py" and ctx.in_dirs({"util"}))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            yield from self._check_call(ctx, node, dotted)

    def _check_call(
        self, ctx: FileContext, node: ast.Call, dotted: str
    ) -> Iterator[Finding]:
        parts = dotted.split(".")
        # numpy global-state API: np.random.rand(...), np.random.seed(...)
        if len(parts) >= 3 and parts[-3] in {"np", "numpy"} and parts[-2] == "random":
            if parts[-1] not in _NP_RANDOM_ALLOWED:
                yield self.finding(
                    ctx, node,
                    f"global numpy RNG call '{dotted}'; draw from an explicit "
                    "Generator (repro.util.rng.make_rng / RngFactory)",
                )
                return
        # stdlib random module: random.random(), random.Random()
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] in _STDLIB_RANDOM_FNS:
                yield self.finding(
                    ctx, node,
                    f"global stdlib RNG call '{dotted}'; use a seeded "
                    "numpy Generator from repro.util.rng instead",
                )
                return
            if parts[1] == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    ctx, node, "unseeded random.Random(); pass an explicit seed"
                )
                return
        # Unseeded construction: default_rng() / default_rng(None) /
        # make_rng() / make_rng(None).
        if parts[-1] in {"default_rng", "make_rng"}:
            seedless = not node.args and not node.keywords
            explicit_none = (
                len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
                and not node.keywords
            )
            if seedless or explicit_none:
                yield self.finding(
                    ctx, node,
                    f"'{dotted}' without an explicit seed is nondeterministic; "
                    "pass a seed (derive per-component seeds via "
                    "repro.util.rng.derive_seed)",
                )


_RNG_CONSTRUCTORS = {"default_rng", "make_rng", "RngFactory", "Generator"}
_AD_HOC_DRAWS = {"integers", "randint", "random_raw", "bit_generator"}


@register
class AdHocSeedDerivationRule(Rule):
    """R002 — derive child RNGs via ``derive_seed``, not ``rng.integers``."""

    rule_id = "R002"
    summary = "no ad-hoc child-RNG derivation"
    rationale = (
        "Seeding a child generator from rng.integers(...) couples the "
        "child stream to the parent's consumption position: inserting one "
        "draw upstream silently reshuffles every downstream component. "
        "util/rng.py forbids this; use derive_seed()/RngFactory.stream()."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not (ctx.filename == "rng.py" and ctx.in_dirs({"util"}))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            terminal = _terminal_name(node.func)
            if terminal not in _RNG_CONSTRUCTORS:
                continue
            seed_exprs = list(node.args) + [kw.value for kw in node.keywords]
            for seed_expr in seed_exprs:
                draw = self._find_draw(seed_expr)
                if draw is not None:
                    yield self.finding(
                        ctx, node,
                        f"child RNG seeded from '{draw}'; derive child seeds "
                        "with repro.util.rng.derive_seed / RngFactory.stream "
                        "so streams stay position-independent",
                    )
                    break

    @staticmethod
    def _find_draw(expr: ast.AST) -> Optional[str]:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                if sub.func.attr in _AD_HOC_DRAWS:
                    return dotted_name(sub.func) or sub.func.attr
        return None


_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "date.today",
}


@register
class WallClockRule(Rule):
    """R003 — no wall-clock reads in simulated-time code."""

    rule_id = "R003"
    summary = "no wall-clock in sim/engine/policies/core"
    rationale = (
        "Simulation components observe time only through the simulator "
        "(state.now / simulator.now). A wall-clock read makes behavior "
        "depend on host speed, breaking bit-identical replays. The "
        "harness and CLI legitimately time real execution and are exempt."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return _in_sim_time_scope(ctx)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call '{dotted}' in simulated-time code; use "
                    "simulator time (state.now / simulator.now) instead",
                )


_TIME_LIKE_SUFFIX = re.compile(r"(latency|time|deadline|duration|elapsed|timeout)$")
_TIME_LIKE_EXACT = {"now", "arrival", "completion", "warmup", "horizon", "t1"}
_APPROX_CALLS = {"approx", "isclose", "allclose", "assert_allclose"}


@register
class FloatTimeEqualityRule(Rule):
    """R004 — no ``==``/``!=`` on latency/time-valued names."""

    rule_id = "R004"
    summary = "no float equality on time-like values"
    rationale = (
        "Latencies and simulated timestamps are floats accumulated "
        "through arithmetic; exact equality is representation-dependent "
        "and breaks silently under refactoring. Compare with tolerances "
        "(math.isclose / pytest.approx) or restructure the check."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                name = self._time_like(left) or self._time_like(right)
                if name is None:
                    continue
                if self._exempt(left) or self._exempt(right):
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    ctx, node,
                    f"float equality '{symbol}' on time-like value '{name}'; "
                    "use math.isclose / pytest.approx or an explicit "
                    "tolerance",
                )

    @staticmethod
    def _time_like(node: ast.AST) -> Optional[str]:
        name = _terminal_name(node)
        if name is None:
            return None
        lowered = name.lower()
        if lowered in _TIME_LIKE_EXACT or _TIME_LIKE_SUFFIX.search(lowered):
            return name
        return None

    @staticmethod
    def _exempt(node: ast.AST) -> bool:
        # pytest.approx(...) / math.isclose(...) wrap a tolerance; None
        # comparisons are identity checks, not float equality.
        if isinstance(node, ast.Call):
            terminal = _terminal_name(node.func)
            return terminal in _APPROX_CALLS
        return isinstance(node, ast.Constant) and node.value is None


_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict",
}


@register
class MutableDefaultRule(Rule):
    """R005 — no mutable default arguments."""

    rule_id = "R005"
    summary = "no mutable default arguments"
    rationale = (
        "A mutable default is created once at definition time and shared "
        "across calls: state leaks between queries/experiments, the "
        "classic source of order-dependent, irreproducible behavior."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                description = self._mutable(default)
                if description is not None:
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx, default,
                        f"mutable default {description} in '{label}'; default "
                        "to None (or a tuple) and build the container inside "
                        "the function",
                    )

    @staticmethod
    def _mutable(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.List):
            return "[]" if not node.elts else "list literal"
        if isinstance(node, ast.Dict):
            return "{}" if not node.keys else "dict literal"
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return "comprehension"
        if isinstance(node, ast.Call):
            terminal = _terminal_name(node.func)
            if terminal in _MUTABLE_CALLS:
                return f"{terminal}(...)"
        return None


@register
class UnconsumedConfigFieldRule(Rule):
    """R006 — every ``*Config`` dataclass field must be consumed."""

    rule_id = "R006"
    summary = "config dataclass fields must be consumed"
    rationale = (
        "A config field nobody reads is a silent no-op: experiments claim "
        "to vary a knob that does nothing, which corrupts A/B "
        "conclusions. Whitelist reflection-consumed fields explicitly "
        "with a suppression comment on the field line."
    )
    project_rule = True

    def check_project(
        self, ctxs: Sequence[FileContext], project: "ProjectModel"
    ) -> Iterator[Finding]:
        accesses: Dict[str, List[Tuple[str, int]]] = {}
        for ctx in ctxs:
            for name, line in self._attribute_reads(ctx.tree):
                accesses.setdefault(name, []).append((ctx.path, line))

        for ctx in ctxs:
            for class_node in ctx.tree.body:
                if not isinstance(class_node, ast.ClassDef):
                    continue
                if not class_node.name.endswith("Config"):
                    continue
                if not self._is_dataclass(class_node):
                    continue
                span = (class_node.lineno, self._end_line(class_node))
                for field_node, field_name in self._fields(class_node):
                    used = any(
                        not (path == ctx.path and span[0] <= line <= span[1])
                        for path, line in accesses.get(field_name, [])
                    )
                    if not used:
                        yield self.finding(
                            ctx, field_node,
                            f"field '{field_name}' of {class_node.name} is "
                            "never consumed anywhere in the analyzed tree; "
                            "wire it up, delete it, or whitelist with "
                            "'# reprolint: disable=R006 -- <why>'",
                        )

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if _terminal_name(target) == "dataclass":
                return True
        return False

    @staticmethod
    def _fields(node: ast.ClassDef) -> Iterator[Tuple[ast.AnnAssign, str]]:
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            if not isinstance(statement.target, ast.Name):
                continue
            annotation = statement.annotation
            terminal = _terminal_name(annotation)
            if terminal == "ClassVar" or (
                isinstance(annotation, ast.Subscript)
                and _terminal_name(annotation.value) == "ClassVar"
            ):
                continue
            yield statement, statement.target.id

    @staticmethod
    def _end_line(node: ast.ClassDef) -> int:
        return getattr(node, "end_lineno", node.lineno) or node.lineno

    @staticmethod
    def _attribute_reads(tree: ast.Module) -> Iterator[Tuple[str, int]]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute):
                yield node.attr, node.lineno
            elif isinstance(node, ast.Call):
                # getattr(obj, "name", ...) consumes "name" reflectively.
                terminal = _terminal_name(node.func)
                if terminal in {"getattr", "hasattr"} and len(node.args) >= 2:
                    arg = node.args[1]
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        yield arg.value, node.lineno


@register
class SwallowedExceptionRule(Rule):
    """R007 — no bare/blanket exception swallowing in sim hot paths."""

    rule_id = "R007"
    summary = "no bare except / swallowed Exception in sim code"
    rationale = (
        "A swallowed exception in the simulator or engine converts an "
        "invariant violation into silently wrong statistics — the worst "
        "failure mode for a reproduction whose output is numbers."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return _in_sim_time_scope(ctx)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' in simulation code; catch the specific "
                    "repro error type (see repro.errors)",
                )
                continue
            caught = _terminal_name(node.type)
            if caught in {"Exception", "BaseException"} and self._swallows(node):
                yield self.finding(
                    ctx, node,
                    f"'except {caught}' silently swallowed in simulation "
                    "code; handle or re-raise (simulation errors must not "
                    "become silently wrong statistics)",
                )

    @staticmethod
    def _swallows(node: ast.ExceptHandler) -> bool:
        for statement in node.body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Constant
            ):
                continue  # docstring or ellipsis
            return False
        return True


@register
class PublicAnnotationRule(Rule):
    """R008 — public functions in sim/policies/core are fully annotated."""

    rule_id = "R008"
    summary = "public sim/policies/core functions fully annotated"
    rationale = (
        "The simulation and policy layers are the API other layers build "
        "on; complete annotations keep mypy able to catch unit mistakes "
        "(seconds vs milliseconds, int degree vs float) at review time."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_dirs(ANNOTATION_DIRS) and not ctx.in_dirs(
            WALL_CLOCK_EXEMPT_DIRS
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func, owner in self._public_functions(ctx.tree):
            missing = self._missing(func, is_method=owner is not None)
            if missing:
                label = f"{owner}.{func.name}" if owner else func.name
                yield self.finding(
                    ctx, func,
                    f"public function '{label}' missing annotations: "
                    f"{', '.join(missing)}",
                )

    @staticmethod
    def _public_functions(
        tree: ast.Module,
    ) -> Iterator[Tuple[ast.FunctionDef, Optional[str]]]:
        def is_public(name: str) -> bool:
            return not name.startswith("_") or name == "__init__"

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if is_public(node.name):
                    yield node, None
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if is_public(member.name):
                            yield member, node.name

    @staticmethod
    def _missing(func: ast.FunctionDef, is_method: bool) -> List[str]:
        missing: List[str] = []
        positional = list(func.args.posonlyargs) + list(func.args.args)
        if is_method and positional:
            decorators = {
                _terminal_name(d.func if isinstance(d, ast.Call) else d)
                for d in func.decorator_list
            }
            if "staticmethod" not in decorators:
                positional = positional[1:]  # self / cls
        for arg in positional + list(func.args.kwonlyargs):
            if arg.annotation is None:
                missing.append(f"parameter '{arg.arg}'")
        for vararg, prefix in ((func.args.vararg, "*"), (func.args.kwarg, "**")):
            if vararg is not None and vararg.annotation is None:
                missing.append(f"parameter '{prefix}{vararg.arg}'")
        if func.returns is None:
            missing.append("return type")
        return missing

"""Async/blocking safety rule R015.

Three failure modes of mixing an asyncio front door with the existing
thread-pool engine, all caught statically:

* **Blocking calls in ``async def``** — ``time.sleep``, synchronous
  file/socket/subprocess I/O, and un-awaited unbounded
  ``Lock.acquire()`` stall the whole event loop, not one task. In a
  serving ISN every concurrent query pays the stall.
* **Unawaited coroutines** — calling an ``async def`` and discarding
  the result runs *nothing*: the coroutine object is garbage-collected
  un-executed, and the bug shows up only as missing side effects.
* **Async/thread shared-state races** — attribute state written both
  from async tasks and from ``engine/threads.py``-style worker threads
  (the R012 reachability walk) without a lock on either side. The GIL
  does not order plain read-modify-write across a thread-pool worker
  and an event-loop callback.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from tools.reprolint.core import FileContext, Finding, Rule, register
from tools.reprolint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)
from tools.reprolint.wholeprogram import _LOCK_WORDS, ThreadSafetyRule

#: canonical dotted names (after import-alias resolution) that block
_BLOCKING_EXACT = {"time.sleep", "os.system", "os.wait", "select.select"}
#: canonical dotted prefixes that denote synchronous I/O machinery
_BLOCKING_PREFIXES = ("socket.", "subprocess.", "requests.", "urllib.")
#: builtins that block on the file system or a TTY
_BLOCKING_BUILTINS = {"open", "input"}
#: synchronous file-system methods (pathlib and friends)
_BLOCKING_METHODS = {"read_text", "read_bytes", "write_text", "write_bytes"}
#: wrappers that legitimately consume a coroutine object
_COROUTINE_SINKS = {"create_task", "ensure_future", "gather", "run", "wait"}


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _canonical(func: ast.expr, module: ModuleInfo) -> Optional[str]:
    """Dotted name of a call target with its first segment resolved
    through the module's import aliases (``from time import sleep`` →
    ``time.sleep``; ``import numpy as np`` → ``numpy``)."""
    parts: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    head = module.imports.get(parts[0], parts[0])
    return ".".join([head] + parts[1:])


def _is_lock_name(expr: ast.expr) -> bool:
    name = _terminal(expr)
    if name is None:
        return False
    lowered = name.lower()
    return any(word in lowered for word in _LOCK_WORDS)


def _scoped_functions(
    module: ModuleInfo,
) -> Iterator[Tuple[FunctionInfo, Optional[ClassInfo]]]:
    for fn in module.functions.values():
        yield fn, None
    for cls_info in module.classes.values():
        for fn in cls_info.methods.values():
            yield fn, cls_info


def _unlocked_attr_writes(
    scope: ast.AST,
) -> Iterator[Tuple[ast.stmt, str]]:
    """(statement, dotted description) for every attribute/subscript
    write in ``scope`` not under a ``with``/``async with`` lock block.
    Nested function definitions are skipped (separate scopes)."""

    def walk(statements: Sequence[ast.stmt]) -> Iterator[Tuple[ast.stmt, str]]:
        for statement in statements:
            if isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(statement, (ast.With, ast.AsyncWith)):
                if any(
                    _is_lock_name(item.context_expr)
                    or (
                        isinstance(item.context_expr, ast.Call)
                        and _is_lock_name(item.context_expr.func)
                    )
                    for item in statement.items
                ):
                    continue  # protected: not an unlocked write
                yield from walk(statement.body)
                continue
            targets: List[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = list(statement.targets)
            elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
                targets = [statement.target]
            for target in targets:
                base = target
                if isinstance(base, ast.Subscript):
                    base = base.value
                if isinstance(base, ast.Attribute):
                    try:
                        description = ast.unparse(base)
                    except Exception:  # pragma: no cover - defensive
                        description = base.attr
                    yield statement, description
            for attr in ("body", "orelse", "finalbody"):
                children = getattr(statement, attr, None)
                if children:
                    yield from walk(children)
            for handler in getattr(statement, "handlers", []) or []:
                yield from walk(handler.body)

    yield from walk(getattr(scope, "body", []))


@register
class AsyncSafetyRule(Rule):
    """R015 — async code must not block, leak coroutines, or race threads."""

    rule_id = "R015"
    summary = "no blocking calls, dropped coroutines, or async/thread races"
    rationale = (
        "The live-serving front door runs policies and dispatch on an "
        "event loop while chunk execution stays on worker threads. A "
        "blocking call in an async def stalls every in-flight query; a "
        "discarded coroutine silently runs nothing; attribute state "
        "written from both an async task and a thread worker without a "
        "lock is a data race the virtual-time tests cannot reproduce."
    )
    project_rule = True

    def check_project(
        self, ctxs: Sequence[FileContext], project: ProjectModel
    ) -> Iterator[Finding]:
        async_writes: Dict[Tuple[str, str], List[Tuple[FileContext, ast.stmt]]]
        async_writes = {}
        for ctx in ctxs:
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            for fn, owner in _scoped_functions(module):
                node = fn.node
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                yield from self._check_unawaited(ctx, module, fn, owner, project)
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_blocking(ctx, module, fn)
                    for statement, description in _unlocked_attr_writes(node):
                        async_writes.setdefault(
                            (module.name, description), []
                        ).append((ctx, statement))
        if async_writes:
            yield from self._check_cross_races(ctxs, project, async_writes)

    # ------------------------------------------------------------------
    # Blocking calls inside async def
    # ------------------------------------------------------------------

    def _check_blocking(
        self, ctx: FileContext, module: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Finding]:
        awaited: Set[int] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Await) and isinstance(node.value, ast.Call):
                awaited.add(id(node.value))
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.FunctionDef,)) and node is not fn.node:
                continue
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            func = node.func
            canonical = _canonical(func, module)
            if isinstance(func, ast.Name) and func.id in _BLOCKING_BUILTINS:
                yield self.finding(
                    ctx, node,
                    f"blocking builtin {func.id}() inside 'async def "
                    f"{fn.name}' stalls the event loop; use "
                    "run_in_executor or an async API",
                )
                continue
            if canonical is not None and (
                canonical in _BLOCKING_EXACT
                or canonical.startswith(_BLOCKING_PREFIXES)
            ):
                yield self.finding(
                    ctx, node,
                    f"blocking call {canonical}() inside 'async def "
                    f"{fn.name}' stalls the event loop for every "
                    "in-flight query; await asyncio.sleep / an async "
                    "client, or push it to run_in_executor",
                )
                continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _BLOCKING_METHODS
            ):
                yield self.finding(
                    ctx, node,
                    f"synchronous file I/O .{func.attr}() inside 'async "
                    f"def {fn.name}'; push it to run_in_executor",
                )
                continue
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "acquire"
                and _is_lock_name(func.value)
                and not self._bounded_acquire(node)
            ):
                yield self.finding(
                    ctx, node,
                    f"unbounded {_terminal(func.value)}.acquire() inside "
                    f"'async def {fn.name}' can deadlock the event loop; "
                    "use an asyncio.Lock (await lock.acquire()) or pass "
                    "blocking=False/timeout",
                )

    @staticmethod
    def _bounded_acquire(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if keyword.arg in {"blocking", "timeout"}:
                return True
        return bool(node.args)  # positional blocking/timeout argument

    # ------------------------------------------------------------------
    # Unawaited coroutines
    # ------------------------------------------------------------------

    def _check_unawaited(
        self,
        ctx: FileContext,
        module: ModuleInfo,
        fn: FunctionInfo,
        owner: Optional[ClassInfo],
        project: ProjectModel,
    ) -> Iterator[Finding]:
        local_types = project.infer_local_types(fn, owner)
        for statement in ast.walk(fn.node):
            if not isinstance(statement, ast.Expr):
                continue
            call = statement.value
            if not isinstance(call, ast.Call):
                continue
            terminal = _terminal(call.func)
            if terminal in _COROUTINE_SINKS:
                continue
            callee = project.resolve_call(module, call, local_types, owner)
            if callee is None or not isinstance(
                callee.node, ast.AsyncFunctionDef
            ):
                continue
            yield self.finding(
                ctx, statement,
                f"coroutine '{callee.qualname}()' is called but never "
                "awaited — the body never runs; await it or wrap it in "
                "asyncio.create_task(...)",
            )

    # ------------------------------------------------------------------
    # Async/thread shared-state races
    # ------------------------------------------------------------------

    def _check_cross_races(
        self,
        ctxs: Sequence[FileContext],
        project: ProjectModel,
        async_writes: Dict[Tuple[str, str], List[Tuple[FileContext, ast.stmt]]],
    ) -> Iterator[Finding]:
        """Intersect unlocked attribute writes in async defs with writes
        in thread-worker-reachable scopes (R012's reachability walk)."""
        walker = ThreadSafetyRule()
        entries: List[ThreadSafetyRule._Item] = []
        for ctx in ctxs:
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            for fn, owner in _scoped_functions(module):
                if not isinstance(
                    fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                local_types = project.infer_local_types(fn, owner)
                nested = {
                    child.name: child
                    for child in ast.walk(fn.node)
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and child is not fn.node
                }
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    worker = walker._worker_ref(node)
                    if worker is None:
                        continue
                    spawn_site = f"{ctx.path}:{node.lineno}"
                    if worker in nested:
                        entries.append(
                            (nested[worker], module, owner, spawn_site,
                             local_types, frozenset())
                        )
                        continue
                    resolved = project.resolve_function(module, worker)
                    if resolved is not None:
                        entries.append(
                            (resolved.node, resolved.module, None,
                             spawn_site, {}, frozenset())
                        )

        thread_writes: Dict[Tuple[str, str], str] = {}
        seen: Set[Tuple[int, FrozenSet[str]]] = set()
        queue = list(entries)
        while queue:
            item = queue.pop()
            scope, module, _owner, spawn_site, _inherited, owned = item
            if (id(scope), owned) in seen:
                continue
            seen.add((id(scope), owned))
            for _statement, description in _unlocked_attr_writes(scope):
                thread_writes.setdefault(
                    (module.name, description), spawn_site
                )
            queue.extend(walker._unlocked_callees(item, project))

        emitted: Set[Tuple[str, int]] = set()
        for key, sites in sorted(async_writes.items()):
            spawn_site = thread_writes.get(key)
            if spawn_site is None:
                continue
            _module_name, description = key
            for ctx, statement in sites:
                mark = (ctx.path, statement.lineno)
                if mark in emitted:
                    continue
                emitted.add(mark)
                yield self.finding(
                    ctx, statement,
                    f"'{description}' is written from an async task here "
                    f"AND from a thread worker (spawned at {spawn_site}) "
                    "with no lock on either side; protect both writes "
                    "with one lock or confine the state to one domain",
                )

"""Architectural layering and purity rules R014 / R017.

Both rules are driven by the declarative layer map (``layers.toml``,
loaded per linted file via :func:`tools.reprolint.layers.find_layer_map`
— see that module for the resolution and matching semantics).

* **R014 — layering / clock discipline.** Modules assigned to a layer
  may import (and, at the call-graph level, invoke methods on receivers
  of classes from) only the layers their layer is allowed to see.
  Modules in the *kernel* layers additionally must be clock-agnostic:
  no imports of wall-clock / event-loop modules (``time``, ``asyncio``,
  ``datetime``, …) anywhere in the file — lazy in-function imports
  included — and ``.now`` attribute reads only through receivers typed
  as (or named like) a clock. The kernel is the code the live-serving
  runtime will rehost on wall time; any simulator or wall-clock leak
  here silently breaks the virtual/wall equivalence.

* **R017 — policy purity.** Functions in the purity layers must be pure
  with respect to the process: no I/O (print/open/file writes/network),
  no mutation of module-level state (``global`` or writes through
  module-level names), and no RNG creation or implicit global streams —
  randomness arrives as an injected ``RngFactory`` stream or generator
  argument. Purity is what makes a policy decision replayable: the same
  (state, info) must yield the same degree on every run and host.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.reprolint.core import FileContext, Finding, Rule, register
from tools.reprolint.layers import LayerMap, find_layer_map
from tools.reprolint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)


def _iter_imports(tree: ast.Module) -> Iterator[Tuple[ast.stmt, str]]:
    """Every imported dotted module name in the file (lazy ones too)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and not node.level:
                yield node, node.module


def _scoped_functions(
    module: ModuleInfo,
) -> Iterator[Tuple[FunctionInfo, Optional[ClassInfo]]]:
    for fn in module.functions.values():
        yield fn, None
    for cls_info in module.classes.values():
        for fn in cls_info.methods.values():
            yield fn, cls_info


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class LayeringRule(Rule):
    """R014 — declarative layering + kernel clock discipline."""

    rule_id = "R014"
    summary = "layer map respected; scheduling kernel is clock-agnostic"
    rationale = (
        "The scheduling kernel (policies + clock + pure dispatch "
        "decisions) must run identically under the virtual-time "
        "simulator and the wall-clock runtime. layers.toml declares the "
        "architecture: which layer each module belongs to and what it "
        "may import. R014 enforces it on the import graph AND on the "
        "call graph (method calls on receivers of higher-layer classes), "
        "and pins the clock discipline: kernel code never imports "
        "time/asyncio/datetime and reads `.now` only through a "
        "ClockProtocol-typed (or clock-named) receiver."
    )
    project_rule = True

    def check_project(
        self, ctxs: Sequence[FileContext], project: ProjectModel
    ) -> Iterator[Finding]:
        for ctx in ctxs:
            layer_map = find_layer_map(ctx.path)
            if layer_map is None:
                continue
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            layer = layer_map.layer_of(module.name)
            if layer is None:
                continue
            yield from self._check_imports(ctx, module, layer, layer_map)
            yield from self._check_calls(ctx, module, layer, layer_map, project)
            if layer_map.is_kernel_layer(layer):
                yield from self._check_clock_reads(
                    ctx, module, layer_map, project
                )

    # ------------------------------------------------------------------
    # Import graph
    # ------------------------------------------------------------------

    def _check_imports(
        self,
        ctx: FileContext,
        module: ModuleInfo,
        layer: str,
        layer_map: LayerMap,
    ) -> Iterator[Finding]:
        allowed = layer_map.allowed_for(layer)
        kernel = layer_map.is_kernel_layer(layer)
        for node, target in _iter_imports(ctx.tree):
            if kernel:
                top = target.split(".")[0]
                if top in layer_map.clock.forbidden_modules:
                    yield self.finding(
                        ctx, node,
                        f"kernel-layer module '{module.name}' imports "
                        f"'{target}': the scheduling kernel is "
                        "clock-agnostic — read time through ClockProtocol "
                        "and let the driver own the event loop",
                    )
                    continue
            target_layer = layer_map.layer_of(target)
            if target_layer is None or target_layer in allowed:
                continue
            yield self.finding(
                ctx, node,
                f"layer '{layer}' module '{module.name}' imports "
                f"'{target}' from layer '{target_layer}'; allowed layers: "
                f"{', '.join(sorted(allowed))} (see layers.toml)",
            )

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------

    def _check_calls(
        self,
        ctx: FileContext,
        module: ModuleInfo,
        layer: str,
        layer_map: LayerMap,
        project: ProjectModel,
    ) -> Iterator[Finding]:
        allowed = layer_map.allowed_for(layer)
        for fn, owner in _scoped_functions(module):
            if not isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_types = project.infer_local_types(fn, owner)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                receiver = project.receiver_class(
                    node.func.value, module, local_types, owner
                )
                if receiver is None:
                    continue
                receiver_layer = layer_map.layer_of(receiver.module.name)
                if receiver_layer is None or receiver_layer in allowed:
                    continue
                yield self.finding(
                    ctx, node,
                    f"layer '{layer}' code calls "
                    f"'{receiver.name}.{node.func.attr}()' on a receiver "
                    f"from layer '{receiver_layer}'; pass the result in, "
                    "or move the dependency below the layer boundary",
                )

    # ------------------------------------------------------------------
    # Clock discipline
    # ------------------------------------------------------------------

    def _check_clock_reads(
        self,
        ctx: FileContext,
        module: ModuleInfo,
        layer_map: LayerMap,
        project: ProjectModel,
    ) -> Iterator[Finding]:
        clock_classes = set(layer_map.clock.clock_classes)

        def sanctioned(receiver_expr: ast.expr, local_types, owner) -> bool:
            receiver = project.receiver_class(
                receiver_expr, module, local_types, owner
            )
            if receiver is not None:
                return receiver.name in clock_classes
            terminal = _terminal_name(receiver_expr)
            return terminal is not None and "clock" in terminal.lower()

        def scan(
            root: ast.AST, local_types: Dict[str, ClassInfo], owner
        ) -> Iterator[Finding]:
            for node in ast.walk(root):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr == "now"
                    and isinstance(node.ctx, ast.Load)
                    and not sanctioned(node.value, local_types, owner)
                ):
                    described = _dotted(node) or f"<expr>.{node.attr}"
                    yield self.finding(
                        ctx, node,
                        f"kernel time read '{described}' bypasses the clock "
                        "interface; type the receiver as ClockProtocol (or "
                        "name it *clock*) so virtual and wall time stay "
                        "interchangeable",
                    )

        top_level = [
            statement
            for statement in ctx.tree.body
            if not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        for statement in top_level:
            yield from scan(statement, {}, None)
        for fn, owner in _scoped_functions(module):
            if not isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            local_types = project.infer_local_types(fn, owner)
            yield from scan(fn.node, local_types, owner)


_IO_NAME_CALLS = {"print", "open", "input"}
_IO_ATTR_CALLS = {
    "write_text", "write_bytes", "read_text", "read_bytes", "urlopen",
    "savefig", "to_csv",
}
_IO_MODULE_PREFIXES = ("os.", "sys.", "subprocess.", "shutil.", "socket.")
_RNG_MODULE_PREFIXES = ("np.random.", "numpy.random.", "random.")
_GLOBAL_MUTATORS = {
    "append", "appendleft", "add", "update", "extend", "insert", "pop",
    "popleft", "remove", "discard", "clear", "setdefault",
}


@register
class PolicyPurityRule(Rule):
    """R017 — policy-kernel functions must be pure."""

    rule_id = "R017"
    summary = "policy-kernel functions pure: no I/O, globals, or ad-hoc RNG"
    rationale = (
        "A policy decision must be a function of its inputs: the same "
        "(state, info) yields the same degree on every replay and every "
        "host, or the adaptive-vs-fixed comparison stops being causal. "
        "I/O, module-global mutation, and locally-created RNGs are the "
        "three ways kernel code grows hidden inputs; randomness is "
        "legitimate only as an injected RngFactory stream the run's "
        "seed controls."
    )
    project_rule = True

    def check_project(
        self, ctxs: Sequence[FileContext], project: ProjectModel
    ) -> Iterator[Finding]:
        for ctx in ctxs:
            layer_map = find_layer_map(ctx.path)
            if layer_map is None:
                continue
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            layer = layer_map.layer_of(module.name)
            if not layer_map.is_purity_layer(layer):
                continue
            module_globals = self._module_level_names(ctx.tree)
            for fn, _owner in _scoped_functions(module):
                if not isinstance(
                    fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                yield from self._check_function(
                    ctx, fn, module, module_globals
                )

    @staticmethod
    def _module_level_names(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
        return names

    def _check_function(
        self,
        ctx: FileContext,
        fn: FunctionInfo,
        module: ModuleInfo,
        module_globals: Set[str],
    ) -> Iterator[Finding]:
        declared_global: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
                yield self.finding(
                    ctx, node,
                    f"'{fn.qualname}' declares global "
                    f"{', '.join(node.names)}: kernel functions may not "
                    "mutate module state — thread it through arguments "
                    "or return values",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    if isinstance(base, ast.Attribute):
                        base = base.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id in module_globals
                        and not isinstance(target, ast.Name)
                    ):
                        yield self.finding(
                            ctx, node,
                            f"'{fn.qualname}' writes through module-level "
                            f"name '{base.id}': kernel state must be "
                            "instance- or argument-owned",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, fn, node, module_globals)

    def _check_call(
        self,
        ctx: FileContext,
        fn: FunctionInfo,
        node: ast.Call,
        module_globals: Set[str],
    ) -> Iterator[Finding]:
        func = node.func
        dotted = _dotted(func)
        terminal = _terminal_name(func)
        # I/O -----------------------------------------------------------
        if isinstance(func, ast.Name) and func.id in _IO_NAME_CALLS:
            yield self.finding(
                ctx, node,
                f"'{fn.qualname}' performs I/O via {func.id}(): kernel "
                "functions are pure — report through return values or "
                "injected sinks",
            )
            return
        if terminal in _IO_ATTR_CALLS or (
            dotted is not None and dotted.startswith(_IO_MODULE_PREFIXES)
        ):
            yield self.finding(
                ctx, node,
                f"'{fn.qualname}' performs I/O via "
                f"{dotted or terminal}(): kernel functions are pure",
            )
            return
        # RNG -----------------------------------------------------------
        if terminal == "default_rng" or (
            dotted is not None and dotted.startswith(_RNG_MODULE_PREFIXES)
        ):
            yield self.finding(
                ctx, node,
                f"'{fn.qualname}' creates or uses an ad-hoc RNG "
                f"({dotted or terminal}): draw from an injected "
                "RngFactory stream instead",
            )
            return
        if isinstance(func, ast.Name) and func.id in {"Random", "RngFactory"}:
            yield self.finding(
                ctx, node,
                f"'{fn.qualname}' constructs {func.id}(...) inside the "
                "kernel: streams are created by the driver and injected",
            )
            return
        # Mutation of module-level state --------------------------------
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _GLOBAL_MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in module_globals
        ):
            yield self.finding(
                ctx, node,
                f"'{fn.qualname}' mutates module-level "
                f"'{func.value.id}' via .{func.attr}(...): kernel state "
                "must be instance- or argument-owned",
            )

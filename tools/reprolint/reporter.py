"""Finding reporters: human-readable text, stable JSON, and SARIF.

The JSON document is a stable machine interface (``schema_version`` is
bumped on any breaking shape change; see ``tests/test_reprolint.py``'s
schema-shape test). The SARIF output targets the GitHub code-scanning
ingestion subset of SARIF 2.1.0 so findings render as PR annotations.
"""

from __future__ import annotations

import json
from typing import Dict, List

from tools.reprolint.core import Finding, LintResult, all_rules

#: Bumped on breaking changes to the JSON document shape.
JSON_SCHEMA_VERSION = 2

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult, verbose_summary: bool = True) -> str:
    """One ``path:line:col: RULE message`` line per finding + a summary."""
    lines: List[str] = [finding.format() for finding in result.all_findings]
    if verbose_summary:
        counts = result.counts_by_rule()
        if counts:
            breakdown = ", ".join(f"{rule}: {n}" for rule, n in counts.items())
            lines.append("")
            lines.append(
                f"{sum(counts.values())} finding(s) in "
                f"{len({f.path for f in result.all_findings})} file(s) "
                f"({result.files_scanned} scanned) [{breakdown}]"
            )
        else:
            lines.append(f"clean: 0 findings in {result.files_scanned} file(s)")
        if result.baselined:
            lines.append(
                f"{len(result.baselined)} baselined finding(s) not counted "
                "above (see .reprolint-baseline.json)"
            )
    return "\n".join(lines)


def _finding_dict(finding: Finding) -> Dict[str, object]:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule_id,
        "message": finding.message,
    }


def render_json(result: LintResult) -> str:
    """Stable JSON document for CI artifacts / downstream tooling."""
    registry = all_rules()
    rules: Dict[str, object] = {}
    for rule_id in result.rules_run or sorted(registry):
        rule_cls = registry.get(rule_id)
        if rule_cls is None:  # parse-error pseudo rules (E999)
            continue
        rules[rule_id] = {
            "summary": rule_cls.summary,
            "rationale": rule_cls.rationale,
            "project_rule": rule_cls.project_rule,
        }
    payload: Dict[str, object] = {
        "schema_version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "rules": rules,
        "counts_by_rule": result.counts_by_rule(),
        "findings": [_finding_dict(finding) for finding in result.all_findings],
        "suppressed_by_rule": result.suppressed_by_rule(),
        "suppressed_total": len(result.suppressed),
        "baselined": [_finding_dict(finding) for finding in result.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 document (GitHub code-scanning ingestion subset)."""
    registry = all_rules()
    rule_ids = sorted(
        set(result.rules_run or registry)
        | {finding.rule_id for finding in result.all_findings}
    )
    rules: List[Dict[str, object]] = []
    index_of: Dict[str, int] = {}
    for rule_id in rule_ids:
        rule_cls = registry.get(rule_id)
        descriptor: Dict[str, object] = {"id": rule_id}
        if rule_cls is not None:
            descriptor["shortDescription"] = {"text": rule_cls.summary}
            descriptor["fullDescription"] = {"text": rule_cls.rationale}
            descriptor["help"] = {
                "text": "See CONTRIBUTING.md, section 'reprolint rules'."
            }
        else:  # E999 parse errors
            descriptor["shortDescription"] = {"text": "parse error"}
        index_of[rule_id] = len(rules)
        rules.append(descriptor)

    def sarif_result(finding: Finding, suppressed: bool) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "ruleIndex": index_of.get(finding.rule_id, -1),
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if suppressed:
            entry["suppressions"] = [{"kind": "external"}]
        return entry

    results = [
        sarif_result(finding, suppressed=False)
        for finding in result.all_findings
    ] + [
        sarif_result(finding, suppressed=True) for finding in result.baselined
    ]
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

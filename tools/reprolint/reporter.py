"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict, List

from tools.reprolint.core import LintResult


def render_text(result: LintResult, verbose_summary: bool = True) -> str:
    """One ``path:line:col: RULE message`` line per finding + a summary."""
    lines: List[str] = [finding.format() for finding in result.all_findings]
    if verbose_summary:
        counts = result.counts_by_rule()
        if counts:
            breakdown = ", ".join(f"{rule}: {n}" for rule, n in counts.items())
            lines.append("")
            lines.append(
                f"{sum(counts.values())} finding(s) in "
                f"{len({f.path for f in result.all_findings})} file(s) "
                f"({result.files_scanned} scanned) [{breakdown}]"
            )
        else:
            lines.append(f"clean: 0 findings in {result.files_scanned} file(s)")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Stable JSON document for CI artifacts / downstream tooling."""
    payload: Dict[str, object] = {
        "files_scanned": result.files_scanned,
        "counts_by_rule": result.counts_by_rule(),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "rule": finding.rule_id,
                "message": finding.message,
            }
            for finding in result.all_findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

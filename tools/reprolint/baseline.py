"""Baseline mechanism for staged rule adoption.

A baseline file (``.reprolint-baseline.json``) records known, accepted
findings so a newly introduced rule can gate *new* violations
immediately while the existing ones are burned down over time:

* ``--write-baseline FILE`` snapshots the current findings;
* ``--baseline FILE`` filters any finding whose fingerprint appears in
  the file out of the failing set (it is still reported as baselined).

Fingerprints are ``(path, rule_id, message)`` — deliberately **not**
line numbers, so unrelated edits that shift code around do not
invalidate the baseline, while fixing the finding (message changes or
disappears) does. Entries in the baseline that no longer match any
finding are *stale* and reported so the file can be shrunk; stale
entries never cause a failure by themselves.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from tools.reprolint.core import Finding

#: Schema version of the baseline file itself.
BASELINE_VERSION = 1

Fingerprint = Tuple[str, str, str]  # (path, rule_id, message)


def fingerprint(finding: Finding) -> Fingerprint:
    return (finding.path, finding.rule_id, finding.message)


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Snapshot ``findings`` (fingerprints only) to ``path``."""
    entries = sorted(
        {fingerprint(finding) for finding in findings}
    )
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {"path": entry[0], "rule": entry[1], "message": entry[2]}
            for entry in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: str) -> List[Fingerprint]:
    """Load fingerprints from a baseline file (raises ValueError on a
    malformed document)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed baseline file {path}: {exc}") from exc
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(f"malformed baseline file {path}: no 'entries' key")
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline file {path} has version {payload.get('version')!r}; "
            f"this reprolint reads version {BASELINE_VERSION}"
        )
    entries: List[Fingerprint] = []
    for raw in payload["entries"]:
        if not isinstance(raw, dict):
            raise ValueError(f"malformed baseline entry in {path}: {raw!r}")
        try:
            entries.append((str(raw["path"]), str(raw["rule"]), str(raw["message"])))
        except KeyError as exc:
            raise ValueError(
                f"baseline entry in {path} missing key {exc}"
            ) from exc
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[Fingerprint]
) -> Tuple[List[Finding], List[Finding], List[Fingerprint]]:
    """Split findings into (new, baselined); also return stale entries.

    A baseline entry absorbs ANY number of findings with its fingerprint
    (several identical violations in one file count as one entry).
    """
    known = set(entries)
    new: List[Finding] = []
    baselined: List[Finding] = []
    matched: set = set()
    for finding in findings:
        fp = fingerprint(finding)
        if fp in known:
            baselined.append(finding)
            matched.add(fp)
        else:
            new.append(finding)
    stale = sorted(known - matched)
    return new, baselined, stale

"""Whole-program project model for cross-module analyses.

PR 2's rules each looked at one file (R006 excepted, and even that only
matched attribute *names*). The analyses added on top of this module —
units-of-measure dataflow (R009), RNG stream collisions (R010), typed
config-field consumption (R011), thread-safety (R012), dead experiments
(R013) — all need to see the program, not a file: a seconds-valued
interval produced in ``sim/arrivals.py`` flows into a deadline parameter
in ``sim/server.py`` through two call sites in ``sim/experiment.py``.

The model is deliberately syntactic (no imports are executed):

* **module graph** — every :class:`~tools.reprolint.core.FileContext`
  becomes a :class:`ModuleInfo` with a dotted module name derived from
  its path (``src/repro/sim/engine.py`` → ``repro.sim.engine``); the
  import table maps local aliases to the dotted names they refer to.
* **symbol table** — top-level functions, classes (with methods and
  annotated fields), and module-level constant assignments.
* **call resolution** — :meth:`ProjectModel.resolve_call` resolves a
  call expression to the :class:`FunctionInfo` it invokes, following
  ``from m import f`` aliases, ``mod.f`` attribute calls, ``self.m()``
  within a class, ``ClassName(...)`` constructors (synthesizing
  dataclass ``__init__`` parameters from field annotations), and
  ``var.m()`` when ``var``'s class is known from a local annotation or
  a visible constructor call.

Resolution is best-effort and sound-by-omission: an unresolvable call
returns ``None`` and the rules stay silent about it, so dynamic code
never produces false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from tools.reprolint.core import FileContext

#: Path components that root a dotted module name. ``src`` is a
#: conventional layout root (stripped); ``tools``/``tests`` are
#: themselves package roots and kept.
_LAYOUT_ROOTS = {"src"}


def module_name_for_path(parts: Sequence[str]) -> str:
    """Derive a dotted module name from path components.

    >>> module_name_for_path(("src", "repro", "sim", "engine.py"))
    'repro.sim.engine'
    >>> module_name_for_path(("tools", "reprolint", "core.py"))
    'tools.reprolint.core'
    >>> module_name_for_path(("pkg", "__init__.py"))
    'pkg'
    """
    components = list(parts)
    for root in _LAYOUT_ROOTS:
        if root in components:
            components = components[components.index(root) + 1 :]
            break
    if components and components[-1].endswith(".py"):
        components[-1] = components[-1][: -len(".py")]
    if components and components[-1] == "__init__":
        components = components[:-1]
    return ".".join(components) if components else "<root>"


@dataclass
class FunctionInfo:
    """One function or method, with enough signature to match call args."""

    name: str
    qualname: str  # "f" or "Class.f"
    module: "ModuleInfo"
    node: ast.AST  # FunctionDef / AsyncFunctionDef
    params: List[ast.arg]  # positional+kwonly, self/cls already dropped
    kwonly_names: Tuple[str, ...]
    is_method: bool

    @property
    def path(self) -> str:
        return self.module.ctx.path


@dataclass
class ClassInfo:
    """A top-level class: methods and annotated (dataclass-style) fields."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: field name -> (AnnAssign node, annotation expression)
    fields: Dict[str, Tuple[ast.AnnAssign, ast.expr]] = field(default_factory=dict)
    #: instance attribute -> class name, recovered from ``__init__``
    #: bodies (``self.x = param`` with an annotated param, or
    #: ``self.x = ClassName(...)``) and dataclass field annotations.
    attr_class_names: Dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False

    def constructor(self) -> Optional[FunctionInfo]:
        """``__init__`` if defined, else a synthetic one for dataclasses
        (parameter order = field declaration order, as the decorator
        generates)."""
        explicit = self.methods.get("__init__")
        if explicit is not None:
            return explicit
        if not self.is_dataclass:
            return None
        params = []
        for field_name, (node, annotation) in self.fields.items():
            arg = ast.arg(arg=field_name, annotation=annotation)
            ast.copy_location(arg, node)
            params.append(arg)
        return FunctionInfo(
            name="__init__",
            qualname=f"{self.name}.__init__",
            module=self.module,
            node=self.node,
            params=params,
            kwonly_names=(),
            is_method=True,
        )


@dataclass
class ModuleInfo:
    """One parsed module in the project."""

    name: str
    ctx: FileContext
    #: local alias -> dotted target ("np" -> "numpy";
    #: "PoissonArrivals" -> "repro.sim.arrivals.PoissonArrivals")
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``NAME = <constant>`` assignments
    constants: Dict[str, object] = field(default_factory=dict)


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", None)
        if name == "dataclass":
            return True
    return False


def _function_info(
    node: ast.AST, module: ModuleInfo, owner: Optional[str]
) -> FunctionInfo:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    if owner is not None and positional:
        decorators = {
            (d.func if isinstance(d, ast.Call) else d) for d in node.decorator_list
        }
        names = {getattr(d, "id", getattr(d, "attr", None)) for d in decorators}
        if "staticmethod" not in names:
            positional = positional[1:]  # drop self / cls
    kwonly = list(args.kwonlyargs)
    return FunctionInfo(
        name=node.name,
        qualname=f"{owner}.{node.name}" if owner else node.name,
        module=module,
        node=node,
        params=positional + kwonly,
        kwonly_names=tuple(a.arg for a in kwonly),
        is_method=owner is not None,
    )


class ProjectModel:
    """Module graph + symbol table + call resolution over a file set."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.by_path: Dict[str, ModuleInfo] = {
            info.ctx.path: info for info in modules.values()
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, ctxs: Sequence[FileContext]) -> "ProjectModel":
        modules: Dict[str, ModuleInfo] = {}
        for ctx in ctxs:
            info = ModuleInfo(name=module_name_for_path(ctx.parts), ctx=ctx)
            cls._index_module(info)
            modules[info.name] = info
        return cls(modules)

    @staticmethod
    def _index_module(info: ModuleInfo) -> None:
        for node in info.ctx.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    info.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports are rare here; skip
                for alias in node.names:
                    local = alias.asname or alias.name
                    info.imports[local] = f"{node.module}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[node.name] = _function_info(node, info, None)
            elif isinstance(node, ast.ClassDef):
                cls_info = ClassInfo(
                    name=node.name,
                    module=info,
                    node=node,
                    is_dataclass=_is_dataclass_decorated(node),
                )
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        cls_info.methods[member.name] = _function_info(
                            member, info, node.name
                        )
                    elif isinstance(member, ast.AnnAssign) and isinstance(
                        member.target, ast.Name
                    ):
                        cls_info.fields[member.target.id] = (
                            member,
                            member.annotation,
                        )
                ProjectModel._index_attr_classes(cls_info)
                info.classes[node.name] = cls_info
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    node.value, ast.Constant
                ):
                    info.constants[target.id] = node.value.value

    @staticmethod
    def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
        """The head identifier of a simple annotation expression."""
        node = annotation
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.strip("'\"").rpartition(".")[2]
        if isinstance(node, ast.Subscript):
            head = node.value
            head_name = getattr(head, "id", getattr(head, "attr", None))
            if head_name in {"Optional", "Final", "Annotated", "ClassVar"}:
                inner = node.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                return ProjectModel._annotation_name(
                    inner if isinstance(inner, ast.expr) else None
                )
            return None
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    @staticmethod
    def _index_attr_classes(cls_info: ClassInfo) -> None:
        for field_name, (_, annotation) in cls_info.fields.items():
            name = ProjectModel._annotation_name(annotation)
            if name is not None:
                cls_info.attr_class_names[field_name] = name
        init = cls_info.methods.get("__init__")
        if init is None:
            return
        param_annotations = {
            p.arg: ProjectModel._annotation_name(p.annotation)
            for p in init.params
            if p.annotation is not None
        }
        assert isinstance(init.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(init.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = node.value
            if isinstance(value, ast.Name):
                name = param_annotations.get(value.id)
                if name is not None:
                    cls_info.attr_class_names.setdefault(target.attr, name)
            elif isinstance(value, ast.Call):
                callee = value.func
                name = (
                    callee.id
                    if isinstance(callee, ast.Name)
                    else callee.attr
                    if isinstance(callee, ast.Attribute)
                    else None
                )
                if name is not None:
                    cls_info.attr_class_names.setdefault(target.attr, name)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve_module(self, dotted: str) -> Optional[ModuleInfo]:
        """Find a module by dotted name. Falls back to a unique *suffix*
        match so trees rooted somewhere unexpected (fixture copies under
        a tmp dir) still resolve their internal imports."""
        exact = self.modules.get(dotted)
        if exact is not None:
            return exact
        suffix = "." + dotted
        matches = [
            info for name, info in self.modules.items() if name.endswith(suffix)
        ]
        return matches[0] if len(matches) == 1 else None

    def resolve_class(
        self, module: ModuleInfo, name: str
    ) -> Optional[ClassInfo]:
        """Resolve a class name visible in ``module`` to its definition."""
        if name in module.classes:
            return module.classes[name]
        target = module.imports.get(name)
        if target is None:
            return None
        owner, _, symbol = target.rpartition(".")
        owner_module = self.resolve_module(owner)
        if owner_module is not None:
            return owner_module.classes.get(symbol)
        return None

    def resolve_function(
        self, module: ModuleInfo, name: str
    ) -> Optional[FunctionInfo]:
        """Resolve a bare function name visible in ``module``."""
        if name in module.functions:
            return module.functions[name]
        target = module.imports.get(name)
        if target is None:
            return None
        owner, _, symbol = target.rpartition(".")
        owner_module = self.resolve_module(owner)
        if owner_module is not None:
            return owner_module.functions.get(symbol)
        return None

    def resolve_call(
        self,
        module: ModuleInfo,
        call: ast.Call,
        local_types: Optional[Dict[str, ClassInfo]] = None,
        current_class: Optional[ClassInfo] = None,
    ) -> Optional[FunctionInfo]:
        """Resolve ``call.func`` to a project-defined function, if possible.

        ``local_types`` maps local variable names to resolved classes
        (see :func:`infer_local_types`); ``current_class`` enables
        ``self.method()`` resolution.
        """
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.resolve_function(module, func.id)
            if resolved is not None:
                return resolved
            cls_info = self.resolve_class(module, func.id)
            if cls_info is not None:
                return cls_info.constructor()
            return None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                base = func.value.id
                # mod.f(...) via `import mod` / `from pkg import mod`
                target = module.imports.get(base)
                if target is not None:
                    owner_module = self.resolve_module(target)
                    if owner_module is not None:
                        if func.attr in owner_module.functions:
                            return owner_module.functions[func.attr]
                        cls_info = owner_module.classes.get(func.attr)
                        if cls_info is not None:
                            return cls_info.constructor()
            receiver = self.receiver_class(
                func.value, module, local_types, current_class
            )
            if receiver is not None:
                return receiver.methods.get(func.attr)
            return None
        return None

    def receiver_class(
        self,
        expr: ast.expr,
        module: ModuleInfo,
        local_types: Optional[Dict[str, ClassInfo]] = None,
        current_class: Optional[ClassInfo] = None,
    ) -> Optional[ClassInfo]:
        """Resolve the class of a receiver expression: a typed local, a
        ``self`` attribute, or an attribute of either."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and current_class is not None:
                return current_class
            if local_types and expr.id in local_types:
                return local_types[expr.id]
            return None
        if isinstance(expr, ast.Attribute):
            owner = self.receiver_class(
                expr.value, module, local_types, current_class
            )
            if owner is None:
                return None
            class_name = owner.attr_class_names.get(expr.attr)
            if class_name is None:
                return None
            return self.resolve_class(owner.module, class_name)
        return None

    # ------------------------------------------------------------------
    # Helpers for the rules
    # ------------------------------------------------------------------

    def infer_local_types(
        self,
        func: FunctionInfo,
        current_class: Optional[ClassInfo] = None,
    ) -> Dict[str, ClassInfo]:
        """Map local variable names to classes, from annotations and
        directly-visible ``x = ClassName(...)`` constructor calls."""
        module = func.module
        types: Dict[str, ClassInfo] = {}
        for arg in func.params:
            if arg.annotation is not None:
                resolved = self._annotation_class(module, arg.annotation)
                if resolved is not None:
                    types[arg.arg] = resolved
        if not isinstance(func.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Synthetic dataclass constructor: no body to scan.
            if current_class is not None:
                types.setdefault("self", current_class)
            return types
        for node in ast.walk(func.node):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                resolved = self._annotation_class(module, node.annotation)
                if resolved is not None:
                    types[node.target.id] = resolved
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(node.value, ast.Call):
                    callee = node.value.func
                    name = (
                        callee.id
                        if isinstance(callee, ast.Name)
                        else callee.attr
                        if isinstance(callee, ast.Attribute)
                        else None
                    )
                    if name is not None:
                        resolved = self.resolve_class(module, name)
                        if resolved is not None:
                            types[target.id] = resolved
        if current_class is not None:
            # Treat `self` as an instance of the enclosing class.
            types.setdefault("self", current_class)
        return types

    def _annotation_class(
        self, module: ModuleInfo, annotation: ast.expr
    ) -> Optional[ClassInfo]:
        """Resolve a simple annotation (``Foo``, ``m.Foo``, ``Optional[Foo]``,
        ``"Foo"``) to a project class."""
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            return self.resolve_class(module, annotation.value.strip("'\""))
        if isinstance(annotation, ast.Name):
            return self.resolve_class(module, annotation.id)
        if isinstance(annotation, ast.Attribute):
            return self.resolve_class(module, annotation.attr)
        if isinstance(annotation, ast.Subscript):
            head = annotation.value
            head_name = (
                head.id
                if isinstance(head, ast.Name)
                else head.attr
                if isinstance(head, ast.Attribute)
                else None
            )
            if head_name in {"Optional", "Final", "Annotated", "ClassVar"}:
                inner = annotation.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                if isinstance(inner, ast.expr):
                    return self._annotation_class(module, inner)
        return None

    def iter_functions(self) -> Iterator[Tuple[FunctionInfo, Optional[ClassInfo]]]:
        """Every function in the project, with its owning class if any."""
        for info in self.modules.values():
            for fn in info.functions.values():
                yield fn, None
            for cls_info in info.classes.values():
                for fn in cls_info.methods.values():
                    yield fn, cls_info


def match_call_args(
    fn: FunctionInfo, call: ast.Call
) -> List[Tuple[ast.arg, ast.expr]]:
    """Pair call arguments with the callee's parameters (best-effort).

    Starred args / **kwargs abort matching for the remainder; keywords
    match by name.
    """
    pairs: List[Tuple[ast.arg, ast.expr]] = []
    n_positional = len(fn.params) - len(fn.kwonly_names)
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index >= n_positional:
            break
        pairs.append((fn.params[index], arg))
    by_name = {p.arg: p for p in fn.params}
    for keyword in call.keywords:
        if keyword.arg is None:  # **kwargs
            continue
        param = by_name.get(keyword.arg)
        if param is not None:
            pairs.append((param, keyword.value))
    return pairs

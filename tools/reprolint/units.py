"""R009 — units-of-measure dataflow analysis.

The simulator's quantities live in four incompatible dimension families:

* **time** — virtual seconds almost everywhere (``duration``,
  ``warmup``, ``deadline``), with an explicit scale when the name says
  so (``_s`` / ``_ms`` suffixes);
* **rate** — arrivals per second (``rate``, ``_qps``, ``throughput``);
* **fraction** — dimensionless [0, 1] (``utilization``, ``_frac``);
* **percentile** — the [0, 100] scale numpy's ``percentile`` expects.

Dimensional bugs between them are the simulator's worst silent failure
mode: adding a rate to a time, passing an inter-arrival interval where a
rate is expected (the classic ``1/x`` inversion), mixing milliseconds
into a seconds pipeline, or feeding ``0.99`` to a [0, 100] percentile
API all yield plausible-looking numbers and wrong conclusions.

Units are inferred from **name conventions** (suffixes ``_ms``, ``_s``,
``_qps``, ``_frac``, ``_pct``; time words like ``latency`` / ``deadline``
/ ``warmup``) and **annotation aliases** (``Seconds``, ``Ms``, ``Qps``,
``Fraction``, ``Pct``), then propagated through assignments, arithmetic,
and — via the :mod:`~tools.reprolint.project` call graph — across call
sites into parameter names declared in other modules. Unknown units
never produce findings: the analysis is sound-by-omission.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from tools.reprolint.core import FileContext, Finding, Rule, register
from tools.reprolint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
    match_call_args,
)

UNIT_MS = "ms"
UNIT_S = "s"
UNIT_TIME = "time"  # time-valued, scale not stated by the name
UNIT_RATE = "rate"  # events per second (QPS)
UNIT_FRAC = "frac"  # dimensionless fraction in [0, 1]
UNIT_PCT = "pct"  # percentile / percent on the [0, 100] scale
UNIT_NUM = "num"  # dimensionless scalar (bare numeric constants)

_TIME_FAMILY = {UNIT_MS, UNIT_S, UNIT_TIME}

#: Suffix conventions, checked on the lowered name with leading
#: underscores stripped. Order matters: first match wins.
_SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("_ms", UNIT_MS),
    ("_msec", UNIT_MS),
    ("_millis", UNIT_MS),
    ("_qps", UNIT_RATE),
    ("_per_s", UNIT_RATE),
    ("_per_sec", UNIT_RATE),
    ("_frac", UNIT_FRAC),
    ("_fraction", UNIT_FRAC),
    ("_pct", UNIT_PCT),
    ("_percent", UNIT_PCT),
    ("_seconds", UNIT_S),
    ("_secs", UNIT_S),
    ("_sec", UNIT_S),
    ("_s", UNIT_S),
)

#: Words that make a name time-valued without stating the scale. The
#: suffix regex mirrors R004's time-like vocabulary.
_TIME_WORD_SUFFIX = re.compile(
    r"(latency|latencies|time|times|deadline|duration|elapsed|timeout|delay"
    r"|warmup|horizon|dwell|interarrival|overhead)$"
)
_TIME_EXACT = {
    "now", "arrival", "arrivals_at", "completion", "start", "t1", "until",
    "probe", "slo", "gap", "hedge_delay",
}

_RATE_EXACT = {
    "rate", "mean_rate", "max_rate", "base_rate", "rate_low", "rate_high",
    "arrival_rate", "saturation_rate", "throughput", "goodput",
}

_FRAC_EXACT = {
    "utilization", "offered_utilization", "coverage", "mean_coverage",
    "amplitude", "high_fraction", "remaining_fraction", "shed_rate",
    "slo_attainment", "hedge_rate",
}

#: Annotation aliases (``x: Seconds``) that declare a unit outright.
_ANNOTATION_UNITS = {
    "Ms": UNIT_MS,
    "Msec": UNIT_MS,
    "Milliseconds": UNIT_MS,
    "Seconds": UNIT_S,
    "Sec": UNIT_S,
    "Secs": UNIT_S,
    "Qps": UNIT_RATE,
    "Rate": UNIT_RATE,
    "PerSecond": UNIT_RATE,
    "Fraction": UNIT_FRAC,
    "Frac": UNIT_FRAC,
    "Pct": UNIT_PCT,
    "Percent": UNIT_PCT,
    "Percentile": UNIT_PCT,
}

#: APIs taking quantile/percentile positions, and the scale they expect.
_PERCENTILE_100_FNS = {"percentile", "nanpercentile", "latency_percentile"}
_QUANTILE_1_FNS = {"quantile", "nanquantile"}

#: Single-argument wrappers that preserve their argument's unit.
_UNIT_PRESERVING_FNS = {"float", "int", "abs", "round", "exponential"}
#: Variadic selectors: result takes the (compatible) operands' unit.
_UNIT_SELECTING_FNS = {"min", "max"}


def classify_name(name: Optional[str]) -> Optional[str]:
    """Unit implied by a bare identifier, or None."""
    if not name:
        return None
    lowered = name.lower().lstrip("_")
    for suffix, unit in _SUFFIX_UNITS:
        if lowered.endswith(suffix):
            return unit
    if lowered in _RATE_EXACT:
        return UNIT_RATE
    if lowered in _FRAC_EXACT:
        return UNIT_FRAC
    if lowered in _TIME_EXACT or _TIME_WORD_SUFFIX.search(lowered):
        return UNIT_TIME
    return None


def annotation_unit(annotation: Optional[ast.expr]) -> Optional[str]:
    """Unit declared by an annotation alias (``Seconds``, ``Qps``, …)."""
    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Subscript):  # Optional[Seconds], Final[Ms]
        head = node.value
        head_name = getattr(head, "id", getattr(head, "attr", None))
        if head_name in {"Optional", "Final", "Annotated", "ClassVar"}:
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            node = inner if isinstance(inner, ast.expr) else node
    name = getattr(node, "id", getattr(node, "attr", None))
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value
    if name is None:
        return None
    return _ANNOTATION_UNITS.get(name)


def _family(unit: str) -> str:
    return UNIT_TIME if unit in _TIME_FAMILY else unit


def incompatible(a: Optional[str], b: Optional[str]) -> bool:
    """True when both units are known, dimensioned, and cannot mix."""
    if a is None or b is None or UNIT_NUM in (a, b):
        return False
    if _family(a) != _family(b):
        return True
    # Same family: only the explicit ms/s scale clash is an error;
    # generic "time" is compatible with either scale.
    return {a, b} == {UNIT_MS, UNIT_S}


def describe(unit: Optional[str]) -> str:
    return {
        UNIT_MS: "milliseconds",
        UNIT_S: "seconds",
        UNIT_TIME: "time",
        UNIT_RATE: "rate (per-second)",
        UNIT_FRAC: "fraction [0,1]",
        UNIT_PCT: "percentile [0,100]",
        UNIT_NUM: "dimensionless",
    }.get(unit or "", "unknown")


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class _ScopeChecker:
    """Infers units through one function (or module) body, in statement
    order, collecting findings as it goes."""

    def __init__(
        self,
        rule: "UnitsDataflowRule",
        ctx: FileContext,
        module: ModuleInfo,
        project: ProjectModel,
        env: Dict[str, str],
        local_types: Optional[Dict[str, ClassInfo]] = None,
        current_class: Optional[ClassInfo] = None,
    ) -> None:
        self.rule = rule
        self.ctx = ctx
        self.module = module
        self.project = project
        self.env = env
        self.local_types = local_types or {}
        self.current_class = current_class
        self.findings: List[Finding] = []

    # -- statement walk ------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> List[Finding]:
        for statement in body:
            self._statement(statement)
        return self.findings

    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are checked separately
        if isinstance(node, ast.Assign):
            value_unit = self.infer(node.value)
            for target in node.targets:
                self._check_bind(target, value_unit, node)
        elif isinstance(node, ast.AnnAssign):
            declared = annotation_unit(node.annotation)
            if node.value is not None:
                value_unit = self.infer(node.value)
                self._check_bind(node.target, value_unit, node, declared)
            elif isinstance(node.target, ast.Name) and declared is not None:
                self.env[node.target.id] = declared
        elif isinstance(node, ast.AugAssign):
            value_unit = self.infer(node.value)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                target_unit = self._target_unit(node.target)
                if incompatible(target_unit, value_unit):
                    self._emit_mix(node, target_unit, value_unit, "augmented assignment")
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.infer(node.value)
        elif isinstance(node, ast.Expr):
            self.infer(node.value)
        elif isinstance(node, (ast.If, ast.While)):
            self.infer(node.test)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.For):
            self.infer(node.iter)
            self.run(node.body)
            self.run(node.orelse)
        elif isinstance(node, ast.With):
            for item in node.items:
                self.infer(item.context_expr)
            self.run(node.body)
        elif isinstance(node, ast.Try):
            self.run(node.body)
            for handler in node.handlers:
                self.run(handler.body)
            self.run(node.orelse)
            self.run(node.finalbody)
        elif isinstance(node, ast.Assert):
            self.infer(node.test)
        elif isinstance(node, (ast.Raise, ast.Delete)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self.infer(child)

    def _target_unit(self, target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return self.env.get(target.id) or classify_name(target.id)
        return classify_name(_terminal(target))

    def _check_bind(
        self,
        target: ast.expr,
        value_unit: Optional[str],
        node: ast.stmt,
        declared: Optional[str] = None,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            return  # unpacking: give up on the pieces
        name_unit = declared or classify_name(_terminal(target))
        if incompatible(name_unit, value_unit):
            label = _terminal(target) or "<target>"
            self.findings.append(
                self.rule.finding(
                    self.ctx, node,
                    f"assigning a {describe(value_unit)} expression to "
                    f"{describe(name_unit)}-named '{label}'",
                )
            )
        if isinstance(target, ast.Name):
            resolved = value_unit if value_unit not in (None, UNIT_NUM) else name_unit
            if resolved is not None:
                self.env[target.id] = resolved

    # -- expression inference ------------------------------------------

    def infer(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return UNIT_NUM
        if isinstance(node, ast.Name):
            return self.env.get(node.id) or classify_name(node.id)
        if isinstance(node, ast.Attribute):
            self.infer(node.value)
            return classify_name(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Compare):
            self._compare(node)
            return None
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            body = self.infer(node.body)
            orelse = self.infer(node.orelse)
            return body if body not in (None, UNIT_NUM) else orelse
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.infer(value)
            return None
        # Containers, subscripts, f-strings, comprehensions, lambdas:
        # no unit, but nested arithmetic still gets checked.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.infer(child)
            elif isinstance(child, ast.comprehension):
                self.infer(child.iter)
                for condition in child.ifs:
                    self.infer(condition)
        return None

    def _binop(self, node: ast.BinOp) -> Optional[str]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if incompatible(left, right):
                kind = "+" if isinstance(node.op, ast.Add) else "-"
                self._emit_mix(node, left, right, f"'{kind}'")
            if left not in (None, UNIT_NUM):
                return left
            return right
        if isinstance(node.op, ast.Mult):
            return self._multiply(left, right)
        if isinstance(node.op, ast.Div):
            return self._divide(node, left, right)
        return None

    @staticmethod
    def _multiply(left: Optional[str], right: Optional[str]) -> Optional[str]:
        for a, b in ((left, right), (right, left)):
            if a == UNIT_FRAC:
                # fraction x X keeps X's unit AND scale (0.5 * dur_s is
                # still seconds).
                return b if b not in (None, UNIT_NUM) else a
            if a in (None, UNIT_NUM):
                # scalar x time may be a unit CONVERSION (x_s * 1000.0):
                # the family survives but the ms/s scale does not.
                if b in (UNIT_MS, UNIT_S):
                    return UNIT_TIME
                return b if b not in (None, UNIT_NUM) else a
        if {_family(left or ""), _family(right or "")} == {UNIT_TIME, UNIT_RATE}:
            return UNIT_NUM  # rate x time = a count
        return None

    def _divide(
        self, node: ast.BinOp, left: Optional[str], right: Optional[str]
    ) -> Optional[str]:
        if left in _TIME_FAMILY and right in _TIME_FAMILY:
            if incompatible(left, right):
                self._emit_mix(node, left, right, "'/'")
            return UNIT_FRAC
        if right in (UNIT_NUM, UNIT_FRAC, None) and left is not None:
            if right != UNIT_FRAC and left in (UNIT_MS, UNIT_S):
                return UNIT_TIME  # scalar division may rescale (x_ms / 1e3)
            return left if left != UNIT_NUM else None
        if right == UNIT_RATE and left in (UNIT_NUM, None):
            return UNIT_S  # 1 / rate = inter-arrival interval (seconds)
        if right in (UNIT_S, UNIT_TIME) and left in (UNIT_NUM, None):
            return UNIT_RATE  # count / window = per-second rate
        if left == UNIT_RATE and right == UNIT_RATE:
            return UNIT_FRAC
        return None

    def _compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        units = [self.infer(operand) for operand in operands]
        for index in range(len(node.ops)):
            a, b = units[index], units[index + 1]
            if incompatible(a, b):
                self._emit_mix(node, a, b, "comparison")

    def _call(self, node: ast.Call) -> Optional[str]:
        # Infer every argument exactly once (re-inferring would duplicate
        # findings from violating subexpressions) and share the results
        # with the callee-parameter check below.
        units_by_arg: Dict[int, Optional[str]] = {}
        for arg in node.args:
            units_by_arg[id(arg)] = self.infer(arg)
        for keyword in node.keywords:
            units_by_arg[id(keyword.value)] = self.infer(keyword.value)
        name = _terminal(node.func)
        self._check_percentile_scale(node, name)
        self._check_callee_params(node, units_by_arg)
        if name in _UNIT_PRESERVING_FNS and node.args:
            return units_by_arg[id(node.args[0])]
        if name in _UNIT_SELECTING_FNS and node.args:
            known = [
                u
                for u in (units_by_arg[id(arg)] for arg in node.args)
                if u not in (None, UNIT_NUM)
            ]
            for index in range(1, len(known)):
                if incompatible(known[0], known[index]):
                    self._emit_mix(node, known[0], known[index], f"'{name}(...)'")
            return known[0] if known else None
        return classify_name(name)

    def _check_percentile_scale(self, node: ast.Call, name: Optional[str]) -> None:
        """Constant quantile positions must match the callee's scale."""
        if name in _PERCENTILE_100_FNS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, (int, float))
                    and not isinstance(arg.value, bool)
                    and 0 < arg.value < 1
                ):
                    self.findings.append(
                        self.rule.finding(
                            self.ctx, node,
                            f"'{name}' expects percentiles on the [0, 100] "
                            f"scale but got {arg.value} — a [0, 1] quantile "
                            "(p99 is 99, not 0.99)",
                        )
                    )
        elif name in _QUANTILE_1_FNS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, (int, float))
                    and not isinstance(arg.value, bool)
                    and arg.value > 1
                ):
                    self.findings.append(
                        self.rule.finding(
                            self.ctx, node,
                            f"'{name}' expects quantiles on the [0, 1] scale "
                            f"but got {arg.value} (p99 is 0.99 here, not 99)",
                        )
                    )

    def _check_callee_params(
        self, node: ast.Call, units_by_arg: Dict[int, Optional[str]]
    ) -> None:
        """Cross-module check: argument units vs the callee's declared
        parameter units (annotation alias, else parameter name)."""
        callee = self.project.resolve_call(
            self.module, node, self.local_types, self.current_class
        )
        if callee is None:
            return
        for param, arg in match_call_args(callee, node):
            param_unit = annotation_unit(param.annotation) or classify_name(param.arg)
            if param_unit is None:
                continue
            arg_unit = units_by_arg.get(id(arg))
            if not incompatible(param_unit, arg_unit):
                continue
            families = {_family(param_unit), _family(arg_unit or "")}
            if families == {UNIT_TIME, UNIT_RATE}:
                detail = (
                    "rate-vs-interval inversion — did you mean "
                    "'1.0 / x'?"
                )
            elif {param_unit, arg_unit} == {UNIT_MS, UNIT_S}:
                detail = "ms/s scale mismatch"
            else:
                detail = "dimension mismatch"
            self.findings.append(
                self.rule.finding(
                    self.ctx, node,
                    f"argument for parameter '{param.arg}' of "
                    f"'{callee.qualname}' ({callee.module.name}) is "
                    f"{describe(arg_unit)} but the parameter is "
                    f"{describe(param_unit)}: {detail}",
                )
            )

    def _emit_mix(
        self,
        node: ast.AST,
        left: Optional[str],
        right: Optional[str],
        where: str,
    ) -> None:
        self.findings.append(
            self.rule.finding(
                self.ctx, node,
                f"mixing {describe(left)} with {describe(right)} in {where}",
            )
        )


@register
class UnitsDataflowRule(Rule):
    """R009 — dimensional coherence of time / rate / fraction / percentile."""

    rule_id = "R009"
    summary = "units-of-measure dataflow (time vs rate vs fraction vs percentile)"
    rationale = (
        "Arrival rates, virtual-time latencies, utilization fractions and "
        "percentile positions are all bare floats; mixing them (ms into a "
        "seconds pipeline, a rate where an interval is expected, 0.99 "
        "into a [0,100] percentile API) produces plausible-looking wrong "
        "numbers. Units are inferred from name suffixes (_ms, _s, _qps, "
        "_frac, _pct), unit vocabulary, and annotation aliases, then "
        "checked through assignments, arithmetic, and cross-module calls."
    )
    project_rule = True

    def check_project(
        self, ctxs: Sequence[FileContext], project: ProjectModel
    ) -> Iterator[Finding]:
        for ctx in ctxs:
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            # Module-level statements.
            checker = _ScopeChecker(self, ctx, module, project, env={})
            yield from checker.run(
                [
                    statement
                    for statement in ctx.tree.body
                    if not isinstance(
                        statement,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    )
                ]
            )
            yield from self._check_functions(ctx, module, project)

    def _check_functions(
        self, ctx: FileContext, module: ModuleInfo, project: ProjectModel
    ) -> Iterator[Finding]:
        for node, owner in self._iter_scopes(ctx.tree, module):
            info = self._lookup(module, node, owner)
            env: Dict[str, str] = {}
            for arg in self._all_args(node):
                unit = annotation_unit(arg.annotation) or classify_name(arg.arg)
                if unit is not None:
                    env[arg.arg] = unit
            local_types = project.infer_local_types(info, owner) if info else {}
            checker = _ScopeChecker(
                self, ctx, module, project, env, local_types, owner
            )
            yield from checker.run(node.body)

    @staticmethod
    def _iter_scopes(
        tree: ast.Module, module: ModuleInfo
    ) -> Iterator[Tuple[ast.AST, Optional[ClassInfo]]]:
        """Every function scope with the class whose ``self`` is visible
        in it (methods and their nested closures)."""

        def visit(
            node: ast.AST, owner: Optional[ClassInfo]
        ) -> Iterator[Tuple[ast.AST, Optional[ClassInfo]]]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield child, owner
                    yield from visit(child, owner)
                elif isinstance(child, ast.ClassDef):
                    info = module.classes.get(child.name) if node is tree else None
                    yield from visit(child, info)
                else:
                    yield from visit(child, owner)

        yield from visit(tree, None)

    @staticmethod
    def _lookup(
        module: ModuleInfo, node: ast.AST, owner: Optional[ClassInfo]
    ) -> Optional[FunctionInfo]:
        name = getattr(node, "name", None)
        if owner is not None:
            found = owner.methods.get(name or "")
        else:
            found = module.functions.get(name or "")
        if found is not None and found.node is node:
            return found
        return None

    @staticmethod
    def _all_args(node: ast.AST) -> List[ast.arg]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        args = node.args
        return (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + [a for a in (args.vararg, args.kwarg) if a is not None]
        )

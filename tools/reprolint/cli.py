"""Command-line interface for reprolint.

Exit codes: 0 = clean, 1 = findings (or parse errors), 2 = usage error.
``--exit-zero`` keeps the report but always exits 0 (report-only mode,
used when surveying a tree before gating it).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from tools.reprolint.core import all_rules, lint_paths
from tools.reprolint.reporter import render_json, render_text


def _split_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "AST-based determinism & simulation-correctness linter for "
            "this repository (rules R001-R008; see CONTRIBUTING.md)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--exit-zero", action="store_true",
        help="report findings but exit 0 (report-only mode)",
    )
    parser.add_argument(
        "--no-default-excludes", action="store_true",
        help="descend into fixture/cache directories normally skipped",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in sorted(all_rules().items()):
            print(f"{rule_id}  {rule_cls.summary}")
            print(f"      {rule_cls.rationale}")
        return 0

    try:
        result = lint_paths(
            args.paths,
            select=_split_rule_list(args.select),
            ignore=_split_rule_list(args.ignore),
            use_default_excludes=not args.no_default_excludes,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))

    if args.exit_zero:
        return 0
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

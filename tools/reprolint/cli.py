"""Command-line interface for reprolint.

Exit codes: 0 = clean, 1 = findings (or parse errors), 2 = usage error,
3 = internal analyzer error (a rule crashed — a reprolint bug, not a
finding). CI treats 1 as "fix your code" and 3 as "fix the linter";
conflating them (the pre-R014 behavior) made analyzer regressions look
like tree regressions. ``--exit-zero`` keeps the report but always
exits 0 (report-only mode, used when surveying a tree before gating
it); it does NOT mask exit 3 — a crashed analyzer produced no report
worth trusting.

Staged adoption: ``--write-baseline .reprolint-baseline.json`` snapshots
today's findings; running with ``--baseline .reprolint-baseline.json``
then fails only on findings *not* in the snapshot, so a new rule gates
new code immediately while the backlog is burned down.
"""

from __future__ import annotations

import argparse
import sys
import traceback
from pathlib import Path
from typing import List, Optional

from tools.reprolint.baseline import apply_baseline, load_baseline, write_baseline
from tools.reprolint.core import all_rules, lint_paths
from tools.reprolint.reporter import render_json, render_sarif, render_text


def _split_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "AST-based determinism & simulation-correctness linter for "
            "this repository (per-file rules R001-R008 and whole-program "
            "analyses R009-R019; see CONTRIBUTING.md). Exit codes: "
            "0 clean, 1 findings, 2 usage error, 3 internal analyzer "
            "error."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="snapshot current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--exit-zero", action="store_true",
        help="report findings but exit 0 (report-only mode)",
    )
    parser.add_argument(
        "--no-default-excludes", action="store_true",
        help="descend into fixture/cache directories normally skipped",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse files with N worker processes (default: 1); the "
        "report is byte-identical to a serial run",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="enable the incremental result cache rooted at DIR "
        "(keyed on content hashes, the analyzer version, and the "
        "governing layers.toml files; e.g. .reprolint-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir for this run (one-off cold run)",
    )
    parser.add_argument(
        "--changed-only", action="store_true",
        help="lint only git-changed files plus everything that "
        "(transitively) imports them — the pre-commit fast path",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in sorted(all_rules().items()):
            scope = "project" if rule_cls.project_rule else "file"
            print(f"{rule_id}  [{scope}]  {rule_cls.summary}")
            print(f"      {rule_cls.rationale}")
        return 0

    try:
        result = lint_paths(
            args.paths,
            select=_split_rule_list(args.select),
            ignore=_split_rule_list(args.ignore),
            use_default_excludes=not args.no_default_excludes,
            jobs=max(1, args.jobs),
            cache_dir=None if args.no_cache else args.cache_dir,
            changed_only=args.changed_only,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # noqa: BLE001 - analyzer crash, not a finding
        # A rule blew up on valid input: that is a reprolint bug. Exit 3
        # so CI can tell "fix the linter" from "fix the tree" (exit 1).
        print(f"reprolint: internal error: {exc}", file=sys.stderr)
        traceback.print_exc(file=sys.stderr)
        return 3

    if args.write_baseline:
        write_baseline(args.write_baseline, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {args.write_baseline}"
        )
        return 0

    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (FileNotFoundError, ValueError) as exc:
            print(f"reprolint: error: {exc}", file=sys.stderr)
            return 2
        new, baselined, stale = apply_baseline(result.findings, entries)
        result.findings = new
        result.baselined = baselined
        for entry in stale:
            print(
                f"reprolint: note: stale baseline entry "
                f"{entry[0]} [{entry[1]}] no longer matches anything "
                "(shrink the baseline)",
                file=sys.stderr,
            )

    if args.format == "json":
        report = render_json(result)
    elif args.format == "sarif":
        report = render_sarif(result)
    else:
        report = render_text(result)

    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)

    if args.exit_zero:
        return 0
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Layer-map loading and module→layer resolution for R014/R016/R017.

The map is declarative TOML (``layers.toml``): layer assignments by
dotted module-name prefix, an allowed-import order, the clock-discipline
configuration, hot-path entry points, and the purity scope. The rules
find the map *next to the linted tree*: for each linted file the nearest
ancestor directory containing ``layers.toml`` or
``tools/reprolint/layers.toml`` wins. Fixture trees therefore carry
their own miniature maps, and a tree without any map simply disables the
layer-based rules (sound-by-omission, like unresolved calls elsewhere in
reprolint).

Prefix matching is segment-aligned and suffix-tolerant: the prefix
``repro.policies`` matches ``repro.policies.online`` and also
``tmp123.src.repro.policies.online`` (fixture copies under a tmp root),
but never ``repro.policies_extra``. The longest matching prefix (most
segments) assigns the layer.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - exercised only on old pythons
    tomllib = None  # type: ignore[assignment]

#: File names probed (in order) in each ancestor directory.
_MAP_LOCATIONS = ("layers.toml", "tools/reprolint/layers.toml")


@dataclass(frozen=True)
class ClockConfig:
    """Clock-discipline knobs for R014."""

    kernel_layers: Tuple[str, ...] = ()
    forbidden_modules: Tuple[str, ...] = ()
    clock_classes: Tuple[str, ...] = ()


@dataclass(frozen=True)
class HotpathConfig:
    """Hot-query-path scope for R016."""

    dirs: Tuple[str, ...] = ()
    entries: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PurityConfig:
    """Purity scope for R017."""

    layers: Tuple[str, ...] = ()


@dataclass(frozen=True)
class TaintConfig:
    """Determinism-taint configuration for R018.

    ``sink_modules`` are dotted module-name prefixes (matched with the
    same segment-aligned, suffix-tolerant semantics as layer prefixes):
    a nondeterministic value flowing into a call of a function defined
    in one of them — or returned / stored inside one of them — is a
    finding. ``sink_functions`` name individual callables (terminal or
    dotted) that are sinks wherever they are defined. ``sanitizers``
    name callables whose result is always considered deterministic,
    killing taint (``sorted`` is built in; declare domain sanitizers
    such as ``VirtualClock`` or ``RngFactory`` here).
    """

    sink_modules: Tuple[str, ...] = ()
    sink_functions: Tuple[str, ...] = ()
    sanitizers: Tuple[str, ...] = ()

    @property
    def enabled(self) -> bool:
        return bool(self.sink_modules or self.sink_functions)


@dataclass(frozen=True)
class DeadlineConfig:
    """Deadline/cancellation-propagation scope for R019.

    ``layers`` lists the layer names whose async code must thread
    deadlines (the live-serving runtime). ``deadline_params`` extends
    the built-in set of keyword names recognised as a deadline bound;
    ``io_methods`` extends the built-in set of awaited method names
    treated as I/O-like.
    """

    layers: Tuple[str, ...] = ()
    deadline_params: Tuple[str, ...] = ()
    io_methods: Tuple[str, ...] = ()

    @property
    def enabled(self) -> bool:
        return bool(self.layers)


@dataclass
class LayerMap:
    """Parsed layer map: assignments, import order, and rule configs."""

    #: layer name -> module-name prefixes assigned to it
    layers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: layer name -> layers it may import from (itself always allowed)
    imports: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    clock: ClockConfig = field(default_factory=ClockConfig)
    hotpath: HotpathConfig = field(default_factory=HotpathConfig)
    purity: PurityConfig = field(default_factory=PurityConfig)
    taint: TaintConfig = field(default_factory=TaintConfig)
    deadlines: DeadlineConfig = field(default_factory=DeadlineConfig)
    #: where the map was loaded from (diagnostics)
    source: Optional[str] = None

    def __post_init__(self) -> None:
        self._patterns: List[Tuple[int, re.Pattern, str]] = []
        for layer, prefixes in self.layers.items():
            for prefix in prefixes:
                pattern = re.compile(
                    r"(?:^|\.)" + re.escape(prefix) + r"(?:$|\.)"
                )
                self._patterns.append((prefix.count(".") + 1, pattern, layer))
        # Longest prefix (most segments) first.
        self._patterns.sort(key=lambda item: -item[0])

    def layer_of(self, module_name: str) -> Optional[str]:
        """The layer assigned to ``module_name``, or None if unassigned."""
        for _, pattern, layer in self._patterns:
            if pattern.search(module_name):
                return layer
        return None

    def allowed_for(self, layer: str) -> frozenset:
        """Layers ``layer`` may import from (including itself)."""
        return frozenset(self.imports.get(layer, ())) | {layer}

    def is_kernel_layer(self, layer: Optional[str]) -> bool:
        return layer is not None and layer in self.clock.kernel_layers

    def is_purity_layer(self, layer: Optional[str]) -> bool:
        return layer is not None and layer in self.purity.layers

    def is_deadline_layer(self, layer: Optional[str]) -> bool:
        return layer is not None and layer in self.deadlines.layers


def module_matches(module_name: str, prefixes: Sequence[str]) -> Optional[str]:
    """The first prefix in ``prefixes`` matching ``module_name`` with the
    same segment-aligned, suffix-tolerant semantics as layer assignment
    (``repro.util.serde`` matches ``tmpdir.src.repro.util.serde``), or
    None."""
    for prefix in prefixes:
        pattern = re.compile(r"(?:^|\.)" + re.escape(prefix) + r"(?:$|\.)")
        if pattern.search(module_name):
            return prefix
    return None


def _as_str_tuple(value: object) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)):
        return ()
    return tuple(str(item) for item in value)


def parse_layer_map(text: str, source: Optional[str] = None) -> LayerMap:
    """Parse TOML text into a :class:`LayerMap` (raising on bad TOML)."""
    if tomllib is not None:
        data = tomllib.loads(text)
    else:  # pragma: no cover - minimal fallback for pythons < 3.11
        data = _parse_minimal_toml(text)
    layers = {
        str(name): _as_str_tuple(prefixes)
        for name, prefixes in dict(data.get("layers", {})).items()
    }
    imports = {
        str(name): _as_str_tuple(targets)
        for name, targets in dict(data.get("imports", {})).items()
    }
    clock_raw = dict(data.get("clock", {}))
    hot_raw = dict(data.get("hotpath", {}))
    purity_raw = dict(data.get("purity", {}))
    taint_raw = dict(data.get("taint", {}))
    deadline_raw = dict(data.get("deadlines", {}))
    return LayerMap(
        layers=layers,
        imports=imports,
        clock=ClockConfig(
            kernel_layers=_as_str_tuple(clock_raw.get("kernel_layers", ())),
            forbidden_modules=_as_str_tuple(
                clock_raw.get("forbidden_modules", ())
            ),
            clock_classes=_as_str_tuple(clock_raw.get("clock_classes", ())),
        ),
        hotpath=HotpathConfig(
            dirs=_as_str_tuple(hot_raw.get("dirs", ())),
            entries=_as_str_tuple(hot_raw.get("entries", ())),
        ),
        purity=PurityConfig(layers=_as_str_tuple(purity_raw.get("layers", ()))),
        taint=TaintConfig(
            sink_modules=_as_str_tuple(taint_raw.get("sink_modules", ())),
            sink_functions=_as_str_tuple(taint_raw.get("sink_functions", ())),
            sanitizers=_as_str_tuple(taint_raw.get("sanitizers", ())),
        ),
        deadlines=DeadlineConfig(
            layers=_as_str_tuple(deadline_raw.get("layers", ())),
            deadline_params=_as_str_tuple(
                deadline_raw.get("deadline_params", ())
            ),
            io_methods=_as_str_tuple(deadline_raw.get("io_methods", ())),
        ),
        source=source,
    )


def _parse_minimal_toml(text: str) -> Dict[str, Dict[str, object]]:
    """Tiny TOML subset parser: ``[table]`` headers and ``key = [str...]``
    / ``key = "str"`` lines — exactly the shape layers.toml uses."""
    data: Dict[str, Dict[str, object]] = {}
    table: Dict[str, object] = {}
    buffer = ""
    key = ""
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if buffer:
            line = buffer + " " + line
            buffer = ""
        else:
            if not line or line.startswith("#"):
                continue
            if line.startswith("[") and line.endswith("]"):
                table = data.setdefault(line[1:-1].strip(), {})
                continue
            if "=" not in line:
                continue
            key, _, line = line.partition("=")
            key = key.strip()
            line = line.strip()
        if line.startswith("[") and not line.rstrip().endswith("]"):
            buffer = line
            continue
        value: object
        if line.startswith("["):
            value = re.findall(r'"([^"]*)"', line)
        else:
            match = re.match(r'"([^"]*)"', line)
            value = match.group(1) if match else line
        table[key] = value
    return data


#: directory (resolved) -> LayerMap or None, cached per process
_MAP_CACHE: Dict[str, Optional[LayerMap]] = {}


def clear_layer_map_cache() -> None:
    """Drop the per-process map cache (tests rewrite maps in place)."""
    _MAP_CACHE.clear()


def find_layer_map(path: str) -> Optional[LayerMap]:
    """The layer map governing ``path``: nearest ancestor directory with
    a ``layers.toml`` (directly or under ``tools/reprolint/``)."""
    try:
        start = Path(path).resolve().parent
    except OSError:  # pragma: no cover - unresolvable path
        return None
    probed: List[str] = []
    for directory in [start, *start.parents]:
        cache_key = str(directory)
        if cache_key in _MAP_CACHE:
            result = _MAP_CACHE[cache_key]
            for entry in probed:
                _MAP_CACHE[entry] = result
            return result
        probed.append(cache_key)
        for location in _MAP_LOCATIONS:
            candidate = directory / location
            if candidate.is_file():
                loaded = parse_layer_map(
                    candidate.read_text(encoding="utf-8"), str(candidate)
                )
                for entry in probed:
                    _MAP_CACHE[entry] = loaded
                return loaded
    for entry in probed:
        _MAP_CACHE[entry] = None
    return None

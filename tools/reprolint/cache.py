"""Content-hash-keyed incremental result cache for reprolint.

A lint run is a pure function of (file contents, rule set, layer maps),
so its results can be reused verbatim as long as those inputs are
unchanged. The cache exploits that at two granularities:

* **Per-file results** — findings, suppressions, and parse errors from
  the per-file rules, keyed on the file's content hash and the id list
  of the rules that ran. A warm hit skips parsing *and* analysis.
* **Whole-program results** — the project rules read the entire module
  graph, so their findings are keyed on a fingerprint of every
  ``(path, content hash)`` pair in the run plus the set of paths being
  reported on. Any edit anywhere misses; an untouched tree hits and
  skips building the :class:`~tools.reprolint.project.ProjectModel`
  entirely.
* **Import edges** — each file's imported dotted names, keyed on its
  content hash, so ``--changed-only`` can compute the dirty transitive
  closure (changed files plus everything that imports them) without
  re-parsing the unchanged remainder of the tree.

Two global inputs version the whole cache: the **rule-set hash**
(contents of every ``tools/reprolint/*.py`` source — any analyzer edit
invalidates everything) and the **layer-map fingerprint** (contents of
every ``layers.toml`` governing the linted files — sinks, sanitizers,
layer assignments, and deadline scopes all live there). Either changing
drops the cache rather than risking stale findings.

Storage is a single JSON document under the cache directory, written
atomically (temp file + rename) so an interrupted run can never leave a
half-written cache; a corrupt or unreadable file deserializes as an
empty cache. Entries for paths that no longer exist are pruned on save
so test-suite runs over ``tmp_path`` trees do not accrete.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from tools.reprolint.core import Finding

#: bump when the serialized layout changes
CACHE_FORMAT = 1
#: per-path cap on distinct rule-selection results kept
_MAX_RESULTS_PER_PATH = 4
#: cap on whole-program entries kept (full runs + changed-only subsets)
_MAX_PROJECT_ENTRIES = 16


def content_hash(text: str) -> str:
    """Stable short hash of one file's contents."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]


_RULESET_HASH: Optional[str] = None


def ruleset_version() -> str:
    """Hash of every analyzer source file (memoized per process).

    Editing any rule, the project model, or this module invalidates all
    cached results — the analyses themselves are an input to the run.
    """
    global _RULESET_HASH
    if _RULESET_HASH is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for source in sorted(package_dir.glob("*.py")):
            digest.update(source.name.encode("utf-8"))
            digest.update(source.read_bytes())
        _RULESET_HASH = digest.hexdigest()[:20]
    return _RULESET_HASH


#: probe locations mirrored from layers.find_layer_map
_MAP_LOCATIONS = ("layers.toml", os.path.join("tools", "reprolint", "layers.toml"))


def layer_maps_fingerprint(files: Sequence[Path]) -> str:
    """Hash of every ``layers.toml`` that could govern ``files``.

    Walks each file's ancestor chain (deduplicated across files) probing
    the same locations :func:`~tools.reprolint.layers.find_layer_map`
    does. Over-approximates — a shadowed ancestor map still contributes
    — which can only invalidate more than strictly necessary.
    """
    seen_dirs: set = set()
    found: Dict[str, str] = {}
    for file_path in files:
        try:
            directory = file_path.resolve().parent
        except OSError:  # pragma: no cover - unresolvable path
            continue
        for ancestor in [directory, *directory.parents]:
            key = str(ancestor)
            if key in seen_dirs:
                break
            seen_dirs.add(key)
            for location in _MAP_LOCATIONS:
                candidate = ancestor / location
                if candidate.is_file():
                    found[candidate.as_posix()] = content_hash(
                        candidate.read_text(encoding="utf-8")
                    )
    digest = hashlib.sha256()
    for path, text_hash in sorted(found.items()):
        digest.update(f"{path}={text_hash};".encode("utf-8"))
    return digest.hexdigest()[:20]


def project_key(
    file_hashes: Iterable[Tuple[str, str]],
    report_paths: Iterable[str],
    rules_sig: str,
) -> str:
    """Key for one whole-program pass: every (path, hash) pair in the
    analysis universe plus the subset of paths being reported on."""
    digest = hashlib.sha256()
    for path, text_hash in sorted(file_hashes):
        digest.update(f"{path}={text_hash};".encode("utf-8"))
    digest.update(b"|report|")
    for path in sorted(report_paths):
        digest.update(f"{path};".encode("utf-8"))
    digest.update(b"|rules|")
    digest.update(rules_sig.encode("utf-8"))
    return digest.hexdigest()[:24]


def _findings_to_json(findings: Sequence[Finding]) -> List[List[object]]:
    return [
        [f.path, f.line, f.col, f.rule_id, f.message] for f in findings
    ]


def _findings_from_json(rows: Sequence[Sequence[object]]) -> List[Finding]:
    return [
        Finding(
            path=str(row[0]),
            line=int(row[1]),
            col=int(row[2]),
            rule_id=str(row[3]),
            message=str(row[4]),
        )
        for row in rows
    ]


class FileResult:
    """Decoded per-file cache payload."""

    __slots__ = ("findings", "suppressed", "errors")

    def __init__(
        self,
        findings: List[Finding],
        suppressed: List[Finding],
        errors: List[Finding],
    ) -> None:
        self.findings = findings
        self.suppressed = suppressed
        self.errors = errors


class AnalysisCache:
    """On-disk result cache; load once per run, save once at the end."""

    def __init__(self, directory: str, ruleset: str, maps: str) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "cache.json"
        self._ruleset = ruleset
        self._maps = maps
        self._files: Dict[str, Dict] = {}
        self._project: Dict[str, Dict] = {}
        self._project_order: List[str] = []
        self._load()

    # -- persistence ---------------------------------------------------

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("format") != CACHE_FORMAT:
            return
        if payload.get("ruleset") != self._ruleset:
            return
        if payload.get("maps") != self._maps:
            return
        files = payload.get("files")
        project = payload.get("project")
        order = payload.get("project_order")
        if isinstance(files, dict):
            self._files = files
        if isinstance(project, dict) and isinstance(order, list):
            self._project = project
            self._project_order = [k for k in order if k in project]

    def save(self) -> None:
        """Atomically persist, pruning entries for vanished paths."""
        self._files = {
            path: entry
            for path, entry in self._files.items()
            if Path(path).exists()
        }
        while len(self._project_order) > _MAX_PROJECT_ENTRIES:
            evicted = self._project_order.pop(0)
            self._project.pop(evicted, None)
        payload = {
            "format": CACHE_FORMAT,
            "ruleset": self._ruleset,
            "maps": self._maps,
            "files": self._files,
            "project": self._project,
            "project_order": self._project_order,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        handle, temp_name = tempfile.mkstemp(
            dir=str(self.directory), suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(payload, stream, separators=(",", ":"))
            os.replace(temp_name, str(self.path))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:  # pragma: no cover - already gone
                pass
            raise

    # -- per-file results ----------------------------------------------

    def _entry(self, path: str, text_hash: str) -> Optional[Dict]:
        entry = self._files.get(path)
        if entry is None or entry.get("hash") != text_hash:
            return None
        return entry

    def file_result(
        self, path: str, text_hash: str, rules_sig: str
    ) -> Optional[FileResult]:
        entry = self._entry(path, text_hash)
        if entry is None:
            return None
        cached = entry.get("results", {}).get(rules_sig)
        if cached is None:
            return None
        try:
            return FileResult(
                findings=_findings_from_json(cached["findings"]),
                suppressed=_findings_from_json(cached["suppressed"]),
                errors=_findings_from_json(cached["errors"]),
            )
        except (KeyError, TypeError, ValueError, IndexError):
            return None

    def store_file_result(
        self,
        path: str,
        text_hash: str,
        rules_sig: str,
        result: FileResult,
    ) -> None:
        entry = self._entry(path, text_hash)
        if entry is None:
            entry = {"hash": text_hash, "results": {}}
            self._files[path] = entry
        results = entry.setdefault("results", {})
        results.pop(rules_sig, None)
        while len(results) >= _MAX_RESULTS_PER_PATH:
            results.pop(next(iter(results)))
        results[rules_sig] = {
            "findings": _findings_to_json(result.findings),
            "suppressed": _findings_to_json(result.suppressed),
            "errors": _findings_to_json(result.errors),
        }

    # -- import edges --------------------------------------------------

    def imports_for(self, path: str, text_hash: str) -> Optional[List[str]]:
        entry = self._entry(path, text_hash)
        if entry is None:
            return None
        imports = entry.get("imports")
        if not isinstance(imports, list):
            return None
        return [str(name) for name in imports]

    def store_imports(
        self, path: str, text_hash: str, imports: Sequence[str]
    ) -> None:
        entry = self._entry(path, text_hash)
        if entry is None:
            entry = {"hash": text_hash, "results": {}}
            self._files[path] = entry
        entry["imports"] = sorted(set(imports))

    # -- whole-program results -----------------------------------------

    def project_result(self, key: str) -> Optional[FileResult]:
        cached = self._project.get(key)
        if cached is None:
            return None
        try:
            return FileResult(
                findings=_findings_from_json(cached["findings"]),
                suppressed=_findings_from_json(cached["suppressed"]),
                errors=[],
            )
        except (KeyError, TypeError, ValueError, IndexError):
            return None

    def store_project_result(
        self, key: str, findings: Sequence[Finding], suppressed: Sequence[Finding]
    ) -> None:
        if key in self._project:
            self._project_order.remove(key)
        self._project[key] = {
            "findings": _findings_to_json(findings),
            "suppressed": _findings_to_json(suppressed),
        }
        self._project_order.append(key)

"""reprolint — AST-based determinism & simulation-correctness linter.

The reproduction's headline claims (adaptive vs fixed tail latency,
bit-identical fault-free replays) rest on deterministic, seeded
simulation. ``reprolint`` machine-checks the conventions that make that
true: no global or unseeded RNGs, child streams derived through
``repro.util.rng`` (never ``rng.integers(...)``), no wall-clock reads in
simulated-time code, no float equality on latencies, no mutable default
arguments, consumed config fields, no swallowed exceptions in sim hot
paths, and fully annotated public simulation APIs.

The whole-program analyses (R009+) add cross-module checks: units of
measure, RNG stream collisions, typed config consumption, thread
safety, experiment registration, architectural layering + kernel clock
discipline driven by the declarative map in ``layers.toml`` (R014),
async/blocking safety (R015), hot-path numpy performance on the
query-execution path (R016), policy-kernel purity (R017), determinism
taint flowing into kernel decisions / serialized results / provenance
manifests (R018), and deadline propagation through the async runtime
(R019).

The driver is incremental: per-file and whole-program results are
cached under ``--cache-dir`` keyed on content hashes, the analyzer's
own source hash, and the layer-map fingerprint; ``--jobs`` parallelizes
parsing; ``--changed-only`` lints the git-dirty transitive closure.
Reports are byte-identical across cache states and job counts.

Usage::

    python -m tools.reprolint src tests
    python -m tools.reprolint --format json src
    python -m tools.reprolint --list-rules
    python -m tools.reprolint src tests tools --cache-dir .reprolint-cache --changed-only

Findings can be suppressed per line with a justification::

    t = time.time()  # reprolint: disable=R003 -- harness-side timing

or per file with ``# reprolint: disable-file=R006`` on any line.
"""

from tools.reprolint.core import (  # noqa: F401
    Finding,
    LintResult,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
)

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
]

"""Hot-path performance rule R016.

The per-query execution path (``engine/``, ``index/``) is the code the
live ISN runs thousands of times per second; incidental numpy misuse
there is invisible at test scale and dominant in production. R016
checks every function in the layer map's ``[hotpath]`` directories that
is *reachable from the declared query-path entry points* (call-graph
BFS over the project model) for four anti-patterns:

* ``np.append`` — quadratic: copies the whole array per call;
* array allocation inside a loop — a fresh buffer every iteration
  where one hoisted allocation (or an in-place op) would do;
* per-element indexed loops over arrays (``for i in range(len(x)):
  ... x[i]``) — the classic unvectorized scan;
* silent dtype promotion — arithmetic between a ``float32`` buffer and
  a Python float doubles the memory traffic of the whole expression.

Entry points come from ``layers.toml``. When *no* entry resolves in the
linted file set (single-file lints, fixture trees), every function in
the hot-path directories is checked instead — reachability is a
precision filter for whole-tree runs, not a soundness gate.

Allocations that can execute at most once per loop — inside a
``return``/``raise`` statement — and zero-size sentinel allocations
(``np.empty(0, ...)``) are exempt: both are early-exit idioms, not
per-iteration garbage.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.reprolint.core import FileContext, Finding, Rule, register
from tools.reprolint.layers import LayerMap, find_layer_map
from tools.reprolint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)

_ALLOCATORS = {
    "zeros", "ones", "empty", "full", "zeros_like", "ones_like",
    "full_like", "empty_like", "concatenate", "vstack", "hstack",
}
_NUMPY_HEADS = {"np", "numpy"}
_F32_NAMES = {"float32", "float16"}


def _numpy_call_name(node: ast.Call) -> Optional[str]:
    """``zeros`` for ``np.zeros(...)`` / ``numpy.zeros(...)``, else None."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_HEADS
    ):
        return func.attr
    return None


def _is_zero_size(node: ast.Call) -> bool:
    if not node.args:
        return False
    first = node.args[0]
    if isinstance(first, ast.Constant) and first.value == 0:
        return True
    if isinstance(first, ast.Tuple) and any(
        isinstance(e, ast.Constant) and e.value == 0 for e in first.elts
    ):
        return True
    return False


def _narrow_dtype_locals(fn_node: ast.AST) -> Set[str]:
    """Locals assigned a numpy allocation with a float32/float16 dtype."""
    narrow: Set[str] = set()
    for node in ast.walk(fn_node):
        if not (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            continue
        for keyword in node.value.keywords:
            if keyword.arg != "dtype":
                continue
            terminal = (
                keyword.value.attr
                if isinstance(keyword.value, ast.Attribute)
                else keyword.value.id
                if isinstance(keyword.value, ast.Name)
                else None
            )
            if terminal in _F32_NAMES:
                narrow.add(node.targets[0].id)
    return narrow


@register
class HotPathPerformanceRule(Rule):
    """R016 — no quadratic/allocating/unvectorized numpy on the query path."""

    rule_id = "R016"
    summary = "query-path numpy free of append loops, per-iteration allocs"
    rationale = (
        "engine/ and index/ code reachable from Engine.execute runs per "
        "query, per chunk, per term. np.append is O(n) per call (the "
        "array is copied whole); an allocation inside the scan loop is "
        "a fresh buffer per iteration; a range(len(x)) element loop "
        "abandons the vectorized scan the chunk format exists for; and "
        "mixing a float32 buffer with Python floats silently promotes "
        "the whole expression to float64, doubling memory traffic. None "
        "of these show up at test scale."
    )
    project_rule = True

    def check_project(
        self, ctxs: Sequence[FileContext], project: ProjectModel
    ) -> Iterator[Finding]:
        #: map-source -> (LayerMap, candidate ctxs in hotpath dirs)
        groups: Dict[str, Tuple[LayerMap, List[FileContext]]] = {}
        for ctx in ctxs:
            layer_map = find_layer_map(ctx.path)
            if layer_map is None or not layer_map.hotpath.dirs:
                continue
            if not any(part in layer_map.hotpath.dirs for part in ctx.parts[:-1]):
                continue
            key = layer_map.source or "<inline>"
            groups.setdefault(key, (layer_map, []))[1].append(ctx)

        for layer_map, group_ctxs in groups.values():
            yield from self._check_group(layer_map, group_ctxs, project)

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def _check_group(
        self,
        layer_map: LayerMap,
        ctxs: Sequence[FileContext],
        project: ProjectModel,
    ) -> Iterator[Finding]:
        reachable = self._reachable_functions(layer_map, project)
        for ctx in ctxs:
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            for fn, _owner in self._scoped_functions(module):
                if not isinstance(
                    fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if reachable is not None and id(fn.node) not in reachable:
                    continue
                yield from self._check_function(ctx, fn)

    def _reachable_functions(
        self, layer_map: LayerMap, project: ProjectModel
    ) -> Optional[Set[int]]:
        """ids of function nodes reachable from the configured entries,
        or None (= check everything) when no entry resolves."""
        roots: List[Tuple[FunctionInfo, Optional[ClassInfo]]] = []
        for entry in layer_map.hotpath.entries:
            resolved = self._resolve_entry(entry, project)
            if resolved is not None:
                roots.append(resolved)
        if not roots:
            return None
        reachable: Set[int] = set()
        queue = list(roots)
        while queue:
            fn, owner = queue.pop()
            if id(fn.node) in reachable:
                continue
            reachable.add(id(fn.node))
            if not isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # synthetic constructor: no body to walk
            local_types = project.infer_local_types(fn, owner)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = project.resolve_call(
                    fn.module, node, local_types, owner
                )
                if callee is None:
                    continue
                callee_owner = None
                if callee.is_method:
                    callee_owner = callee.module.classes.get(
                        callee.qualname.split(".")[0]
                    )
                queue.append((callee, callee_owner))
        return reachable

    @staticmethod
    def _resolve_entry(
        entry: str, project: ProjectModel
    ) -> Optional[Tuple[FunctionInfo, Optional[ClassInfo]]]:
        """Resolve ``pkg.module.function`` or ``pkg.module.Class.method``."""
        parts = entry.split(".")
        # module.function
        if len(parts) >= 2:
            module = project.resolve_module(".".join(parts[:-1]))
            if module is not None and parts[-1] in module.functions:
                return module.functions[parts[-1]], None
        # module.Class.method
        if len(parts) >= 3:
            module = project.resolve_module(".".join(parts[:-2]))
            if module is not None:
                cls_info = module.classes.get(parts[-2])
                if cls_info is not None and parts[-1] in cls_info.methods:
                    return cls_info.methods[parts[-1]], cls_info
        return None

    @staticmethod
    def _scoped_functions(
        module: ModuleInfo,
    ) -> Iterator[Tuple[FunctionInfo, Optional[ClassInfo]]]:
        for fn in module.functions.values():
            yield fn, None
        for cls_info in module.classes.values():
            for fn in cls_info.methods.values():
                yield fn, cls_info

    # ------------------------------------------------------------------
    # Per-function pattern checks
    # ------------------------------------------------------------------

    def _check_function(
        self, ctx: FileContext, fn: FunctionInfo
    ) -> Iterator[Finding]:
        narrow = _narrow_dtype_locals(fn.node)
        yield from self._walk(ctx, fn, fn.node.body, in_loop=False,
                              loop_vars=set(), narrow=narrow)

    def _walk(
        self,
        ctx: FileContext,
        fn: FunctionInfo,
        statements: Sequence[ast.stmt],
        in_loop: bool,
        loop_vars: Set[str],
        narrow: Set[str],
    ) -> Iterator[Finding]:
        for statement in statements:
            if isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(statement, (ast.For, ast.While)):
                inner_vars = set(loop_vars)
                if isinstance(statement, ast.For):
                    yield from self._check_per_element(ctx, fn, statement)
                    if isinstance(statement.target, ast.Name):
                        inner_vars.add(statement.target.id)
                    # the iterable expression runs once per loop entry
                    for node in ast.walk(statement.iter):
                        yield from self._check_expr(
                            ctx, fn, node, in_loop, loop_vars, narrow
                        )
                else:
                    for node in ast.walk(statement.test):
                        yield from self._check_expr(
                            ctx, fn, node, in_loop, loop_vars, narrow
                        )
                yield from self._walk(
                    ctx, fn, statement.body, True, inner_vars, narrow
                )
                yield from self._walk(
                    ctx, fn, statement.orelse, in_loop, loop_vars, narrow
                )
                continue
            if isinstance(
                statement, (ast.If, ast.With, ast.AsyncWith, ast.Try)
            ):
                # Check only the header expressions here; nested
                # statements are visited by the recursion below (a
                # single ast.walk would double-count them).
                headers: List[ast.AST] = []
                if isinstance(statement, ast.If):
                    headers = [statement.test]
                elif isinstance(statement, (ast.With, ast.AsyncWith)):
                    headers = [item.context_expr for item in statement.items]
                for header in headers:
                    for node in ast.walk(header):
                        yield from self._check_expr(
                            ctx, fn, node, in_loop, loop_vars, narrow
                        )
                for attr in ("body", "orelse", "finalbody"):
                    children = getattr(statement, attr, None)
                    if children:
                        yield from self._walk(
                            ctx, fn, children, in_loop, loop_vars, narrow
                        )
                for handler in getattr(statement, "handlers", []) or []:
                    yield from self._walk(
                        ctx, fn, handler.body, in_loop, loop_vars, narrow
                    )
                continue
            # Simple statement: allocations in a `return`/`raise` escape
            # the loop on first execution — not per-iteration garbage.
            is_exit = isinstance(statement, (ast.Return, ast.Raise))
            for node in ast.walk(statement):
                yield from self._check_expr(
                    ctx, fn, node, in_loop and not is_exit, loop_vars, narrow
                )

    def _check_expr(
        self,
        ctx: FileContext,
        fn: FunctionInfo,
        node: ast.AST,
        in_loop: bool,
        loop_vars: Set[str],
        narrow: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            name = _numpy_call_name(node)
            if name == "append":
                yield self.finding(
                    ctx, node,
                    f"np.append in hot-path '{fn.qualname}' copies the "
                    "whole array per call (quadratic growth); collect "
                    "into a list and convert once, or preallocate",
                )
            elif (
                name in _ALLOCATORS
                and in_loop
                and not _is_zero_size(node)
            ):
                yield self.finding(
                    ctx, node,
                    f"np.{name} inside a loop in hot-path "
                    f"'{fn.qualname}' allocates a fresh array every "
                    "iteration; hoist the allocation or reuse a buffer",
                )
        elif isinstance(node, ast.BinOp):
            yield from self._check_promotion(ctx, fn, node, narrow)

    def _check_promotion(
        self, ctx: FileContext, fn: FunctionInfo, node: ast.BinOp, narrow: Set[str]
    ) -> Iterator[Finding]:
        sides = (node.left, node.right)
        names = [s.id for s in sides if isinstance(s, ast.Name)]
        floats = [
            s for s in sides
            if isinstance(s, ast.Constant) and isinstance(s.value, float)
        ]
        if floats and any(name in narrow for name in names):
            buffer_name = next(name for name in names if name in narrow)
            yield self.finding(
                ctx, node,
                f"arithmetic between float32 buffer '{buffer_name}' and a "
                f"Python float in hot-path '{fn.qualname}' silently "
                "promotes the whole expression to float64; use "
                "np.float32(...) constants or .astype once",
            )

    def _check_per_element(
        self, ctx: FileContext, fn: FunctionInfo, loop: ast.For
    ) -> Iterator[Finding]:
        """``for i in range(len(x)): ... x[i]`` — an unvectorized scan."""
        if not (
            isinstance(loop.target, ast.Name)
            and isinstance(loop.iter, ast.Call)
            and isinstance(loop.iter.func, ast.Name)
            and loop.iter.func.id == "range"
        ):
            return
        array_names: Set[str] = set()
        for arg in loop.iter.args:
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "len"
                and arg.args
                and isinstance(arg.args[0], ast.Name)
            ):
                array_names.add(arg.args[0].id)
        if not array_names:
            return
        index = loop.target.id
        for node in ast.walk(loop):
            if (
                isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id in array_names
                and isinstance(node.slice, ast.Name)
                and node.slice.id == index
            ):
                yield self.finding(
                    ctx, loop,
                    f"per-element loop over '{node.value.id}' in hot-path "
                    f"'{fn.qualname}' (range(len)/[i] indexing); replace "
                    "with a vectorized numpy expression",
                )
                return

"""Deadline/cancellation-propagation rule R019 for runtime-layer async code.

The live-serving front door (ROADMAP: asyncio/HTTP ISN service) rehosts
the simulator's admission/deadline/degree kernel on wall-clock time.
The multi-stage-budget literature the design follows makes deadline
propagation a *structural* invariant: every stage of a query's call
path must be bounded by a deadline derived from the enclosing query
budget, and cancellation must propagate when that budget is exhausted.
R019 encodes the invariant now — fixture-tested before any serving code
exists — so the serving PR is gated on arrival:

* **Unbounded awaits** — in modules assigned to a ``[deadlines]``
  layer, every awaited I/O-like call (socket/stream reads and writes,
  queue gets, HTTP requests, ``serve_forever`` …) must carry a bound:
  wrapped in ``asyncio.wait_for(...)``, inside an
  ``async with asyncio.timeout(...)``/``timeout_at(...)`` block, or
  passing an explicit deadline keyword (``deadline_s``, ``timeout`` …)
  threaded from the caller.
* **Constant budgets** — a numeric-literal timeout on an I/O call in a
  function that *receives* a deadline parameter ignores the query
  budget it was handed; the bound must derive from the parameter.
* **Swallowed cancellation** — ``except`` clauses that catch
  ``asyncio.CancelledError`` (explicitly, via ``except BaseException``,
  or a bare ``except:``) must re-raise it; otherwise a cancelled query
  keeps running and the budget machinery silently degrades.
* **Leaked tasks** — every task spawned with ``create_task`` /
  ``ensure_future`` must be awaited, gathered, registered in a
  collection or attribute, or given a done-callback; a dropped handle
  is garbage-collected mid-flight with its exceptions unobserved.

Scope comes from the governing ``layers.toml``: modules whose layer is
listed in ``[deadlines] layers``. Trees with no map or no
``[deadlines]`` section are exempt (sound-by-omission), so the rule
costs nothing until the runtime package grows async code.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from tools.reprolint.asyncsafety import _canonical, _terminal
from tools.reprolint.core import FileContext, Finding, Rule, register
from tools.reprolint.layers import LayerMap, find_layer_map
from tools.reprolint.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)

#: awaited method names treated as I/O-like (extensible via layers.toml)
_IO_METHODS = {
    "read", "readline", "readuntil", "readexactly", "recv", "recv_into",
    "send", "sendall", "sendto", "drain", "accept", "connect", "request",
    "get", "put", "fetch", "post", "execute", "query", "wait_closed",
    "start_serving", "serve_forever", "join",
}
#: awaited canonical dotted names treated as I/O-like
_IO_CALLS = {
    "asyncio.open_connection", "asyncio.start_server",
    "asyncio.open_unix_connection", "asyncio.start_unix_server",
}
#: keyword names recognised as a deadline bound (extensible via toml)
_DEADLINE_KEYWORDS = {
    "timeout", "timeout_s", "deadline", "deadline_s", "budget_s",
    "deadline_ts",
}
#: awaited wrappers that bound their inner call
_BOUNDING_WRAPPERS = {"wait_for"}
#: async context managers that bound their body
_TIMEOUT_CONTEXTS = {"timeout", "timeout_at", "move_on_after", "fail_after"}
#: task-spawning callables whose handle must not be dropped
_TASK_SPAWNERS = {"create_task", "ensure_future"}
#: uses of a task handle that count as "registered"
_REGISTERING_METHODS = {
    "append", "add", "register", "add_done_callback", "extend", "discard",
}


def _catches_cancellation(handler: ast.ExceptHandler) -> Optional[str]:
    """How this handler catches CancelledError, or None if it cannot."""
    if handler.type is None:
        return "bare 'except:'"
    heads: List[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for head in heads:
        name = _terminal(head)
        if name == "CancelledError":
            return "'except CancelledError'"
        if name == "BaseException":
            return "'except BaseException'"
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True if the handler body re-raises the caught exception (bare
    ``raise`` or ``raise <caught name>``) on some path."""
    caught = handler.name

    def scan(statements: Sequence[ast.stmt]) -> bool:
        for statement in statements:
            if isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(statement, ast.Raise):
                if statement.exc is None:
                    return True
                if (
                    caught is not None
                    and isinstance(statement.exc, ast.Name)
                    and statement.exc.id == caught
                ):
                    return True
                if _terminal(statement.exc) == "CancelledError" or (
                    isinstance(statement.exc, ast.Call)
                    and _terminal(statement.exc.func) == "CancelledError"
                ):
                    return True
            for attr in ("body", "orelse", "finalbody"):
                children = getattr(statement, attr, None)
                if children and scan(children):
                    return True
            for nested in getattr(statement, "handlers", []) or []:
                if scan(nested.body):
                    return True
        return False

    return scan(handler.body)


@register
class DeadlinePropagationRule(Rule):
    """R019 — runtime async code must thread deadlines and cancellation."""

    rule_id = "R019"
    summary = "awaits bounded by deadlines; cancellation propagated; tasks kept"
    rationale = (
        "The serving runtime executes the kernel's admission/deadline "
        "decisions on wall-clock time. An awaited I/O call with no bound "
        "turns one slow shard into an unbounded stall of the whole "
        "query; an except clause that eats CancelledError keeps "
        "cancelled queries running past their budget; a dropped task "
        "handle is collected mid-flight with its exception unobserved. "
        "Deadlines must be threaded from the query budget, not invented "
        "as constants downstream."
    )
    project_rule = True

    def check_project(
        self, ctxs: Sequence[FileContext], project: ProjectModel
    ) -> Iterator[Finding]:
        for ctx in ctxs:
            module = project.by_path.get(ctx.path)
            if module is None:  # pragma: no cover - defensive
                continue
            layer_map = find_layer_map(ctx.path)
            if layer_map is None or not layer_map.deadlines.enabled:
                continue
            layer = layer_map.layer_of(module.name)
            if not layer_map.is_deadline_layer(layer):
                continue
            io_methods = _IO_METHODS | set(layer_map.deadlines.io_methods)
            deadline_names = _DEADLINE_KEYWORDS | set(
                layer_map.deadlines.deadline_params
            )
            for fn, _owner in self._functions(module):
                node = fn.node
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                yield from self._check_cancellation(ctx, node, fn)
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_awaits(
                        ctx, module, fn, io_methods, deadline_names
                    )
                    yield from self._check_tasks(ctx, fn)

    @staticmethod
    def _functions(
        module: ModuleInfo,
    ) -> Iterator[Tuple[FunctionInfo, Optional[ClassInfo]]]:
        for fn in module.functions.values():
            yield fn, None
        for cls_info in module.classes.values():
            for fn in cls_info.methods.values():
                yield fn, cls_info

    # ------------------------------------------------------------------
    # Unbounded / constant-bounded awaits
    # ------------------------------------------------------------------

    def _check_awaits(
        self,
        ctx: FileContext,
        module: ModuleInfo,
        fn: FunctionInfo,
        io_methods: Set[str],
        deadline_names: Set[str],
    ) -> Iterator[Finding]:
        deadline_params = sorted(
            {p.arg for p in fn.params} & deadline_names
        )
        #: names derived from a deadline parameter within this function
        derived: Set[str] = set(deadline_params)
        for statement in ast.walk(fn.node):
            if isinstance(statement, ast.Assign) and self._mentions(
                statement.value, derived
            ):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        derived.add(target.id)

        for await_node, timeout_guarded in self._awaits(fn.node):
            call = await_node.value
            if not isinstance(call, ast.Call):
                continue
            if not self._is_io_call(call, module, io_methods):
                continue
            if timeout_guarded:
                continue
            bound = self._deadline_keyword(call, deadline_names)
            if bound is None:
                yield self.finding(
                    ctx, await_node,
                    f"awaited I/O call '{self._describe(call)}' has no "
                    f"deadline bound in 'async def {fn.name}'; wrap it in "
                    "asyncio.wait_for(...) / 'async with asyncio."
                    "timeout(...)', or pass a deadline_s derived from the "
                    "caller's budget",
                )
                continue
            if deadline_params and self._is_constant_expr(bound.value) and not (
                self._mentions(bound.value, derived)
            ):
                yield self.finding(
                    ctx, await_node,
                    f"'{self._describe(call)}' bounds the await with a "
                    f"constant {bound.arg}= although 'async def {fn.name}' "
                    f"receives '{deadline_params[0]}'; derive the bound "
                    "from the query budget instead of a literal",
                )

    @staticmethod
    def _awaits(
        scope: ast.AST,
    ) -> Iterator[Tuple[ast.Await, bool]]:
        """(await node, inside-timeout-context) pairs for ``scope``,
        skipping nested function definitions."""

        def walk(node: ast.AST, guarded: bool) -> Iterator[Tuple[ast.Await, bool]]:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    continue
                child_guarded = guarded
                if isinstance(child, (ast.With, ast.AsyncWith)) and any(
                    isinstance(item.context_expr, ast.Call)
                    and _terminal(item.context_expr.func) in _TIMEOUT_CONTEXTS
                    for item in child.items
                ):
                    child_guarded = True
                if isinstance(child, ast.Await):
                    yield child, child_guarded
                yield from walk(child, child_guarded)

        yield from walk(scope, False)

    def _is_io_call(
        self, call: ast.Call, module: ModuleInfo, io_methods: Set[str]
    ) -> bool:
        terminal = _terminal(call.func)
        if terminal in _BOUNDING_WRAPPERS:
            return False  # wait_for IS the bound
        canonical = _canonical(call.func, module)
        if canonical in _IO_CALLS:
            return True
        return (
            isinstance(call.func, ast.Attribute) and terminal in io_methods
        )

    @staticmethod
    def _deadline_keyword(
        call: ast.Call, deadline_names: Set[str]
    ) -> Optional[ast.keyword]:
        for keyword in call.keywords:
            if keyword.arg in deadline_names:
                return keyword
        return None

    @staticmethod
    def _is_constant_expr(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, (int, float))
        if isinstance(expr, ast.UnaryOp):
            return DeadlinePropagationRule._is_constant_expr(expr.operand)
        return False

    @staticmethod
    def _mentions(expr: ast.expr, names: Set[str]) -> bool:
        return any(
            isinstance(node, ast.Name) and node.id in names
            for node in ast.walk(expr)
        )

    @staticmethod
    def _describe(call: ast.Call) -> str:
        try:
            return ast.unparse(call.func) + "(...)"
        except Exception:  # pragma: no cover - defensive
            return "<call>(...)"

    # ------------------------------------------------------------------
    # Swallowed cancellation
    # ------------------------------------------------------------------

    def _check_cancellation(
        self, ctx: FileContext, node: ast.AST, fn: FunctionInfo
    ) -> Iterator[Finding]:
        for child in ast.walk(node):
            if not isinstance(child, ast.Try):
                continue
            for handler in child.handlers:
                how = _catches_cancellation(handler)
                if how is None:
                    continue
                if _reraises(handler):
                    continue
                yield self.finding(
                    ctx, handler,
                    f"{how} in '{fn.name}' swallows "
                    "asyncio.CancelledError — the cancelled query keeps "
                    "running past its budget; re-raise it ('raise') after "
                    "any cleanup, or narrow the except clause",
                )

    # ------------------------------------------------------------------
    # Leaked tasks
    # ------------------------------------------------------------------

    def _check_tasks(
        self, ctx: FileContext, fn: FunctionInfo
    ) -> Iterator[Finding]:
        assert isinstance(fn.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        #: task-handle local names -> the spawning statement
        handles: List[Tuple[str, ast.stmt, ast.Call]] = []
        for statement in ast.walk(fn.node):
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Call
            ):
                call = statement.value
                if self._spawns_task(call):
                    yield self.finding(
                        ctx, statement,
                        f"task spawned by '{self._describe(call)}' is "
                        "neither awaited nor registered — the handle is "
                        "dropped and the task can be garbage-collected "
                        "mid-flight; keep it (await/gather, store it, or "
                        "add_done_callback)",
                    )
            elif isinstance(statement, ast.Assign) and isinstance(
                statement.value, (ast.Call, ast.Await)
            ):
                value = statement.value
                call = value.value if isinstance(value, ast.Await) else value
                if isinstance(value, ast.Await):
                    continue  # awaited at spawn: bounded elsewhere
                if not isinstance(call, ast.Call) or not self._spawns_task(call):
                    continue
                target = statement.targets[0] if statement.targets else None
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue  # registered in an attribute/collection
                if isinstance(target, ast.Name):
                    handles.append((target.id, statement, call))

        for name, statement, call in handles:
            if name == "_" or not self._handle_kept(fn.node, name, statement):
                yield self.finding(
                    ctx, statement,
                    f"task handle '{name}' from "
                    f"'{self._describe(call)}' is never awaited, "
                    "gathered, or registered in this function; a dropped "
                    "handle is garbage-collected with its exception "
                    "unobserved",
                )

    @staticmethod
    def _spawns_task(call: ast.Call) -> bool:
        return _terminal(call.func) in _TASK_SPAWNERS

    @staticmethod
    def _handle_kept(
        scope: ast.AST, name: str, spawn_statement: ast.stmt
    ) -> bool:
        """True if ``name`` is loaded anywhere after the spawn: awaited,
        passed on, stored, or returned."""
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Name)
                and node.id == name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
        return False

# Convenience targets for the repro repository.

.PHONY: install test coverage lint reprolint reprolint-changed reprolint-sarif bench bench-reprolint bench-qps experiments experiments-small e20 trace-demo livesmoke report csv clean

install:
	pip install -e .

test:
	pytest tests/

# Line coverage over src/repro with the floor from pyproject.toml
# ([tool.coverage.report] fail_under). Requires pytest-cov (part of the
# `.[test]` extra); CI uploads the XML artifact.
coverage:
	@if python -c "import pytest_cov" >/dev/null 2>&1; then \
		pytest tests/ --cov=repro --cov-report=term --cov-report=xml; \
	else echo "pytest-cov not installed; skipping (pip install -e '.[test]')"; fi

# Static analysis: reprolint (always available — stdlib only), plus
# ruff and mypy when installed (CI installs both; local dev may not).
lint: reprolint
	@if python -c "import ruff" >/dev/null 2>&1; then \
		python -m ruff check src tests tools; \
	else echo "ruff not installed; skipping (pip install ruff)"; fi
	@if python -c "import mypy" >/dev/null 2>&1; then \
		python -m mypy; \
	else echo "mypy not installed; skipping (pip install mypy)"; fi

reprolint:
	python -m tools.reprolint src tests tools --baseline .reprolint-baseline.json \
	  --cache-dir .reprolint-cache

# Pre-commit fast path: only git-changed files plus everything that
# (transitively) imports them. Identical findings to `make reprolint`
# for the reported files; see CONTRIBUTING.md for the cache contract.
reprolint-changed:
	python -m tools.reprolint src tests tools --baseline .reprolint-baseline.json \
	  --cache-dir .reprolint-cache --changed-only

reprolint-sarif:
	python -m tools.reprolint src tests tools --baseline .reprolint-baseline.json \
	  --cache-dir .reprolint-cache \
	  --format sarif --output reprolint.sarif --exit-zero

bench:
	pytest benchmarks/ --benchmark-only

bench-small:
	REPRO_SCALE=small pytest benchmarks/ --benchmark-only

# Analyzer self-benchmark: cold vs warm cache vs --changed-only, with
# the wall-clock targets from the incremental-engine contract. Writes
# reprolint-bench.json (uploaded as a CI artifact).
bench-reprolint:
	python benchmarks/bench_reprolint.py --output reprolint-bench.json

# Engine throughput headline: single vs batched execution, mmap vs
# in-memory shard backing, per-chunk skipping on/off. Writes
# BENCH_qps.json (uploaded as a CI artifact) and fails below the
# batched-speedup floor.
bench-qps:
	python benchmarks/bench_qps.py --output BENCH_qps.json

experiments:
	python -m repro --all --json-dir results/reference --report results/reference_report.md

experiments-small:
	REPRO_SCALE=small python -m repro --all

# Regime-shift robustness smoke: offline vs online control under
# nonstationary/adversarial traffic (flash crowd, slow-query flood,
# query of death) with the anomaly-guarded degradation ladder.
e20:
	REPRO_SCALE=small python -m repro e20 --smoke

# Exercise the trace CLI end-to-end: run a traced load point and render
# the waterfall + timeline report (fast smoke preset).
trace-demo:
	REPRO_SCALE=small python -m repro trace e05 --smoke

# Sim-vs-live parity smoke: boot the asyncio serving node in-process,
# replay identical seeded arrival scripts through it and the simulator,
# and check the live curves against the sim predictions within
# tolerance bands. Writes live_parity.json (uploaded as a CI artifact).
livesmoke:
	python -m repro livesmoke --smoke --duration 1.5 --dilation 6 \
	  --output live_parity.json

report:
	python -c "from repro.harness.report import generate_report; \
	  generate_report('results/reference', 'results/reference_report.md')"

csv:
	python -c "from repro.harness.figures import export_csv; \
	  export_csv('results/reference', 'results/csv')"

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

# Convenience targets for the repro repository.

.PHONY: install test bench experiments experiments-small report csv clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-small:
	REPRO_SCALE=small pytest benchmarks/ --benchmark-only

experiments:
	python -m repro --all --json-dir results/reference --report results/reference_report.md

experiments-small:
	REPRO_SCALE=small python -m repro --all

report:
	python -c "from repro.harness.report import generate_report; \
	  generate_report('results/reference', 'results/reference_report.md')"

csv:
	python -c "from repro.harness.figures import export_csv; \
	  export_csv('results/reference', 'results/csv')"

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

"""Topic-coherent query generation for topical corpora.

Users query about *a topic*, not about independent random words. Given
a :class:`~repro.corpus.topical.TopicModel`, this generator picks a
topic per query and draws the query's terms from that topic's
distribution (falling back to the background for a small off-topic
fraction), so conjunctive matches are governed by topical
co-occurrence rather than popularity products.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.corpus.topical import TopicModel
from repro.engine.query import Query
from repro.util.rng import make_rng
from repro.util.validation import require_in_range, require_int_in_range
from repro.workloads.queries import QueryWorkloadConfig


class TopicalQueryGenerator:
    """Endless stream of topic-coherent queries."""

    def __init__(
        self,
        model: TopicModel,
        config: Optional[QueryWorkloadConfig] = None,
        rng: Optional[np.random.Generator] = None,
        off_topic_fraction: float = 0.15,
        cross_topic_fraction: float = 0.3,
    ) -> None:
        require_in_range(
            off_topic_fraction, "off_topic_fraction", low=0.0, high=1.0
        )
        require_in_range(
            cross_topic_fraction, "cross_topic_fraction", low=0.0, high=1.0
        )
        self.model = model
        self.config = config or QueryWorkloadConfig(
            vocab_size=model.vocab_size
        )
        self._rng = rng or make_rng(self.config.seed)
        self.off_topic_fraction = off_topic_fraction
        # Fraction of queries that straddle two topics. These are the
        # "hard" queries of a topical stream: their terms rarely
        # co-occur, so they scan deep — the tail of the service-time
        # distribution, without which a topical workload degenerates
        # into uniformly cheap queries.
        self.cross_topic_fraction = cross_topic_fraction
        self._next_id = 0

    def sample_term_count(self) -> int:
        count = int(self._rng.geometric(self.config.term_count_p))
        return min(count, self.config.max_terms)

    def sample(self) -> Query:
        n_terms = self.sample_term_count()
        first_topic = int(self._rng.integers(self.model.n_topics))
        topics = [first_topic]
        if (
            n_terms > 1
            and self.model.n_topics > 1
            and self._rng.random() < self.cross_topic_fraction
        ):
            second = int(self._rng.integers(self.model.n_topics))
            if second != first_topic:
                topics.append(second)
        terms: List[int] = []
        seen = set()
        attempts = 0
        while len(terms) < n_terms and attempts < 50 * n_terms:
            attempts += 1
            if self._rng.random() < self.off_topic_fraction:
                draw = int(self.model.background.sample(self._rng))
            else:
                topic = topics[len(terms) % len(topics)]
                draw = int(self.model.sample_topic_terms(topic, self._rng, 1)[0])
            if draw not in seen:
                seen.add(draw)
                terms.append(draw)
        query = Query.of(
            terms,
            k=self.config.k,
            mode=self.config.mode,
            query_id=self._next_id,
        )
        self._next_id += 1
        return query

    def sample_many(self, n: int) -> List[Query]:
        require_int_in_range(n, "n", low=0)
        return [self.sample() for _ in range(n)]

    def __iter__(self) -> Iterator[Query]:
        while True:
            yield self.sample()

"""Synthetic query workload.

Substitutes for the production query trace used in the paper. Two
properties of real web-query streams matter for the paper's dynamics and
are reproduced here:

* **Term-count distribution** — most queries have 1–3 terms, with a
  geometric-ish tail up to ``max_terms`` (web-search averages ≈ 2.4
  terms/query);
* **Query-term popularity** — query terms are drawn from a Zipfian
  distribution over the vocabulary, *more* head-skewed than corpus text
  (people search for common words). Together with conjunctive matching,
  this yields the heavy-tailed service-time distribution the paper
  reports: common-term queries fill the match budget within a few chunks,
  while queries containing rare terms (or rare term *combinations*) scan
  deep into the index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.engine.query import MatchMode, Query
from repro.text.zipf import ZipfMandelbrot
from repro.util.rng import make_rng
from repro.util.validation import (
    require,
    require_in_range,
    require_int_in_range,
    require_positive,
)


@dataclass(frozen=True)
class QueryWorkloadConfig:
    """Parameters of the synthetic query stream."""

    vocab_size: int = 30_000
    term_zipf_exponent: float = 1.2
    term_zipf_shift: float = 1.0
    term_count_p: float = 0.45  # geometric success prob; mean terms ≈ 1/p
    max_terms: int = 6
    k: int = 10
    mode: MatchMode = MatchMode.ALL
    seed: int = 0

    def __post_init__(self) -> None:
        require_int_in_range(self.vocab_size, "vocab_size", low=1)
        require_positive(self.term_zipf_exponent, "term_zipf_exponent")
        require_in_range(self.term_zipf_shift, "term_zipf_shift", low=0.0)
        require_in_range(
            self.term_count_p, "term_count_p", low=0.0, high=1.0,
            low_inclusive=False, high_inclusive=True,
        )
        require_int_in_range(self.max_terms, "max_terms", low=1)
        require_int_in_range(self.k, "k", low=1)
        require(isinstance(self.mode, MatchMode), "mode must be a MatchMode")


class QueryGenerator:
    """Draws an endless stream of queries from a workload config."""

    def __init__(
        self,
        config: Optional[QueryWorkloadConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.config = config or QueryWorkloadConfig()
        self._rng = rng or make_rng(self.config.seed)
        self._zipf = ZipfMandelbrot(
            self.config.vocab_size,
            self.config.term_zipf_exponent,
            self.config.term_zipf_shift,
        )
        self._next_id = 0

    def sample_term_count(self) -> int:
        """Number of terms for one query: truncated geometric, min 1."""
        count = int(self._rng.geometric(self.config.term_count_p))
        return min(count, self.config.max_terms)

    def sample(self) -> Query:
        """Draw the next query."""
        n_terms = self.sample_term_count()
        # Oversample then dedupe: conjunctive queries with duplicate terms
        # would silently shrink, skewing the term-count distribution.
        terms: List[int] = []
        seen = set()
        while len(terms) < n_terms:
            draw = int(self._zipf.sample(self._rng))
            if draw not in seen:
                seen.add(draw)
                terms.append(draw)
        query = Query.of(
            terms, k=self.config.k, mode=self.config.mode, query_id=self._next_id
        )
        self._next_id += 1
        return query

    def sample_many(self, n: int) -> List[Query]:
        """Draw ``n`` queries."""
        require_int_in_range(n, "n", low=0)
        return [self.sample() for _ in range(n)]

    def __iter__(self) -> Iterator[Query]:
        while True:
            yield self.sample()

"""Workload traces: timestamped query streams, saved/loaded as JSONL.

A :class:`WorkloadTrace` pairs each query with an arrival timestamp —
the replayable unit a load test or a production capture boils down to.
Traces are generated from any (query generator, arrival process) pair
and replayed deterministically through the simulator via
:func:`repro.sim.experiment.run_trace_point`, so two policies can be
compared on the *identical* request stream.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

import numpy as np

from repro.engine.query import MatchMode, Query
from repro.errors import ConfigurationError
from repro.sim.arrivals import ArrivalProcess
from repro.util.validation import require_positive
from repro.workloads.queries import QueryGenerator


@dataclass(frozen=True)
class WorkloadTrace:
    """A timestamped query stream (timestamps sorted, seconds)."""

    times: np.ndarray
    queries: List[Query]

    def __post_init__(self) -> None:
        if self.times.shape[0] != len(self.queries):
            raise ConfigurationError("times and queries must align")
        if self.times.shape[0] and (
            np.any(np.diff(self.times) < 0) or self.times[0] < 0
        ):
            raise ConfigurationError("times must be sorted and non-negative")

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def horizon(self) -> float:
        return float(self.times[-1]) if len(self) else 0.0

    @property
    def mean_rate(self) -> float:
        return len(self) / self.horizon if self.horizon > 0 else 0.0

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    @staticmethod
    def generate(
        generator: QueryGenerator,
        arrivals: ArrivalProcess,
        horizon: float,
    ) -> "WorkloadTrace":
        """Drive ``arrivals`` until ``horizon``, drawing one query each."""
        require_positive(horizon, "horizon")
        times: List[float] = []
        queries: List[Query] = []
        now = 0.0
        while True:
            gap = arrivals.next_interarrival()
            if not np.isfinite(gap):
                break
            now += gap
            if now > horizon:
                break
            times.append(now)
            queries.append(generator.sample())
        return WorkloadTrace(np.asarray(times, dtype=np.float64), queries)

    # ------------------------------------------------------------------
    # Persistence (JSONL: one record per query)
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for t, query in zip(self.times, self.queries):
                handle.write(
                    json.dumps(
                        {
                            "t": float(t),
                            "terms": list(query.term_ids),
                            "k": query.k,
                            "mode": query.mode.value,
                        }
                    )
                )
                handle.write("\n")
        return path

    @staticmethod
    def load(path: Union[str, Path]) -> "WorkloadTrace":
        times: List[float] = []
        queries: List[Query] = []
        with Path(path).open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    times.append(float(record["t"]))
                    queries.append(
                        Query.of(
                            record["terms"],
                            k=int(record["k"]),
                            mode=MatchMode(record["mode"]),
                            query_id=line_number,
                        )
                    )
                except (KeyError, ValueError, TypeError) as exc:
                    raise ConfigurationError(
                        f"bad trace record at line {line_number + 1}: {exc}"
                    ) from exc
        return WorkloadTrace(np.asarray(times, dtype=np.float64), queries)

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------

    def window_rates(self, window: float) -> np.ndarray:
        """Arrival rate per ``window``-second bucket (for plotting load)."""
        require_positive(window, "window")
        if not len(self):
            return np.zeros(0)
        buckets = np.bincount((self.times / window).astype(int))
        return buckets / window

"""Named workload mixes.

Web query streams differ by product surface and market: navigational
traffic is short, head-heavy queries; long-tail informational traffic
uses more and rarer terms. Each mix below is a
:class:`~repro.workloads.queries.QueryWorkloadConfig` preset with the
knobs that matter — term-popularity skew and term-count distribution —
chosen to move the service-time distribution in a known direction.
Experiment E15 measures how the adaptive policy's gains vary across
them.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.errors import ConfigurationError
from repro.workloads.queries import QueryWorkloadConfig

#: The default mix used everywhere else in the library.
STANDARD = QueryWorkloadConfig()

#: Navigational / head traffic: few, popular terms. Matches are
#: abundant, the budget fills within a few chunks, service times are
#: short and comparatively uniform — the least parallelism-friendly mix.
NAVIGATIONAL = replace(
    STANDARD,
    term_zipf_exponent=1.6,
    term_count_p=0.6,
    max_terms=3,
)

#: Long-tail informational traffic: more terms, flatter popularity.
#: Rare conjunctions force deep scans, stretching the service-time tail
#: — the most parallelism-friendly mix.
INFORMATIONAL = replace(
    STANDARD,
    term_zipf_exponent=0.9,
    term_count_p=0.35,
    max_terms=8,
)

#: Stress mix: flat term popularity and many terms per query; nearly
#: every query is a deep scan. Used for worst-case capacity studies.
STRESS = replace(
    STANDARD,
    term_zipf_exponent=0.7,
    term_count_p=0.3,
    max_terms=10,
)

MIXES: Dict[str, QueryWorkloadConfig] = {
    "standard": STANDARD,
    "navigational": NAVIGATIONAL,
    "informational": INFORMATIONAL,
    "stress": STRESS,
}


def get_mix(name: str, vocab_size: int = None, seed: int = None) -> QueryWorkloadConfig:
    """Look up a mix by name, optionally re-targeting vocab/seed."""
    try:
        mix = MIXES[name]
    except KeyError:
        known = ", ".join(sorted(MIXES))
        raise ConfigurationError(f"unknown mix {name!r}; known: {known}") from None
    if vocab_size is not None:
        mix = replace(mix, vocab_size=vocab_size)
    if seed is not None:
        mix = replace(mix, seed=seed)
    return mix

"""The reference workbench: corpus + index + engine + query stream.

Experiments, examples, and benchmarks all need the same stack
(synthetic shard, inverted index, engine, workload generator) wired
consistently. :func:`build_workbench` assembles it from one seed, and a
small process-level cache avoids rebuilding the shard for every
benchmark in a session.

Sizing presets:

* ``WorkbenchConfig.small()`` — quick unit-test scale (seconds to build);
* ``WorkbenchConfig.reference()`` — the default experiment scale,
  chosen so the sequential service-time distribution has the
  milliseconds-median / tens-of-milliseconds-tail shape reported for
  production index-serving nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.corpus.documents import Corpus
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.engine.executor import Engine, EngineConfig
from repro.index.builder import IndexConfig, build_index
from repro.index.inverted import InvertedIndex
from repro.util.rng import RngFactory
from repro.workloads.queries import QueryGenerator, QueryWorkloadConfig


@dataclass(frozen=True)
class WorkbenchConfig:
    """Complete configuration of a reproducible workbench."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    index: IndexConfig = field(default_factory=IndexConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    workload: QueryWorkloadConfig = field(default_factory=QueryWorkloadConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workload.vocab_size != self.corpus.vocab_size:
            # Keep the query stream aligned with the corpus vocabulary.
            object.__setattr__(
                self,
                "workload",
                replace(self.workload, vocab_size=self.corpus.vocab_size),
            )

    @staticmethod
    def small(seed: int = 0) -> "WorkbenchConfig":
        """Unit-test scale: builds in well under a second."""
        return WorkbenchConfig(
            corpus=CorpusConfig(n_docs=4_000, vocab_size=6_000, seed=seed),
            index=IndexConfig(chunk_size=128),
            seed=seed,
        )

    @staticmethod
    def reference(seed: int = 0) -> "WorkbenchConfig":
        """Experiment scale (see module docstring)."""
        return WorkbenchConfig(
            corpus=CorpusConfig(n_docs=60_000, vocab_size=30_000, seed=seed),
            index=IndexConfig(chunk_size=128),
            seed=seed,
        )


@dataclass
class Workbench:
    """An assembled corpus/index/engine/workload stack."""

    config: WorkbenchConfig
    corpus: Corpus
    index: InvertedIndex
    engine: Engine
    rng_factory: RngFactory

    def query_generator(self, stream: str = "queries") -> QueryGenerator:
        """A fresh, deterministic query generator on the named RNG stream."""
        return QueryGenerator(self.config.workload, self.rng_factory.stream(stream))


def build_workbench(config: Optional[WorkbenchConfig] = None) -> Workbench:
    """Assemble a workbench from ``config`` (reference scale by default)."""
    config = config or WorkbenchConfig.reference()
    factory = RngFactory(config.seed)
    corpus = generate_corpus(config.corpus, factory.stream("corpus"))
    index = build_index(corpus, config.index)
    engine = Engine(index, config.engine)
    return Workbench(
        config=config,
        corpus=corpus,
        index=index,
        engine=engine,
        rng_factory=factory,
    )


_CACHE: Dict[WorkbenchConfig, Workbench] = {}


def cached_workbench(config: Optional[WorkbenchConfig] = None) -> Workbench:
    """Process-level cached :func:`build_workbench`.

    Benchmarks and the experiment harness share one shard per
    configuration instead of regenerating it per test. Do not mutate the
    returned workbench.
    """
    config = config or WorkbenchConfig.reference()
    cached = _CACHE.get(config)
    if cached is None:
        cached = build_workbench(config)
        _CACHE[config] = cached
    return cached

"""Query workload generation and load specification."""

from repro.workloads.mixes import MIXES, get_mix
from repro.workloads.queries import QueryWorkloadConfig, QueryGenerator
from repro.workloads.trace import WorkloadTrace
from repro.workloads.workbench import Workbench, WorkbenchConfig, build_workbench

__all__ = [
    "MIXES",
    "get_mix",
    "QueryWorkloadConfig",
    "QueryGenerator",
    "WorkloadTrace",
    "Workbench",
    "WorkbenchConfig",
    "build_workbench",
]

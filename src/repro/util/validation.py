"""Small argument-validation helpers used across the library.

These keep constructors short and produce uniform, readable error messages.
All raise :class:`repro.errors.ConfigurationError` on failure so user code
has one exception type to handle for bad parameters.
"""

from __future__ import annotations

from numbers import Real
from typing import Any, Optional, Tuple, Type, Union

from repro.errors import ConfigurationError

# Annotations use ``float`` (PEP 484 numeric tower: ints are accepted);
# runtime checks use ``numbers.Real`` so numpy scalars also pass.


def require(condition: bool, message: str) -> None:
    """Raise ``ConfigurationError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ConfigurationError(message)


def require_type(
    value: Any, types: Union[Type[Any], Tuple[Type[Any], ...]], name: str
) -> Any:
    """Check ``isinstance(value, types)`` and return the value."""
    if not isinstance(value, types):
        type_names = (
            types.__name__
            if isinstance(types, type)
            else " or ".join(t.__name__ for t in types)
        )
        raise ConfigurationError(
            f"{name} must be {type_names}, got {type(value).__name__}"
        )
    return value


def require_positive(value: float, name: str, strict: bool = True) -> float:
    """Check that a number is > 0 (or >= 0 when ``strict=False``)."""
    if not isinstance(value, Real):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if strict and not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def require_in_range(
    value: float,
    name: str,
    low: Optional[float] = None,
    high: Optional[float] = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> float:
    """Check that ``low <= value <= high`` with configurable open ends."""
    if not isinstance(value, Real):
        raise ConfigurationError(f"{name} must be a number, got {type(value).__name__}")
    if low is not None:
        if low_inclusive and value < low:
            raise ConfigurationError(f"{name} must be >= {low}, got {value}")
        if not low_inclusive and value <= low:
            raise ConfigurationError(f"{name} must be > {low}, got {value}")
    if high is not None:
        if high_inclusive and value > high:
            raise ConfigurationError(f"{name} must be <= {high}, got {value}")
        if not high_inclusive and value >= high:
            raise ConfigurationError(f"{name} must be < {high}, got {value}")
    return value


def require_int_in_range(
    value: Any,
    name: str,
    low: Optional[int] = None,
    high: Optional[int] = None,
) -> int:
    """Check that ``value`` is an integer within ``[low, high]``."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"{name} must be an integer, got {type(value).__name__}"
        )
    require_in_range(value, name, low=low, high=high)
    return value


def require_nonempty(sequence: Any, name: str) -> Any:
    """Check that a sized container is non-empty."""
    try:
        size = len(sequence)
    except TypeError as exc:
        raise ConfigurationError(f"{name} must be a sized container") from exc
    if size == 0:
        raise ConfigurationError(f"{name} must not be empty")
    return sequence

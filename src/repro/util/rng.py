"""Deterministic random-number-stream management.

Every stochastic component in the library (corpus generation, query
sampling, arrival processes, service-time draws) takes an explicit
``numpy.random.Generator``. This module provides the plumbing to derive
independent, reproducible streams from a single experiment seed, so that
changing one component's consumption of randomness never perturbs another
component's stream — a requirement for comparable A/B policy runs.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

SeedLike = Union[int, str, None]


def derive_seed(root: int, *labels: Union[str, int]) -> int:
    """Derive a child seed from ``root`` and a label path.

    Uses SHA-256 over the root and labels so that child streams are
    statistically independent and stable across runs and platforms.

    >>> derive_seed(42, "arrivals") == derive_seed(42, "arrivals")
    True
    >>> derive_seed(42, "arrivals") != derive_seed(42, "service")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root)).encode("utf-8"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


def make_rng(seed: SeedLike) -> np.random.Generator:
    """Create a ``numpy.random.Generator`` from an int or string seed.

    Strings are hashed (stable across processes, unlike ``hash()``).
    ``None`` is rejected loudly: an OS-entropy generator would make the
    experiment silently nondeterministic, defeating replayability — the
    invariant every A/B comparison in this repository rests on. Derive
    per-component seeds with :func:`derive_seed` / :class:`RngFactory`
    instead of omitting them.
    """
    if seed is None:
        raise ConfigurationError(
            "make_rng requires an explicit seed (int or str); an unseeded "
            "generator would make the run nondeterministic. Derive "
            "per-component seeds with derive_seed()/RngFactory."
        )
    if isinstance(seed, str):
        seed = derive_seed(0, seed)
    if not isinstance(seed, (int, np.integer)):
        raise ConfigurationError(f"seed must be int, str, or None, got {type(seed)!r}")
    return np.random.default_rng(int(seed))


class RngFactory:
    """Factory handing out named, independent RNG streams under one root seed.

    >>> factory = RngFactory(7)
    >>> a = factory.stream("arrivals")
    >>> b = factory.stream("service")
    >>> a is not b
    True

    Requesting the same name twice returns a *fresh* generator seeded
    identically, which makes replaying a single component possible.
    """

    def __init__(self, root_seed: int = 0) -> None:
        if not isinstance(root_seed, (int, np.integer)):
            raise ConfigurationError(
                f"root_seed must be an integer, got {type(root_seed)!r}"
            )
        self._root = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root

    def seed_for(self, *labels: Union[str, int]) -> int:
        """Return the derived integer seed for a label path."""
        return derive_seed(self._root, *labels)

    def stream(self, *labels: Union[str, int]) -> np.random.Generator:
        """Return a fresh generator for the given label path."""
        if not labels:
            raise ConfigurationError("stream() requires at least one label")
        return np.random.default_rng(self.seed_for(*labels))

    def child(self, *labels: Union[str, int]) -> "RngFactory":
        """Return a sub-factory rooted at a derived seed."""
        return RngFactory(self.seed_for(*labels))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(root_seed={self._root})"


def spawn_streams(
    seed: SeedLike,
    names: Sequence[str],
    factory: Optional[RngFactory] = None,
) -> Dict[str, np.random.Generator]:
    """Convenience: build a ``{name: Generator}`` dict for ``names``."""
    if factory is None:
        if seed is None:
            raise ConfigurationError(
                "spawn_streams requires an explicit seed (or a factory)"
            )
        base = seed if isinstance(seed, (int, np.integer)) else derive_seed(0, str(seed))
        factory = RngFactory(int(base))
    return {name: factory.stream(name) for name in names}

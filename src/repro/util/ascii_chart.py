"""Terminal-friendly ASCII charts for experiment series.

The harness is deliberately free of plotting dependencies; these
renderers give load-sweep experiments a visual summary directly in the
terminal output (and in the archived ``.txt`` results). Two forms:

* :func:`line_chart` — multi-series scatter/line over a shared x axis,
  one glyph per series, optional log-y (latency curves span 3+ decades
  once a policy saturates);
* :func:`bar_chart` — labeled horizontal bars (capacity comparisons,
  degree mixes).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

_GLYPHS = "*o+x#@%&"


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.1e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def line_chart(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    title: Optional[str] = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render multi-series data as an ASCII scatter chart.

    Points from different series landing on the same cell show the glyph
    of the later series in iteration order (documented, deterministic).
    """
    if not series:
        raise ConfigurationError("line_chart needs at least one series")
    if len(series) > len(_GLYPHS):
        raise ConfigurationError(f"at most {len(_GLYPHS)} series supported")
    xs = [float(v) for v in x]
    if len(xs) < 2:
        raise ConfigurationError("need at least two x points")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points, x has {len(xs)}"
            )

    all_y = [float(v) for ys in series.values() for v in ys
             if v == v and not math.isinf(v)]
    if not all_y:
        raise ConfigurationError("no finite y values to plot")
    if log_y:
        positive = [v for v in all_y if v > 0]
        if not positive:
            raise ConfigurationError("log_y requires positive values")
        y_lo, y_hi = math.log10(min(positive)), math.log10(max(positive))
    else:
        y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x_value: float, y_value: float, glyph: str) -> None:
        if y_value != y_value or math.isinf(y_value):
            return
        if log_y:
            if y_value <= 0:
                return
            y_value = math.log10(y_value)
        col = round((x_value - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y_value - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = glyph

    legend: List[str] = []
    for glyph, (name, ys) in zip(_GLYPHS, series.items()):
        legend.append(f"{glyph} {name}")
        for x_value, y_value in zip(xs, ys):
            place(x_value, float(y_value), glyph)

    y_hi_label = 10 ** y_hi if log_y else y_hi
    y_lo_label = 10 ** y_lo if log_y else y_lo
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{_fmt(y_hi_label):>9} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 9 + " |" + "".join(row))
    lines.append(f"{_fmt(y_lo_label):>9} +" + "".join(grid[-1]))
    axis = f"{_fmt(x_lo)}"
    right = _fmt(x_hi)
    pad = max(1, width - len(axis) - len(right))
    lines.append(" " * 11 + axis + " " * pad + right)
    footer = "  ".join(legend)
    if x_label or y_label:
        footer += f"   [{x_label} vs {y_label}{', log y' if log_y else ''}]"
    elif log_y:
        footer += "   [log y]"
    lines.append(" " * 11 + footer)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Render labeled horizontal bars scaled to the maximum value."""
    if len(labels) != len(values) or not labels:
        raise ConfigurationError("labels and values must align and be non-empty")
    numeric = [float(v) for v in values]
    if any(v < 0 for v in numeric):
        raise ConfigurationError("bar_chart requires non-negative values")
    peak = max(numeric) or 1.0
    label_width = max(len(str(l)) for l in labels)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, numeric):
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(
            f"{str(label):>{label_width}} | {bar} {_fmt(value)}{unit}"
        )
    return "\n".join(lines)

"""Shared utilities: RNG streams, validation, tables, serialization."""

from repro.util.rng import RngFactory, derive_seed, make_rng
from repro.util.tables import Table, format_float
from repro.util.validation import (
    require,
    require_in_range,
    require_positive,
    require_type,
)

__all__ = [
    "RngFactory",
    "derive_seed",
    "make_rng",
    "Table",
    "format_float",
    "require",
    "require_in_range",
    "require_positive",
    "require_type",
]

"""JSON serialization helpers for experiment configs and results.

Dataclasses, numpy scalars/arrays, and nested containers all serialize
through :func:`to_jsonable`; :func:`dump_json` / :func:`load_json` wrap
file IO. Results written by the harness are plain JSON so they can be
inspected or re-plotted without this library.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Union

import numpy as np

from repro.errors import ConfigurationError


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serializable primitives."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return to_jsonable(obj.value)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(x) for x in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(x) for x in obj]
    if isinstance(obj, Path):
        return str(obj)
    raise ConfigurationError(f"cannot serialize object of type {type(obj).__name__}")


def dump_json(obj: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Serialize ``obj`` to ``path`` as JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(to_jsonable(obj), handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path: Union[str, Path]) -> Any:
    """Load JSON from ``path``."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def dumps(obj: Any, indent: int = 2) -> str:
    """Serialize ``obj`` to a JSON string."""
    return json.dumps(to_jsonable(obj), indent=indent, sort_keys=True)

"""Plain-text table rendering for the benchmark/experiment harness.

The harness regenerates the paper's tables and figure data series as
aligned ASCII tables on stdout; this module is the single place where the
formatting lives so every experiment prints consistently.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError


def format_float(value: Any, digits: int = 3) -> str:
    """Format a number compactly for table cells.

    Integers print without a decimal point; floats use ``digits``
    significant fractional digits; everything else goes through ``str``.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-4:
            return f"{value:.{digits}e}"
        return f"{value:.{digits}f}"
    return str(value)


class Table:
    """An append-only table of rows rendered as aligned monospace text.

    >>> t = Table(["policy", "p99_ms"], title="E6")
    >>> t.add_row(["adaptive", 12.345])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(
        self,
        columns: Sequence[str],
        title: Optional[str] = None,
        float_digits: int = 3,
    ) -> None:
        if not columns:
            raise ConfigurationError("Table requires at least one column")
        self.columns: List[str] = [str(c) for c in columns]
        self.title = title
        self.float_digits = float_digits
        self._rows: List[List[str]] = []

    def add_row(self, values: Iterable[Any]) -> None:
        row = [format_float(v, self.float_digits) for v in values]
        if len(row) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append(row)

    def add_rows(self, rows: Iterable[Iterable[Any]]) -> None:
        for row in rows:
            self.add_row(row)

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def as_records(self) -> List[Dict[str, str]]:
        """Return rows as a list of ``{column: cell}`` dicts (strings)."""
        return [dict(zip(self.columns, row)) for row in self._rows]

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_line(cells: Sequence[str]) -> str:
            return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = fmt_line(self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        lines.extend(fmt_line(row) for row in self._rows)
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()

    def __str__(self) -> str:
        return self.render()

"""Index persistence: save/load a built shard as a compressed .npz.

Production ISNs memory-map prebuilt shards rather than re-inverting the
corpus on every start; this module provides the equivalent for the
reproduction (and lets experiments share one build across processes).
The on-disk layout is columnar: one flat array per posting-list field,
with per-term offsets — exactly the in-memory layout, so loads are
O(number of terms) object constructions over zero-copy array slices.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import IndexError_
from repro.index.chunks import ChunkMap
from repro.index.inverted import InvertedIndex
from repro.index.lexicon import Lexicon
from repro.index.postings import PostingList
from repro.ranking.bm25 import BM25Params

FORMAT_VERSION = 1


def save_index(index: InvertedIndex, path: Union[str, Path]) -> Path:
    """Serialize ``index`` to ``path`` (.npz, compressed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    term_ids = np.asarray(sorted(index.lexicon), dtype=np.int64)
    lengths = np.asarray(
        [index.lexicon.postings(int(t)).doc_frequency for t in term_ids],
        dtype=np.int64,
    )
    offsets = np.zeros(term_ids.shape[0] + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])

    doc_ids = np.empty(total, dtype=np.int64)
    freqs = np.empty(total, dtype=np.int64)
    impacts = np.empty(total, dtype=np.float64)
    for i, term_id in enumerate(term_ids):
        plist = index.lexicon.postings(int(term_id))
        start, end = int(offsets[i]), int(offsets[i + 1])
        doc_ids[start:end] = plist.doc_ids
        freqs[start:end] = plist.freqs
        impacts[start:end] = plist.impacts

    np.savez_compressed(
        path,
        format_version=np.asarray([FORMAT_VERSION]),
        vocab_size=np.asarray([index.lexicon.vocab_size]),
        chunk_size=np.asarray([index.chunk_map.chunk_size]),
        bm25=np.asarray([index.bm25_params.k1, index.bm25_params.b]),
        doc_lengths=index.doc_lengths,
        static_ranks=index.static_ranks,
        term_ids=term_ids,
        term_offsets=offsets,
        posting_doc_ids=doc_ids,
        posting_freqs=freqs,
        posting_impacts=impacts,
    )
    return path


def load_index(path: Union[str, Path]) -> InvertedIndex:
    """Load an index previously written by :func:`save_index`."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"][0])
        if version != FORMAT_VERSION:
            raise IndexError_(
                f"unsupported index format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        vocab_size = int(data["vocab_size"][0])
        chunk_size = int(data["chunk_size"][0])
        k1, b = (float(x) for x in data["bm25"])
        doc_lengths = data["doc_lengths"]
        static_ranks = data["static_ranks"]
        term_ids = data["term_ids"]
        offsets = data["term_offsets"]
        posting_doc_ids = data["posting_doc_ids"]
        posting_freqs = data["posting_freqs"]
        posting_impacts = data["posting_impacts"]

    chunk_map = ChunkMap(int(doc_lengths.shape[0]), chunk_size)
    lexicon = Lexicon(vocab_size)
    for i, term_id in enumerate(term_ids):
        start, end = int(offsets[i]), int(offsets[i + 1])
        lexicon.add(
            PostingList(
                term_id=int(term_id),
                doc_ids=posting_doc_ids[start:end],
                freqs=posting_freqs[start:end],
                impacts=posting_impacts[start:end],
                chunk_map=chunk_map,
            )
        )
    return InvertedIndex(
        lexicon=lexicon,
        chunk_map=chunk_map,
        doc_lengths=doc_lengths,
        static_ranks=static_ranks,
        bm25_params=BM25Params(k1=k1, b=b),
    )

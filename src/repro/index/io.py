"""Index persistence: compressed v1 archives and memory-mappable v2 shards.

Production ISNs memory-map prebuilt shards rather than re-inverting the
corpus on every start; this module provides the equivalent for the
reproduction (and lets experiments share one build across processes).
Both formats store the same columnar layout — one flat array per
posting-list field, with per-term offsets — so a load constructs a
:class:`~repro.index.lexicon.LazyLexicon` over the columns in O(1) and
posting lists materialize as zero-copy slices on first touch.

Two container formats:

* **v1** — a single compressed ``.npz`` archive. Compact and
  self-contained, but ``np.load`` cannot memory-map members of a zip
  archive, so the whole shard decompresses into RAM up front.
* **v2** (default) — a *directory* of uncompressed ``.npy`` files plus a
  ``meta.json`` manifest. Each column loads with ``mmap_mode="r"``, so
  opening a shard is O(1) regardless of size, only the pages queries
  actually touch become resident, and shards larger than RAM serve fine
  — the production-shaped fast path the batched executor benchmarks
  against.

``load_index`` dispatches on what it finds at the path (directory → v2,
file → v1), so callers never need to know which format wrote a shard.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.errors import IndexError_
from repro.index.chunks import ChunkMap
from repro.index.inverted import InvertedIndex
from repro.index.lexicon import LazyLexicon, Lexicon
from repro.ranking.bm25 import BM25Params

FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

META_FILE = "meta.json"
#: Columnar arrays common to both formats (v2 stores one .npy file each).
ARRAY_NAMES = (
    "doc_lengths",
    "static_ranks",
    "term_ids",
    "term_offsets",
    "posting_doc_ids",
    "posting_freqs",
    "posting_impacts",
)


def _columnar_arrays(index: InvertedIndex) -> Dict[str, np.ndarray]:
    """Flatten the index's posting lists into the columnar layout."""
    lexicon = index.lexicon
    if isinstance(lexicon, LazyLexicon):
        # Already columnar — reuse the backing arrays verbatim instead of
        # re-concatenating (loaded shards round-trip without copying).
        columns = dict(lexicon.columns())
    else:
        term_ids = np.asarray(sorted(lexicon), dtype=np.int64)
        plists = [lexicon.postings(int(t)) for t in term_ids]
        lengths = np.asarray([p.doc_frequency for p in plists], dtype=np.int64)
        offsets = np.zeros(term_ids.shape[0] + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        if plists:
            doc_ids = np.concatenate([p.doc_ids for p in plists])
            freqs = np.concatenate([p.freqs for p in plists])
            impacts = np.concatenate([p.impacts for p in plists])
        else:
            doc_ids = np.empty(0, dtype=np.int64)
            freqs = np.empty(0, dtype=np.int64)
            impacts = np.empty(0, dtype=np.float64)
        columns = {
            "term_ids": term_ids,
            "term_offsets": offsets,
            "posting_doc_ids": doc_ids,
            "posting_freqs": freqs,
            "posting_impacts": impacts,
        }
    columns["doc_lengths"] = index.doc_lengths
    columns["static_ranks"] = index.static_ranks
    return columns


def save_index(
    index: InvertedIndex,
    path: Union[str, Path],
    format_version: int = FORMAT_VERSION,
) -> Path:
    """Serialize ``index`` to ``path``.

    ``format_version=2`` (default) writes the memory-mappable directory
    container; ``format_version=1`` writes the legacy compressed
    ``.npz`` archive.
    """
    if format_version not in SUPPORTED_VERSIONS:
        raise IndexError_(
            f"unsupported index format version {format_version} "
            f"(supported: {SUPPORTED_VERSIONS})"
        )
    path = Path(path)
    columns = _columnar_arrays(index)

    if format_version == 1:
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            format_version=np.asarray([1]),
            vocab_size=np.asarray([index.lexicon.vocab_size]),
            chunk_size=np.asarray([index.chunk_map.chunk_size]),
            bm25=np.asarray([index.bm25_params.k1, index.bm25_params.b]),
            **columns,
        )
        return path

    path.mkdir(parents=True, exist_ok=True)
    for name in ARRAY_NAMES:
        np.save(path / f"{name}.npy", np.ascontiguousarray(columns[name]))
    meta = {
        "format_version": 2,
        "vocab_size": index.lexicon.vocab_size,
        "chunk_size": index.chunk_map.chunk_size,
        "bm25": {"k1": index.bm25_params.k1, "b": index.bm25_params.b},
        "arrays": list(ARRAY_NAMES),
    }
    (path / META_FILE).write_text(json.dumps(meta, indent=2) + "\n")
    return path


def _assemble(
    vocab_size: int,
    chunk_size: int,
    k1: float,
    b: float,
    arrays: Dict[str, np.ndarray],
) -> InvertedIndex:
    """Build an index over loaded columns (shared by both formats)."""
    doc_lengths = arrays["doc_lengths"]
    chunk_map = ChunkMap(int(doc_lengths.shape[0]), chunk_size)
    lexicon: Lexicon = LazyLexicon(
        vocab_size=vocab_size,
        term_ids=np.asarray(arrays["term_ids"], dtype=np.int64),
        term_offsets=np.asarray(arrays["term_offsets"], dtype=np.int64),
        doc_ids=arrays["posting_doc_ids"],
        freqs=arrays["posting_freqs"],
        impacts=arrays["posting_impacts"],
        chunk_map=chunk_map,
    )
    return InvertedIndex(
        lexicon=lexicon,
        chunk_map=chunk_map,
        doc_lengths=doc_lengths,
        static_ranks=arrays["static_ranks"],
        bm25_params=BM25Params(k1=k1, b=b),
    )


def _load_v1(path: Path) -> InvertedIndex:
    try:
        data = np.load(path)
    except (OSError, ValueError) as exc:
        raise IndexError_(f"cannot read index archive {path}: {exc}") from exc
    with data:
        try:
            version = int(data["format_version"][0])
            if version != 1:
                raise IndexError_(
                    f"unsupported archive format version {version} "
                    f"(archives are v1; v{FORMAT_VERSION} shards are directories)"
                )
            vocab_size = int(data["vocab_size"][0])
            chunk_size = int(data["chunk_size"][0])
            k1, b = (float(x) for x in data["bm25"])
            arrays = {name: data[name] for name in ARRAY_NAMES}
        except KeyError as exc:
            raise IndexError_(f"corrupt index archive {path}: missing {exc}") from exc
    return _assemble(vocab_size, chunk_size, k1, b, arrays)


def _load_v2(path: Path, mmap: bool) -> InvertedIndex:
    meta_path = path / META_FILE
    if not meta_path.is_file():
        raise IndexError_(f"not an index shard: {path} has no {META_FILE}")
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, ValueError) as exc:
        raise IndexError_(f"corrupt index shard {path}: bad {META_FILE}: {exc}") from exc
    version = meta.get("format_version")
    if version != 2:
        raise IndexError_(
            f"unsupported shard format version {version!r} (expected 2)"
        )
    try:
        vocab_size = int(meta["vocab_size"])
        chunk_size = int(meta["chunk_size"])
        k1 = float(meta["bm25"]["k1"])
        b = float(meta["bm25"]["b"])
    except (KeyError, TypeError, ValueError) as exc:
        raise IndexError_(
            f"corrupt index shard {path}: bad {META_FILE} field: {exc}"
        ) from exc
    mmap_mode = "r" if mmap else None
    arrays = {}
    for name in ARRAY_NAMES:
        array_path = path / f"{name}.npy"
        if not array_path.is_file():
            raise IndexError_(f"corrupt index shard {path}: missing {name}.npy")
        try:
            arrays[name] = np.load(array_path, mmap_mode=mmap_mode)
        except (OSError, ValueError) as exc:
            raise IndexError_(
                f"corrupt index shard {path}: cannot read {name}.npy: {exc}"
            ) from exc
    return _assemble(vocab_size, chunk_size, k1, b, arrays)


def load_index(path: Union[str, Path], mmap: bool = True) -> InvertedIndex:
    """Load an index previously written by :func:`save_index`.

    Dispatches on the container found at ``path``: a directory loads as
    a v2 shard (memory-mapped when ``mmap`` is true, the default; pass
    ``mmap=False`` to materialize every column in RAM), a file loads as
    a v1 archive (always fully in memory — zip members cannot be
    mapped). Either way the lexicon is lazy: posting lists materialize
    per term on first touch, so loading is O(1) in index size.
    """
    path = Path(path)
    if path.is_dir():
        return _load_v2(path, mmap)
    if path.is_file():
        return _load_v1(path)
    raise IndexError_(f"no index found at {path}")

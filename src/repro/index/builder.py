"""Index construction: invert a corpus into posting lists with impacts.

The builder performs a single columnar inversion: the corpus's CSR
(document → terms) layout is re-sorted into (term → documents) order with
one ``lexsort``, then BM25 impacts are computed vectorized per term and
per-chunk metadata is derived inside each :class:`PostingList`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.corpus.documents import Corpus
from repro.index.chunks import ChunkMap
from repro.index.inverted import InvertedIndex
from repro.index.lexicon import Lexicon
from repro.index.postings import PostingList
from repro.ranking.bm25 import BM25Params, bm25_idf, bm25_tf_component
from repro.util.validation import require_int_in_range


@dataclass(frozen=True)
class IndexConfig:
    """Index build parameters.

    ``chunk_size`` sets the parallel work granularity (documents per
    chunk). The paper's design point is a chunk small enough that dynamic
    load balancing works but large enough that per-chunk overhead is
    amortized; 128 documents is the default here.
    """

    chunk_size: int = 128
    bm25: BM25Params = field(default_factory=BM25Params)

    def __post_init__(self) -> None:
        require_int_in_range(self.chunk_size, "chunk_size", low=1)


def build_index(corpus: Corpus, config: Optional[IndexConfig] = None) -> InvertedIndex:
    """Build an :class:`InvertedIndex` over ``corpus``."""
    config = config or IndexConfig()
    chunk_map = ChunkMap(corpus.n_docs, config.chunk_size)
    lexicon = Lexicon(corpus.vocab_size)
    avg_doc_length = corpus.average_doc_length

    if corpus.n_postings:
        # Flatten (doc -> term) CSR into parallel arrays and re-sort by
        # (term, doc). Within a term, doc ids end up ascending, i.e. in
        # descending static-rank order.
        doc_ids_flat = np.repeat(
            np.arange(corpus.n_docs, dtype=np.int64), np.diff(corpus.offsets)
        )
        order = np.lexsort((doc_ids_flat, corpus.terms))
        sorted_terms = corpus.terms[order]
        sorted_docs = doc_ids_flat[order]
        sorted_freqs = corpus.freqs[order]

        unique_terms, term_starts = np.unique(sorted_terms, return_index=True)
        term_ends = np.append(term_starts[1:], sorted_terms.shape[0])

        doc_freq_per_term = (term_ends - term_starts).astype(np.float64)
        idf_per_term = bm25_idf(doc_freq_per_term, corpus.n_docs)

        for i, term_id in enumerate(unique_terms):
            start, end = int(term_starts[i]), int(term_ends[i])
            doc_ids = sorted_docs[start:end]
            freqs = sorted_freqs[start:end]
            tf_component = bm25_tf_component(
                freqs, corpus.doc_lengths[doc_ids], avg_doc_length, config.bm25
            )
            impacts = float(idf_per_term[i]) * tf_component
            lexicon.add(
                PostingList(
                    term_id=int(term_id),
                    doc_ids=doc_ids,
                    freqs=freqs,
                    impacts=impacts,
                    chunk_map=chunk_map,
                )
            )

    return InvertedIndex(
        lexicon=lexicon,
        chunk_map=chunk_map,
        doc_lengths=corpus.doc_lengths,
        static_ranks=corpus.static_ranks,
        bm25_params=config.bm25,
    )

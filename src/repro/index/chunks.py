"""Document-space chunking: the unit of parallel work.

The paper parallelizes a query by partitioning the index's document space
(which is laid out in static-rank order) into contiguous *chunks* and
having worker threads claim chunks dynamically. Chunks are also the
granularity of early-termination checks: after finishing a chunk, the
executor compares the best possible score of the remaining chunks with
the current top-k threshold.

A :class:`ChunkMap` describes a fixed partition of ``[0, n_docs)`` into
``n_chunks`` contiguous ranges of ``chunk_size`` documents (the last chunk
may be short).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.util.validation import require_int_in_range


class ChunkMap:
    """Fixed-size contiguous partition of the document space."""

    def __init__(self, n_docs: int, chunk_size: int) -> None:
        require_int_in_range(n_docs, "n_docs", low=1)
        require_int_in_range(chunk_size, "chunk_size", low=1)
        self.n_docs = n_docs
        self.chunk_size = chunk_size
        self.n_chunks = (n_docs + chunk_size - 1) // chunk_size
        # bounds[i] is the first doc id of chunk i; bounds[n_chunks] == n_docs.
        self.bounds = np.minimum(
            np.arange(self.n_chunks + 1, dtype=np.int64) * chunk_size, n_docs
        )

    def chunk_range(self, chunk_id: int) -> Tuple[int, int]:
        """Half-open doc-id range ``[start, end)`` of ``chunk_id``."""
        require_int_in_range(chunk_id, "chunk_id", low=0, high=self.n_chunks - 1)
        return int(self.bounds[chunk_id]), int(self.bounds[chunk_id + 1])

    def chunk_of_doc(self, doc_id: int) -> int:
        """The chunk containing ``doc_id``."""
        require_int_in_range(doc_id, "doc_id", low=0, high=self.n_docs - 1)
        return doc_id // self.chunk_size

    def chunk_lengths(self) -> np.ndarray:
        """Number of documents in each chunk."""
        return np.diff(self.bounds)

    def __len__(self) -> int:
        return self.n_chunks

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        for chunk_id in range(self.n_chunks):
            yield self.chunk_range(chunk_id)

    def __repr__(self) -> str:
        return (
            f"ChunkMap(n_docs={self.n_docs}, chunk_size={self.chunk_size}, "
            f"n_chunks={self.n_chunks})"
        )

"""Inverted index substrate: postings, lexicon, chunking, builder."""

from repro.index.builder import IndexConfig, build_index
from repro.index.chunks import ChunkMap
from repro.index.inverted import InvertedIndex
from repro.index.lexicon import Lexicon
from repro.index.postings import PostingList

__all__ = [
    "IndexConfig",
    "build_index",
    "ChunkMap",
    "InvertedIndex",
    "Lexicon",
    "PostingList",
]

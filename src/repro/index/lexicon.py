"""Lexicon: term dictionary mapping term ids to posting lists and stats."""

from __future__ import annotations

from typing import Dict, Iterator, List

import numpy as np

from repro.errors import IndexError_
from repro.index.postings import PostingList


class Lexicon:
    """Term dictionary of an inverted index.

    Holds one :class:`PostingList` per term that occurs in the corpus,
    plus corpus-wide term statistics (document frequency, idf, global max
    impact) used for query planning and score upper bounds.
    """

    def __init__(self, vocab_size: int) -> None:
        if vocab_size < 1:
            raise IndexError_("vocab_size must be >= 1")
        self.vocab_size = vocab_size
        self._postings: Dict[int, PostingList] = {}

    def add(self, posting_list: PostingList) -> None:
        term_id = posting_list.term_id
        if not 0 <= term_id < self.vocab_size:
            raise IndexError_(f"term id {term_id} outside [0, {self.vocab_size})")
        if term_id in self._postings:
            raise IndexError_(f"duplicate posting list for term {term_id}")
        self._postings[term_id] = posting_list

    def __contains__(self, term_id: int) -> bool:
        return term_id in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._postings))

    def postings(self, term_id: int) -> PostingList:
        """Posting list for ``term_id``; raises for absent terms."""
        try:
            return self._postings[term_id]
        except KeyError:
            raise IndexError_(f"term {term_id} has no posting list") from None

    def postings_or_none(self, term_id: int):
        return self._postings.get(term_id)

    def doc_frequency(self, term_id: int) -> int:
        plist = self._postings.get(term_id)
        return plist.doc_frequency if plist is not None else 0

    def max_impact(self, term_id: int) -> float:
        plist = self._postings.get(term_id)
        return plist.max_impact if plist is not None else 0.0

    def document_frequencies(self) -> np.ndarray:
        """Dense df vector over the vocabulary."""
        df = np.zeros(self.vocab_size, dtype=np.int64)
        for term_id, plist in self._postings.items():
            df[term_id] = plist.doc_frequency
        return df

    def posting_lists(self, term_ids: List[int]) -> List[PostingList]:
        """Posting lists for the given terms, skipping absent terms."""
        found = []
        for term_id in term_ids:
            plist = self._postings.get(term_id)
            if plist is not None:
                found.append(plist)
        return found

    def __repr__(self) -> str:
        return f"Lexicon(vocab_size={self.vocab_size}, terms={len(self)})"

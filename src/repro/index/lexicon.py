"""Lexicon: term dictionary mapping term ids to posting lists and stats.

Two implementations share one interface: the eager :class:`Lexicon`
(posting lists registered up front, as the index builder produces them)
and the :class:`LazyLexicon` over a columnar posting store (one flat
array per field plus per-term offsets — the on-disk layout of
:mod:`repro.index.io`), which materializes a :class:`PostingList` view
the first time a term is touched. Laziness is what makes loading a saved
shard O(1) in index size and lets a memory-mapped shard larger than RAM
serve queries while only the touched terms' pages are resident.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.errors import IndexError_
from repro.index.chunks import ChunkMap
from repro.index.postings import PostingList


class Lexicon:
    """Term dictionary of an inverted index.

    Holds one :class:`PostingList` per term that occurs in the corpus,
    plus corpus-wide term statistics (document frequency, idf, global max
    impact) used for query planning and score upper bounds.
    """

    def __init__(self, vocab_size: int) -> None:
        if vocab_size < 1:
            raise IndexError_("vocab_size must be >= 1")
        self.vocab_size = vocab_size
        self._postings: Dict[int, PostingList] = {}

    def add(self, posting_list: PostingList) -> None:
        term_id = posting_list.term_id
        if not 0 <= term_id < self.vocab_size:
            raise IndexError_(f"term id {term_id} outside [0, {self.vocab_size})")
        if term_id in self._postings:
            raise IndexError_(f"duplicate posting list for term {term_id}")
        self._postings[term_id] = posting_list

    def __contains__(self, term_id: int) -> bool:
        return term_id in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._postings))

    def postings(self, term_id: int) -> PostingList:
        """Posting list for ``term_id``; raises for absent terms."""
        try:
            return self._postings[term_id]
        except KeyError:
            raise IndexError_(f"term {term_id} has no posting list") from None

    def postings_or_none(self, term_id: int):
        return self._postings.get(term_id)

    def doc_frequency(self, term_id: int) -> int:
        plist = self._postings.get(term_id)
        return plist.doc_frequency if plist is not None else 0

    def max_impact(self, term_id: int) -> float:
        plist = self._postings.get(term_id)
        return plist.max_impact if plist is not None else 0.0

    def document_frequencies(self) -> np.ndarray:
        """Dense df vector over the vocabulary."""
        df = np.zeros(self.vocab_size, dtype=np.int64)
        for term_id, plist in self._postings.items():
            df[term_id] = plist.doc_frequency
        return df

    def posting_lists(self, term_ids: List[int]) -> List[PostingList]:
        """Posting lists for the given terms, skipping absent terms."""
        found = []
        for term_id in term_ids:
            plist = self._postings.get(term_id)
            if plist is not None:
                found.append(plist)
        return found

    def __repr__(self) -> str:
        return f"Lexicon(vocab_size={self.vocab_size}, terms={len(self)})"


class LazyLexicon(Lexicon):
    """Lexicon over a columnar posting store, materialized on demand.

    Backed by the flat arrays of the persisted layout: ``term_ids`` (the
    terms present, ascending), ``term_offsets`` (``len(term_ids) + 1``
    slice boundaries), and the concatenated ``doc_ids`` / ``freqs`` /
    ``impacts`` columns. A term's :class:`PostingList` — including its
    derived per-chunk metadata — is built from zero-copy column slices
    the first time the term is requested and cached thereafter, so
    construction cost is O(1) and queries touch only the terms (and, for
    memory-mapped columns, the pages) they actually use.

    Materialization is guarded by a lock: the real-thread executors may
    request the same term concurrently, and ``PostingList`` construction
    must not be observed half-cached. Statistics that the columnar layout
    answers directly (document frequencies) never materialize anything.
    """

    def __init__(
        self,
        vocab_size: int,
        term_ids: np.ndarray,
        term_offsets: np.ndarray,
        doc_ids: np.ndarray,
        freqs: np.ndarray,
        impacts: np.ndarray,
        chunk_map: ChunkMap,
    ) -> None:
        super().__init__(vocab_size)
        if term_offsets.shape[0] != term_ids.shape[0] + 1:
            raise IndexError_(
                f"term_offsets must have {term_ids.shape[0] + 1} entries, "
                f"got {term_offsets.shape[0]}"
            )
        self._slots: Dict[int, int] = {
            int(t): i for i, t in enumerate(term_ids.tolist())
        }
        for term_id in self._slots:
            if not 0 <= term_id < vocab_size:
                raise IndexError_(
                    f"term id {term_id} outside [0, {vocab_size})"
                )
        self._term_ids = term_ids
        self._offsets = term_offsets
        self._doc_ids = doc_ids
        self._freqs = freqs
        self._impacts = impacts
        self._chunk_map = chunk_map
        self._lock = threading.Lock()

    def _materialize(self, term_id: int) -> PostingList:
        with self._lock:
            cached = self._postings.get(term_id)
            if cached is not None:
                return cached
            slot = self._slots[term_id]
            start = int(self._offsets[slot])
            end = int(self._offsets[slot + 1])
            plist = PostingList(
                term_id=term_id,
                doc_ids=self._doc_ids[start:end],
                freqs=self._freqs[start:end],
                impacts=self._impacts[start:end],
                chunk_map=self._chunk_map,
            )
            self._postings[term_id] = plist
            return plist

    def add(self, posting_list: PostingList) -> None:
        raise IndexError_("LazyLexicon is read-only; terms come from the store")

    def __contains__(self, term_id: int) -> bool:
        return term_id in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._slots))

    def postings(self, term_id: int) -> PostingList:
        plist = self._postings.get(term_id)
        if plist is not None:
            return plist
        if term_id not in self._slots:
            raise IndexError_(f"term {term_id} has no posting list")
        return self._materialize(term_id)

    def postings_or_none(self, term_id: int) -> Optional[PostingList]:
        plist = self._postings.get(term_id)
        if plist is not None:
            return plist
        if term_id not in self._slots:
            return None
        return self._materialize(term_id)

    def doc_frequency(self, term_id: int) -> int:
        slot = self._slots.get(term_id)
        if slot is None:
            return 0
        return int(self._offsets[slot + 1] - self._offsets[slot])

    def max_impact(self, term_id: int) -> float:
        plist = self.postings_or_none(term_id)
        return plist.max_impact if plist is not None else 0.0

    def document_frequencies(self) -> np.ndarray:
        df = np.zeros(self.vocab_size, dtype=np.int64)
        if self._term_ids.shape[0]:
            df[self._term_ids] = np.diff(self._offsets)
        return df

    def posting_lists(self, term_ids: List[int]) -> List[PostingList]:
        found = []
        for term_id in term_ids:
            plist = self.postings_or_none(term_id)
            if plist is not None:
                found.append(plist)
        return found

    def columns(self) -> Dict[str, np.ndarray]:
        """The backing columnar arrays (the persisted layout, verbatim).

        Lets :func:`repro.index.io.save_index` re-serialize a loaded
        shard without re-concatenating per-term arrays.
        """
        return {
            "term_ids": self._term_ids,
            "term_offsets": self._offsets,
            "posting_doc_ids": self._doc_ids,
            "posting_freqs": self._freqs,
            "posting_impacts": self._impacts,
        }

    def __repr__(self) -> str:
        return (
            f"LazyLexicon(vocab_size={self.vocab_size}, terms={len(self)}, "
            f"materialized={len(self._postings)})"
        )

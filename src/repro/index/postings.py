"""Posting lists with precomputed impact scores and per-chunk metadata.

Each posting list stores, for one term, the documents containing it in
ascending doc-id order (equivalently, descending static rank — see
:mod:`repro.corpus.documents`), the in-document term frequency, and the
precomputed BM25 *impact* (idf × tf-saturation) of the term in that
document. Precomputing impacts at build time turns query-time scoring
into pure array gathers and adds, which is both fast in numpy and a
faithful stand-in for the flat scan loops of a production ISN.

For chunk-granular execution the posting list also records, per document
chunk it intersects: the slice of its arrays belonging to that chunk and
the maximum impact within the chunk. The per-chunk maxima give the tight
score upper bounds used by early termination (MaxScore-style, but
localized per chunk as in rank-ordered indexes).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import IndexError_
from repro.index.chunks import ChunkMap


class PostingList:
    """Immutable posting list for a single term."""

    __slots__ = (
        "term_id",
        "doc_ids",
        "freqs",
        "impacts",
        "chunk_ids",
        "chunk_offsets",
        "chunk_max_impact",
        "max_impact",
    )

    def __init__(
        self,
        term_id: int,
        doc_ids: np.ndarray,
        freqs: np.ndarray,
        impacts: np.ndarray,
        chunk_map: ChunkMap,
    ) -> None:
        if doc_ids.shape[0] != freqs.shape[0] or doc_ids.shape[0] != impacts.shape[0]:
            raise IndexError_("doc_ids, freqs, impacts must be parallel arrays")
        if doc_ids.shape[0] and np.any(np.diff(doc_ids) <= 0):
            raise IndexError_(f"posting list for term {term_id} not strictly ascending")

        self.term_id = int(term_id)
        self.doc_ids = np.ascontiguousarray(doc_ids, dtype=np.int64)
        self.freqs = np.ascontiguousarray(freqs, dtype=np.int64)
        self.impacts = np.ascontiguousarray(impacts, dtype=np.float64)
        self.max_impact = float(self.impacts.max()) if self.impacts.size else 0.0

        # Per-chunk metadata: which chunks this term appears in, the slice
        # of the posting arrays for each, and the max impact inside it.
        if self.doc_ids.size:
            cuts = np.searchsorted(self.doc_ids, chunk_map.bounds, side="left")
            sizes = np.diff(cuts)
            nonempty = np.nonzero(sizes > 0)[0]
            self.chunk_ids = nonempty.astype(np.int64)
            starts = cuts[nonempty]
            ends = cuts[nonempty + 1]
            self.chunk_offsets = np.stack([starts, ends], axis=1).astype(np.int64)
            # The non-empty chunk slices tile the posting arrays end to
            # end, so a single reduceat computes every chunk maximum.
            self.chunk_max_impact = np.maximum.reduceat(self.impacts, starts).astype(
                np.float64
            )
        else:
            self.chunk_ids = np.empty(0, dtype=np.int64)
            self.chunk_offsets = np.empty((0, 2), dtype=np.int64)
            self.chunk_max_impact = np.empty(0, dtype=np.float64)

    @property
    def doc_frequency(self) -> int:
        """Number of documents containing the term."""
        return int(self.doc_ids.shape[0])

    def __len__(self) -> int:
        return self.doc_frequency

    def chunk_slice(self, chunk_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return (doc_ids, impacts) of this term inside ``chunk_id``.

        Returns empty arrays when the term does not occur in the chunk.
        """
        idx = np.searchsorted(self.chunk_ids, chunk_id)
        if idx < self.chunk_ids.shape[0] and self.chunk_ids[idx] == chunk_id:
            start, end = self.chunk_offsets[idx]
            return self.doc_ids[start:end], self.impacts[start:end]
        empty_ids = np.empty(0, dtype=np.int64)
        empty_impacts = np.empty(0, dtype=np.float64)
        return empty_ids, empty_impacts

    def chunk_upper_bound(self, chunk_id: int) -> float:
        """Max impact of this term within ``chunk_id`` (0 if absent)."""
        idx = np.searchsorted(self.chunk_ids, chunk_id)
        if idx < self.chunk_ids.shape[0] and self.chunk_ids[idx] == chunk_id:
            return float(self.chunk_max_impact[idx])
        return 0.0

    def suffix_upper_bounds(self, n_chunks: int) -> np.ndarray:
        """``bound[c]`` = max impact of this term in chunks ``>= c``.

        Used by early termination: after finishing chunk ``c-1``, the best
        score any remaining document can contribute from this term is
        ``bound[c]``. Length is ``n_chunks + 1`` with a trailing 0.
        """
        bounds = np.zeros(n_chunks + 1, dtype=np.float64)
        if self.chunk_ids.size == 0:
            return bounds
        dense = np.zeros(n_chunks, dtype=np.float64)
        dense[self.chunk_ids] = self.chunk_max_impact
        # Reverse cumulative maximum.
        bounds[:n_chunks] = np.maximum.accumulate(dense[::-1])[::-1]
        return bounds

    def contains(self, doc_id: int) -> bool:
        idx = np.searchsorted(self.doc_ids, doc_id)
        return bool(idx < self.doc_ids.shape[0] and self.doc_ids[idx] == doc_id)

    def impact_of(self, doc_id: int) -> float:
        """Impact of the term in ``doc_id`` (0.0 if absent)."""
        idx = np.searchsorted(self.doc_ids, doc_id)
        if idx < self.doc_ids.shape[0] and self.doc_ids[idx] == doc_id:
            return float(self.impacts[idx])
        return 0.0

    def __repr__(self) -> str:
        return (
            f"PostingList(term_id={self.term_id}, df={self.doc_frequency}, "
            f"max_impact={self.max_impact:.4f})"
        )

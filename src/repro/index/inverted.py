"""The inverted index: lexicon + chunk map + document metadata.

An :class:`InvertedIndex` is the in-memory shard an index-serving node
(ISN) scans to answer queries. It bundles:

* the :class:`~repro.index.lexicon.Lexicon` of posting lists (with
  precomputed BM25 impacts and per-chunk score bounds),
* the :class:`~repro.index.chunks.ChunkMap` partition used for parallel
  execution and early-termination checks,
* per-document metadata (lengths, static ranks) and global statistics.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import IndexError_
from repro.index.chunks import ChunkMap
from repro.index.lexicon import Lexicon
from repro.index.postings import PostingList
from repro.ranking.bm25 import BM25Params


class InvertedIndex:
    """Immutable in-memory index shard."""

    def __init__(
        self,
        lexicon: Lexicon,
        chunk_map: ChunkMap,
        doc_lengths: np.ndarray,
        static_ranks: np.ndarray,
        bm25_params: BM25Params,
    ) -> None:
        if doc_lengths.shape[0] != static_ranks.shape[0]:
            raise IndexError_("doc_lengths and static_ranks must be parallel")
        if chunk_map.n_docs != doc_lengths.shape[0]:
            raise IndexError_("chunk_map covers a different number of documents")
        self.lexicon = lexicon
        self.chunk_map = chunk_map
        self.doc_lengths = np.ascontiguousarray(doc_lengths, dtype=np.int64)
        self.static_ranks = np.ascontiguousarray(static_ranks, dtype=np.float64)
        self.bm25_params = bm25_params
        self.avg_doc_length = float(self.doc_lengths.mean())

    @property
    def n_docs(self) -> int:
        return int(self.doc_lengths.shape[0])

    @property
    def n_chunks(self) -> int:
        return self.chunk_map.n_chunks

    @property
    def n_terms(self) -> int:
        return len(self.lexicon)

    @property
    def n_postings(self) -> int:
        # doc_frequency, not postings(): a lazy lexicon answers it from
        # its offsets without materializing every posting list.
        return int(sum(self.lexicon.doc_frequency(t) for t in self.lexicon))

    def postings_for(self, term_ids: List[int]) -> List[PostingList]:
        """Posting lists for the query terms that exist in the index."""
        return self.lexicon.posting_lists(term_ids)

    def memory_footprint_bytes(self) -> int:
        """Approximate resident size of the index arrays."""
        total = self.doc_lengths.nbytes + self.static_ranks.nbytes
        for term_id in self.lexicon:
            plist = self.lexicon.postings(term_id)
            total += (
                plist.doc_ids.nbytes
                + plist.freqs.nbytes
                + plist.impacts.nbytes
                + plist.chunk_ids.nbytes
                + plist.chunk_offsets.nbytes
                + plist.chunk_max_impact.nbytes
            )
        return total

    def __repr__(self) -> str:
        return (
            f"InvertedIndex(n_docs={self.n_docs}, n_terms={self.n_terms}, "
            f"n_chunks={self.n_chunks})"
        )

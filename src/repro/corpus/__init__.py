"""Synthetic web corpus: documents, generator, statistics."""

from repro.corpus.documents import Corpus, Document
from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.corpus.stats import CorpusStats, corpus_stats

__all__ = [
    "Corpus",
    "Document",
    "CorpusConfig",
    "generate_corpus",
    "CorpusStats",
    "corpus_stats",
]

"""Build a corpus from real text documents.

The synthetic generator covers the paper's experiments; this module is
the adoption path — hand it your own documents and get back the same
:class:`~repro.corpus.documents.Corpus` the rest of the stack consumes:

>>> from repro.corpus.ingest import ingest_documents
>>> corpus, vocabulary = ingest_documents([
...     ("adaptive parallelism for web search", 0.9),
...     ("parallel query execution on multicore index servers", 0.7),
... ])
>>> corpus.n_docs
2

Documents are sorted by the supplied static rank (descending) before id
assignment, preserving the index invariant that doc id order == static
rank order. The vocabulary is built on the fly in *first-seen* order
and returned alongside, so queries can be parsed with the same mapping
(see :func:`parse_query`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.corpus.documents import Corpus
from repro.engine.query import MatchMode, Query
from repro.errors import CorpusError, QueryError
from repro.text.tokenizer import Tokenizer


class IngestVocabulary:
    """Mutable word <-> id mapping built during ingestion."""

    def __init__(self) -> None:
        self._word_to_id: Dict[str, int] = {}
        self._id_to_word: List[str] = []

    def __len__(self) -> int:
        return len(self._id_to_word)

    def id_for(self, word: str, create: bool = False) -> Optional[int]:
        term_id = self._word_to_id.get(word)
        if term_id is None and create:
            term_id = len(self._id_to_word)
            self._word_to_id[word] = term_id
            self._id_to_word.append(word)
        return term_id

    def word(self, term_id: int) -> str:
        if not 0 <= term_id < len(self._id_to_word):
            raise CorpusError(f"term id {term_id} outside vocabulary")
        return self._id_to_word[term_id]

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id


def ingest_documents(
    documents: Iterable[Tuple[str, float]],
    tokenizer: Optional[Tokenizer] = None,
) -> Tuple[Corpus, IngestVocabulary]:
    """Build a (corpus, vocabulary) pair from (text, static_rank) pairs.

    Static ranks may be any comparable floats; they are shifted into
    (0, 1] and documents are re-ordered descending, as the index
    requires. Empty documents (no tokens after analysis) are rejected.
    """
    tokenizer = tokenizer or Tokenizer()
    vocabulary = IngestVocabulary()

    token_lists: List[List[int]] = []
    ranks: List[float] = []
    for position, item in enumerate(documents):
        try:
            text, rank = item
        except (TypeError, ValueError):
            raise CorpusError(
                f"document {position} must be a (text, static_rank) pair"
            ) from None
        tokens = tokenizer.tokenize(str(text))
        if not tokens:
            raise CorpusError(f"document {position} has no tokens after analysis")
        token_lists.append(
            [vocabulary.id_for(token, create=True) for token in tokens]
        )
        ranks.append(float(rank))
    if not token_lists:
        raise CorpusError("no documents supplied")

    rank_arr = np.asarray(ranks, dtype=np.float64)
    # Shift into (0, 1] preserving order: the engine's bound logic wants
    # strictly positive priors.
    low, high = float(rank_arr.min()), float(rank_arr.max())
    span = high - low
    normalized = (rank_arr - low) / span if span > 0 else np.ones_like(rank_arr)
    normalized = 0.01 + 0.99 * normalized

    # Descending static rank; stable so equal-rank docs keep input order.
    order = np.argsort(-normalized, kind="stable")

    doc_lengths = np.asarray(
        [len(token_lists[i]) for i in order], dtype=np.int64
    )
    static_ranks = normalized[order]

    offsets = np.zeros(len(order) + 1, dtype=np.int64)
    terms_chunks: List[np.ndarray] = []
    freqs_chunks: List[np.ndarray] = []
    count = 0
    for new_id, original in enumerate(order):
        unique_terms, frequencies = np.unique(
            np.asarray(token_lists[original], dtype=np.int64), return_counts=True
        )
        terms_chunks.append(unique_terms)
        freqs_chunks.append(frequencies.astype(np.int64))
        count += unique_terms.shape[0]
        offsets[new_id + 1] = count

    return (
        Corpus(
            doc_lengths=doc_lengths,
            static_ranks=static_ranks,
            offsets=offsets,
            terms=np.concatenate(terms_chunks),
            freqs=np.concatenate(freqs_chunks),
            vocab_size=len(vocabulary),
        ),
        vocabulary,
    )


def parse_query(
    text: str,
    vocabulary: IngestVocabulary,
    k: int = 10,
    mode: MatchMode = MatchMode.ALL,
    tokenizer: Optional[Tokenizer] = None,
) -> Query:
    """Parse a query string against an ingested vocabulary.

    Unknown words are dropped (they cannot match anything); a query with
    no known words raises :class:`QueryError`.
    """
    tokenizer = tokenizer or Tokenizer()
    term_ids = [
        term_id
        for token in tokenizer.tokenize(text)
        if (term_id := vocabulary.id_for(token)) is not None
    ]
    if not term_ids:
        raise QueryError(f"no indexed terms in query {text!r}")
    return Query.of(term_ids, k=k, mode=mode)

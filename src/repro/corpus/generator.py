"""Synthetic web-corpus generator.

Substitutes for the proprietary Bing index shard used in the paper. The
generator preserves the structural properties that drive the paper's
dynamics:

* **Zipfian term popularity** — posting-list lengths are heavy-tailed,
  so query cost varies by orders of magnitude with the terms chosen;
* **Skewed document lengths** — lognormal, like real web pages;
* **Static-rank document ordering** — document quality is sampled from a
  skewed Beta distribution and documents are laid out in descending
  quality order, which is what enables early termination during ranked
  retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.corpus.documents import Corpus
from repro.text.zipf import ZipfMandelbrot
from repro.util.rng import make_rng
from repro.util.validation import (
    require,
    require_in_range,
    require_int_in_range,
    require_positive,
)


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters for :func:`generate_corpus`.

    Attributes
    ----------
    n_docs:
        Number of documents in the shard.
    vocab_size:
        Vocabulary size; term ids are popularity ranks.
    zipf_exponent, zipf_shift:
        Zipf–Mandelbrot parameters for term popularity.
    mean_doc_length:
        Target mean document length in tokens (lognormal).
    doc_length_sigma:
        Lognormal shape parameter of document length.
    min_doc_length, max_doc_length:
        Clipping bounds on document length.
    quality_alpha, quality_beta:
        Beta-distribution parameters for static-rank quality; the default
        (1, 5) gives a right-skewed distribution with a thin high-quality
        head, as in web collections.
    seed:
        RNG seed (derivable from an experiment root seed).
    """

    n_docs: int = 50_000
    vocab_size: int = 30_000
    zipf_exponent: float = 1.05
    zipf_shift: float = 2.7
    mean_doc_length: float = 180.0
    doc_length_sigma: float = 0.6
    min_doc_length: int = 8
    max_doc_length: int = 4_000
    quality_alpha: float = 1.0
    quality_beta: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        require_int_in_range(self.n_docs, "n_docs", low=1)
        require_int_in_range(self.vocab_size, "vocab_size", low=1)
        require_positive(self.zipf_exponent, "zipf_exponent")
        require_in_range(self.zipf_shift, "zipf_shift", low=0.0)
        require_positive(self.mean_doc_length, "mean_doc_length")
        require_positive(self.doc_length_sigma, "doc_length_sigma")
        require_int_in_range(self.min_doc_length, "min_doc_length", low=1)
        require_int_in_range(self.max_doc_length, "max_doc_length", low=self.min_doc_length)
        require_positive(self.quality_alpha, "quality_alpha")
        require_positive(self.quality_beta, "quality_beta")
        require(
            self.mean_doc_length >= self.min_doc_length,
            "mean_doc_length must be >= min_doc_length",
        )


def _sample_doc_lengths(config: CorpusConfig, rng: np.random.Generator) -> np.ndarray:
    """Lognormal document lengths with the configured mean, clipped."""
    sigma = config.doc_length_sigma
    # E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2)  =>  solve for mu.
    mu = np.log(config.mean_doc_length) - sigma * sigma / 2.0
    lengths = rng.lognormal(mean=mu, sigma=sigma, size=config.n_docs)
    lengths = np.clip(np.rint(lengths), config.min_doc_length, config.max_doc_length)
    return lengths.astype(np.int64)


def _sample_static_ranks(config: CorpusConfig, rng: np.random.Generator) -> np.ndarray:
    """Descending quality scores in (0, 1]; doc id = quality rank."""
    quality = rng.beta(config.quality_alpha, config.quality_beta, size=config.n_docs)
    quality = np.sort(quality)[::-1]
    # Avoid exact zeros so score bounds stay strictly positive.
    return np.maximum(quality, 1e-9)


def generate_corpus(
    config: Optional[CorpusConfig] = None,
    rng: Optional[np.random.Generator] = None,
    batch_docs: int = 16_384,
) -> Corpus:
    """Generate a synthetic corpus per ``config``.

    Documents are produced in batches to bound peak memory. Each batch
    samples its token stream from the Zipf model and reduces it to sorted
    unique (doc, term, frequency) triples with one vectorized
    sort + run-length encoding pass.
    """
    config = config or CorpusConfig()
    rng = rng or make_rng(config.seed)
    require_int_in_range(batch_docs, "batch_docs", low=1)

    zipf = ZipfMandelbrot(config.vocab_size, config.zipf_exponent, config.zipf_shift)
    doc_lengths = _sample_doc_lengths(config, rng)
    static_ranks = _sample_static_ranks(config, rng)

    postings_per_doc = np.zeros(config.n_docs, dtype=np.int64)
    term_chunks: List[np.ndarray] = []
    freq_chunks: List[np.ndarray] = []

    for batch_start in range(0, config.n_docs, batch_docs):
        batch_end = min(batch_start + batch_docs, config.n_docs)
        batch_lengths = doc_lengths[batch_start:batch_end]
        tokens = zipf.sample(rng, int(batch_lengths.sum()))
        doc_of_token = np.repeat(
            np.arange(batch_end - batch_start, dtype=np.int64), batch_lengths
        )
        # Sort (doc, term) pairs, then run-length encode the runs of equal
        # pairs: run starts mark the unique postings, run lengths are the
        # in-document term frequencies.
        order = np.lexsort((tokens, doc_of_token))
        sorted_docs = doc_of_token[order]
        sorted_tokens = tokens[order]
        is_run_start = np.empty(sorted_tokens.shape[0], dtype=bool)
        if is_run_start.size:
            is_run_start[0] = True
            is_run_start[1:] = (sorted_tokens[1:] != sorted_tokens[:-1]) | (
                sorted_docs[1:] != sorted_docs[:-1]
            )
        run_starts = np.nonzero(is_run_start)[0]
        run_ends = np.append(run_starts[1:], sorted_tokens.shape[0])
        term_chunks.append(sorted_tokens[run_starts])
        freq_chunks.append(run_ends - run_starts)
        np.add.at(postings_per_doc[batch_start:batch_end], sorted_docs[run_starts], 1)

    offsets = np.zeros(config.n_docs + 1, dtype=np.int64)
    np.cumsum(postings_per_doc, out=offsets[1:])
    terms = (
        np.concatenate(term_chunks) if term_chunks else np.empty(0, dtype=np.int64)
    )
    freqs = (
        np.concatenate(freq_chunks) if freq_chunks else np.empty(0, dtype=np.int64)
    )
    return Corpus(
        doc_lengths=doc_lengths,
        static_ranks=static_ranks,
        offsets=offsets,
        terms=terms,
        freqs=freqs,
        vocab_size=config.vocab_size,
    )

"""Corpus summary statistics (used by experiment E1's characteristics table)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.documents import Corpus
from repro.util.tables import Table


@dataclass(frozen=True)
class CorpusStats:
    """Summary statistics of a corpus shard."""

    n_docs: int
    vocab_size: int
    n_postings: int
    total_tokens: int
    mean_doc_length: float
    median_doc_length: float
    p99_doc_length: float
    mean_unique_terms: float
    max_posting_list: int
    mean_posting_list: float
    median_posting_list: float
    top10_posting_share: float
    mean_static_rank: float

    def to_table(self) -> Table:
        table = Table(["metric", "value"], title="Corpus characteristics")
        table.add_row(["documents", self.n_docs])
        table.add_row(["vocabulary size", self.vocab_size])
        table.add_row(["postings (doc,term pairs)", self.n_postings])
        table.add_row(["total tokens", self.total_tokens])
        table.add_row(["mean doc length", self.mean_doc_length])
        table.add_row(["median doc length", self.median_doc_length])
        table.add_row(["p99 doc length", self.p99_doc_length])
        table.add_row(["mean unique terms/doc", self.mean_unique_terms])
        table.add_row(["longest posting list", self.max_posting_list])
        table.add_row(["mean posting list", self.mean_posting_list])
        table.add_row(["median posting list", self.median_posting_list])
        table.add_row(["top-10-term posting share", self.top10_posting_share])
        table.add_row(["mean static rank", self.mean_static_rank])
        return table


def corpus_stats(corpus: Corpus) -> CorpusStats:
    """Compute :class:`CorpusStats` for ``corpus``."""
    df = corpus.document_frequencies()
    nonzero_df = df[df > 0]
    unique_per_doc = np.diff(corpus.offsets)
    top10_share = (
        float(np.sort(df)[::-1][:10].sum()) / float(corpus.n_postings)
        if corpus.n_postings
        else 0.0
    )
    return CorpusStats(
        n_docs=corpus.n_docs,
        vocab_size=corpus.vocab_size,
        n_postings=corpus.n_postings,
        total_tokens=corpus.total_tokens,
        mean_doc_length=float(corpus.doc_lengths.mean()),
        median_doc_length=float(np.median(corpus.doc_lengths)),
        p99_doc_length=float(np.percentile(corpus.doc_lengths, 99)),
        mean_unique_terms=float(unique_per_doc.mean()),
        max_posting_list=int(df.max()) if df.size else 0,
        mean_posting_list=float(nonzero_df.mean()) if nonzero_df.size else 0.0,
        median_posting_list=float(np.median(nonzero_df)) if nonzero_df.size else 0.0,
        top10_posting_share=top10_share,
        mean_static_rank=float(corpus.static_ranks.mean()),
    )

"""Topical corpus generation: correlated term co-occurrence.

The default synthetic corpus draws every token independently from one
Zipf distribution, which makes term *co-occurrence* purely a product of
popularities. Real web text is topical: terms cluster, so conjunctive
queries whose terms share a topic match far more often than independence
predicts. This module provides a latent-topic generative model:

* ``n_topics`` topics, each owning a ``topic_vocab`` -sized slice of the
  vocabulary (sampled by global popularity, so topics share head terms
  and split the torso/tail) with its own within-topic Zipf ranking;
* every document mixes one or two topics plus a global background:
  tokens come from the document's topics with probability
  ``topical_fraction`` and from the background Zipf otherwise;
* :class:`TopicalQueryGenerator` (in :mod:`repro.workloads.topical`)
  draws a query's terms from a single topic, modeling users asking about
  *something* rather than about independent random words.

Experiment E16 uses this model to check that the paper's conclusions
survive realistic co-occurrence structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.corpus.documents import Corpus
from repro.corpus.generator import (
    CorpusConfig,
    _sample_doc_lengths,
    _sample_static_ranks,
)
from repro.text.zipf import ZipfMandelbrot
from repro.util.rng import make_rng
from repro.util.validation import require, require_in_range, require_int_in_range


@dataclass(frozen=True)
class TopicModelConfig:
    """Latent-topic structure layered on a :class:`CorpusConfig`."""

    n_topics: int = 40
    topic_vocab: int = 2_000
    topical_fraction: float = 0.7
    two_topic_fraction: float = 0.3
    topic_zipf_exponent: float = 1.1

    def __post_init__(self) -> None:
        require_int_in_range(self.n_topics, "n_topics", low=1)
        require_int_in_range(self.topic_vocab, "topic_vocab", low=2)
        require_in_range(
            self.topical_fraction, "topical_fraction", low=0.0, high=1.0
        )
        require_in_range(
            self.two_topic_fraction, "two_topic_fraction", low=0.0, high=1.0
        )
        require(self.topic_zipf_exponent > 0, "topic_zipf_exponent must be > 0")


class TopicModel:
    """Materialized topics: term slices and within-topic distributions."""

    def __init__(
        self,
        config: TopicModelConfig,
        vocab_size: int,
        background: ZipfMandelbrot,
        rng: np.random.Generator,
    ) -> None:
        require_int_in_range(vocab_size, "vocab_size", low=config.topic_vocab)
        self.config = config
        self.vocab_size = vocab_size
        self.background = background
        # Each topic samples its vocabulary *by global popularity* (so
        # topics overlap on head terms) and ranks it randomly within the
        # topic, giving every topic distinctive mid-frequency terms.
        self.topic_terms = np.empty(
            (config.n_topics, config.topic_vocab), dtype=np.int64
        )
        for topic in range(config.n_topics):
            draws = background.sample(rng, config.topic_vocab * 3)
            unique = np.unique(draws)
            if unique.shape[0] < config.topic_vocab:
                # Top up with uniform draws over the vocabulary.
                extra = rng.choice(
                    vocab_size, size=config.topic_vocab * 2, replace=False
                )
                unique = np.unique(np.concatenate([unique, extra]))
            selected = rng.permutation(unique)[: config.topic_vocab]
            self.topic_terms[topic] = selected
        self.topic_distribution = ZipfMandelbrot(
            config.topic_vocab, config.topic_zipf_exponent, 1.0
        )

    @property
    def n_topics(self) -> int:
        return self.config.n_topics

    def sample_topic_terms(
        self, topic: int, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """Draw ``n`` term ids from one topic's distribution."""
        require_int_in_range(topic, "topic", low=0, high=self.n_topics - 1)
        ranks = self.topic_distribution.sample(rng, n)
        return self.topic_terms[topic][ranks]

    def sample_document_topics(self, rng: np.random.Generator) -> Tuple[int, ...]:
        """One or two topics for a document."""
        first = int(rng.integers(self.n_topics))
        if self.n_topics > 1 and rng.random() < self.config.two_topic_fraction:
            second = int(rng.integers(self.n_topics))
            if second != first:
                return (first, second)
        return (first,)


def generate_topical_corpus(
    corpus_config: Optional[CorpusConfig] = None,
    topic_config: Optional[TopicModelConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Corpus, TopicModel]:
    """Generate a corpus with latent-topic co-occurrence structure.

    Returns the corpus together with its :class:`TopicModel`, which a
    :class:`~repro.workloads.topical.TopicalQueryGenerator` needs to
    produce matching (topic-coherent) queries.
    """
    corpus_config = corpus_config or CorpusConfig()
    topic_config = topic_config or TopicModelConfig()
    rng = rng or make_rng(corpus_config.seed)

    background = ZipfMandelbrot(
        corpus_config.vocab_size,
        corpus_config.zipf_exponent,
        corpus_config.zipf_shift,
    )
    model = TopicModel(topic_config, corpus_config.vocab_size, background, rng)

    doc_lengths = _sample_doc_lengths(corpus_config, rng)
    static_ranks = _sample_static_ranks(corpus_config, rng)

    offsets = np.zeros(corpus_config.n_docs + 1, dtype=np.int64)
    term_chunks: List[np.ndarray] = []
    freq_chunks: List[np.ndarray] = []
    count = 0
    topical_fraction = topic_config.topical_fraction
    for doc_id in range(corpus_config.n_docs):
        length = int(doc_lengths[doc_id])
        topics = model.sample_document_topics(rng)
        from_topics = int(np.round(topical_fraction * length))
        tokens = []
        if from_topics:
            per_topic = np.array_split(np.arange(from_topics), len(topics))
            for topic, share in zip(topics, per_topic):
                if share.size:
                    tokens.append(
                        model.sample_topic_terms(topic, rng, int(share.size))
                    )
        if length - from_topics:
            tokens.append(background.sample(rng, length - from_topics))
        all_tokens = np.concatenate(tokens)
        unique_terms, frequencies = np.unique(all_tokens, return_counts=True)
        term_chunks.append(unique_terms)
        freq_chunks.append(frequencies)
        count += unique_terms.shape[0]
        offsets[doc_id + 1] = count

    corpus = Corpus(
        doc_lengths=doc_lengths,
        static_ranks=static_ranks,
        offsets=offsets,
        terms=np.concatenate(term_chunks),
        freqs=np.concatenate(freq_chunks),
        vocab_size=corpus_config.vocab_size,
    )
    return corpus, model

"""Corpus container: documents stored columnar, ordered by static rank.

The corpus follows the index-serving-node convention from the paper's
setting: *document id equals static-rank position*. Doc 0 is the highest
static-rank (highest prior quality) document; posting lists built from
this corpus are therefore automatically ordered by decreasing static
rank, which is what makes early termination effective — once the top-k
heap is full of good documents, the remaining (lower-rank) docs can be
bounded away.

Storage is CSR-style: per-document unique (term, frequency) pairs in flat
numpy arrays, with an offsets array delimiting each document's slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import CorpusError


@dataclass(frozen=True)
class Document:
    """A lightweight view of one document in a :class:`Corpus`."""

    doc_id: int
    length: int
    static_rank: float
    term_ids: np.ndarray  # unique term ids present in the doc
    term_freqs: np.ndarray  # parallel array of in-document frequencies

    @property
    def n_unique_terms(self) -> int:
        return int(self.term_ids.shape[0])

    def term_frequency(self, term_id: int) -> int:
        """Frequency of ``term_id`` in this document (0 if absent)."""
        idx = np.searchsorted(self.term_ids, term_id)
        if idx < self.term_ids.shape[0] and self.term_ids[idx] == term_id:
            return int(self.term_freqs[idx])
        return 0


class Corpus:
    """Columnar document collection ordered by static rank.

    Parameters
    ----------
    doc_lengths:
        Total token count per document.
    static_ranks:
        Prior quality score per document; must be non-increasing in
        document id (doc id is the static-rank position).
    offsets:
        CSR offsets into ``terms`` / ``freqs``; ``offsets[d]:offsets[d+1]``
        is document ``d``'s slice. Term ids within a slice are sorted.
    terms, freqs:
        Flat unique-term ids and frequencies for all documents.
    vocab_size:
        Size of the vocabulary the term ids are drawn from.
    """

    def __init__(
        self,
        doc_lengths: np.ndarray,
        static_ranks: np.ndarray,
        offsets: np.ndarray,
        terms: np.ndarray,
        freqs: np.ndarray,
        vocab_size: int,
    ) -> None:
        n_docs = int(doc_lengths.shape[0])
        if n_docs == 0:
            raise CorpusError("corpus must contain at least one document")
        if static_ranks.shape[0] != n_docs:
            raise CorpusError("static_ranks length must match doc_lengths")
        if offsets.shape[0] != n_docs + 1:
            raise CorpusError("offsets must have n_docs + 1 entries")
        if terms.shape[0] != freqs.shape[0]:
            raise CorpusError("terms and freqs must be parallel arrays")
        if int(offsets[-1]) != terms.shape[0]:
            raise CorpusError("offsets[-1] must equal len(terms)")
        if np.any(np.diff(static_ranks) > 1e-12):
            raise CorpusError("static_ranks must be non-increasing in doc id")
        if vocab_size < 1:
            raise CorpusError("vocab_size must be >= 1")
        if terms.shape[0] and (terms.min() < 0 or terms.max() >= vocab_size):
            raise CorpusError("term ids must lie in [0, vocab_size)")

        self.doc_lengths = np.ascontiguousarray(doc_lengths, dtype=np.int64)
        self.static_ranks = np.ascontiguousarray(static_ranks, dtype=np.float64)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.terms = np.ascontiguousarray(terms, dtype=np.int64)
        self.freqs = np.ascontiguousarray(freqs, dtype=np.int64)
        self.vocab_size = int(vocab_size)

    @property
    def n_docs(self) -> int:
        return int(self.doc_lengths.shape[0])

    @property
    def n_postings(self) -> int:
        """Total number of (doc, unique-term) pairs."""
        return int(self.terms.shape[0])

    @property
    def total_tokens(self) -> int:
        return int(self.doc_lengths.sum())

    @property
    def average_doc_length(self) -> float:
        return float(self.doc_lengths.mean())

    def __len__(self) -> int:
        return self.n_docs

    def document(self, doc_id: int) -> Document:
        """Materialize a :class:`Document` view for ``doc_id``."""
        if not 0 <= doc_id < self.n_docs:
            raise CorpusError(f"doc_id {doc_id} outside [0, {self.n_docs})")
        start, end = int(self.offsets[doc_id]), int(self.offsets[doc_id + 1])
        return Document(
            doc_id=doc_id,
            length=int(self.doc_lengths[doc_id]),
            static_rank=float(self.static_ranks[doc_id]),
            term_ids=self.terms[start:end],
            term_freqs=self.freqs[start:end],
        )

    def __iter__(self) -> Iterator[Document]:
        for doc_id in range(self.n_docs):
            yield self.document(doc_id)

    def doc_slice(self, doc_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return (term_ids, freqs) arrays for ``doc_id`` without wrapping."""
        start, end = int(self.offsets[doc_id]), int(self.offsets[doc_id + 1])
        return self.terms[start:end], self.freqs[start:end]

    def document_frequencies(self) -> np.ndarray:
        """Number of documents containing each term (length ``vocab_size``)."""
        df = np.zeros(self.vocab_size, dtype=np.int64)
        np.add.at(df, self.terms, 1)
        return df

    def __repr__(self) -> str:
        return (
            f"Corpus(n_docs={self.n_docs}, vocab_size={self.vocab_size}, "
            f"n_postings={self.n_postings})"
        )

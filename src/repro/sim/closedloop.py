"""Closed-loop workload: a fixed client population with think times.

The paper's load tests are open-loop (arrivals independent of service),
which is the right model for an ISN behind a large user population — but
closed-loop load generators are common in practice and behave very
differently near saturation (they self-throttle instead of building an
unbounded queue). This runner lets both be compared on the same server
model: ``n_clients`` clients each cycle submit → wait for completion →
think (exponential) → submit again.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.policies.base import ParallelismPolicy
from repro.sim.engine import Simulator
from repro.sim.experiment import LoadPointConfig, LoadPointSummary, summarize_load_point
from repro.sim.metrics import MetricsCollector, QueryRecord
from repro.sim.oracle import ServiceOracle
from repro.sim.server import IndexServerModel
from repro.util.rng import RngFactory
from repro.util.validation import require, require_in_range, require_int_in_range, require_positive


@dataclass(frozen=True)
class ClosedLoopConfig:
    """Closed-loop load-point parameters."""

    n_clients: int = 32
    think_time: float = 0.01  # mean think time (seconds, exponential)
    duration: float = 20.0
    warmup: float = 4.0
    n_cores: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        require_int_in_range(self.n_clients, "n_clients", low=1)
        require_in_range(self.think_time, "think_time", low=0.0)
        require_positive(self.duration, "duration")
        require(0 <= self.warmup < self.duration, "need 0 <= warmup < duration")
        require_int_in_range(self.n_cores, "n_cores", low=1)


def run_closed_loop_point(
    oracle: ServiceOracle,
    policy: ParallelismPolicy,
    config: ClosedLoopConfig,
) -> LoadPointSummary:
    """Simulate a closed-loop load point and summarize it.

    Clients stop issuing new queries at the horizon; in-flight queries
    drain so tail statistics are not censored.
    """
    # Position-independent child streams (see util/rng.py docstring).
    streams = RngFactory(config.seed)
    think_rng = streams.stream("think")
    sample_rng = streams.stream("sample")

    simulator = Simulator()
    metrics = MetricsCollector(config.warmup, config.duration, config.n_cores)
    n_queries = oracle.n_queries

    def submit_for(client_id: int) -> None:
        if simulator.now > config.duration:
            return
        server.submit(int(sample_rng.integers(n_queries)), tag=client_id)

    def on_complete(record: QueryRecord, tag) -> None:
        think = (
            float(think_rng.exponential(config.think_time))
            if config.think_time > 0
            else 0.0
        )
        simulator.schedule(think, lambda: submit_for(tag))

    server = IndexServerModel(
        simulator,
        oracle,
        policy,
        config.n_cores,
        metrics,
        on_query_complete=on_complete,
    )

    for client_id in range(config.n_clients):
        # Stagger initial submissions across one mean think time so the
        # population does not arrive as a synchronized burst.
        offset = (
            float(think_rng.uniform(0.0, config.think_time))
            if config.think_time > 0
            else 0.0
        )
        simulator.schedule(offset, lambda c=client_id: submit_for(c))

    simulator.run()

    queue_delays = metrics.queue_delays()
    achieved_rate = metrics.throughput()
    offered = achieved_rate * oracle.mean_sequential_latency() / config.n_cores
    shim = LoadPointConfig(
        rate=max(achieved_rate, 1e-12),
        duration=config.duration,
        warmup=config.warmup,
        n_cores=config.n_cores,
        seed=config.seed,
    )
    return summarize_load_point(metrics, policy, shim, offered, queue_delays)

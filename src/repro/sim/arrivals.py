"""Arrival processes for the open-loop workload.

All processes expose one method, :meth:`ArrivalProcess.next_interarrival`,
returning the time to the next arrival. Provided models:

* :class:`PoissonArrivals` — the paper's primary load model (open-loop
  Poisson, as produced by a large population of independent users);
* :class:`DeterministicArrivals` — fixed spacing, for tests;
* :class:`MMPP2Arrivals` — a 2-state Markov-modulated Poisson process
  modeling bursty traffic (the robustness experiment);
* :class:`TraceArrivals` — replay of explicit timestamps.
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.util.validation import require, require_positive


class ArrivalProcess(abc.ABC):
    """Generates successive inter-arrival times (seconds)."""

    @abc.abstractmethod
    def next_interarrival(self) -> float:
        """Time until the next arrival; ``inf`` when the stream ends."""

    def reset(self) -> None:  # pragma: no cover - optional override
        """Restart the stream (only meaningful for finite traces)."""


class PoissonArrivals(ArrivalProcess):
    """Exponential inter-arrivals at a fixed rate (queries/second)."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        require_positive(rate, "rate")
        self.rate = float(rate)
        self._rng = rng

    def next_interarrival(self) -> float:
        return float(self._rng.exponential(1.0 / self.rate))


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals at a fixed rate."""

    def __init__(self, rate: float) -> None:
        require_positive(rate, "rate")
        self.rate = float(rate)

    def next_interarrival(self) -> float:
        return 1.0 / self.rate


class MMPP2Arrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    The process alternates between a *low* and a *high* intensity state
    with exponentially distributed dwell times. Its mean rate is the
    dwell-weighted average of the two intensities; burstiness grows with
    the intensity ratio and dwell lengths.
    """

    def __init__(
        self,
        rate_low: float,
        rate_high: float,
        mean_dwell_low_s: float,
        mean_dwell_high_s: float,
        rng: np.random.Generator,
    ) -> None:
        require_positive(rate_low, "rate_low")
        require_positive(rate_high, "rate_high")
        require_positive(mean_dwell_low_s, "mean_dwell_low_s")
        require_positive(mean_dwell_high_s, "mean_dwell_high_s")
        require(rate_high >= rate_low, "rate_high must be >= rate_low")
        self.rate_low = float(rate_low)
        self.rate_high = float(rate_high)
        self.mean_dwell_low_s = float(mean_dwell_low_s)
        self.mean_dwell_high_s = float(mean_dwell_high_s)
        self._rng = rng
        self._in_high = False
        self._dwell_remaining_s = float(rng.exponential(mean_dwell_low_s))

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate."""
        total_s = self.mean_dwell_low_s + self.mean_dwell_high_s
        return (
            self.rate_low * self.mean_dwell_low_s
            + self.rate_high * self.mean_dwell_high_s
        ) / total_s

    @staticmethod
    def with_mean_rate(
        mean_rate: float,
        burst_ratio: float,
        mean_dwell_s: float,
        rng: np.random.Generator,
        high_fraction: float = 0.2,
    ) -> "MMPP2Arrivals":
        """Construct an MMPP2 with a target mean rate.

        ``burst_ratio`` is rate_high / rate_low; ``high_fraction`` is the
        fraction of time spent in the high state; ``mean_dwell_s`` is the
        mean high-state dwell in seconds.
        """
        require_positive(mean_rate, "mean_rate")
        require(burst_ratio >= 1.0, "burst_ratio must be >= 1")
        require(0.0 < high_fraction < 1.0, "high_fraction must be in (0, 1)")
        # mean = rl*(1-f) + rh*f with rh = ratio*rl.
        rate_low = mean_rate / ((1.0 - high_fraction) + burst_ratio * high_fraction)
        rate_high = burst_ratio * rate_low
        return MMPP2Arrivals(
            rate_low=rate_low,
            rate_high=rate_high,
            mean_dwell_low_s=mean_dwell_s * (1.0 - high_fraction) / high_fraction,
            mean_dwell_high_s=mean_dwell_s,
            rng=rng,
        )

    def _current_rate(self) -> float:
        return self.rate_high if self._in_high else self.rate_low

    def _switch(self) -> None:
        self._in_high = not self._in_high
        dwell_s = self.mean_dwell_high_s if self._in_high else self.mean_dwell_low_s
        self._dwell_remaining_s = float(self._rng.exponential(dwell_s))

    def next_interarrival(self) -> float:
        """Sample across state switches until an arrival lands."""
        elapsed = 0.0
        while True:
            candidate_s = float(self._rng.exponential(1.0 / self._current_rate()))
            # Strict inequality: regime windows are half-open
            # [switch, next_switch), so a candidate landing exactly on
            # the dwell boundary belongs to the *new* regime and must be
            # re-sampled at the new rate rather than accepted at the old
            # one. (For float exponentials the boundary has measure
            # zero, so stationary outputs are unchanged; the distinction
            # matters for deterministic regression inputs.)
            if candidate_s < self._dwell_remaining_s:
                self._dwell_remaining_s -= candidate_s
                return elapsed + candidate_s
            elapsed += self._dwell_remaining_s
            self._switch()


class NHPPArrivals(ArrivalProcess):
    """Non-homogeneous Poisson process via Lewis–Shedler thinning.

    ``rate_fn(t)`` gives the instantaneous rate; ``max_rate`` must bound
    it from above over the whole horizon (candidates are generated at
    ``max_rate`` and accepted with probability ``rate_fn(t)/max_rate``).
    Used for diurnal load patterns.
    """

    def __init__(
        self,
        rate_fn: Callable[[float], float],
        max_rate: float,
        rng: np.random.Generator,
    ) -> None:
        require_positive(max_rate, "max_rate")
        self.rate_fn = rate_fn
        self.max_rate = float(max_rate)
        self._rng = rng
        self._now = 0.0

    def next_interarrival(self) -> float:
        start = self._now
        while True:
            self._now += float(self._rng.exponential(1.0 / self.max_rate))
            rate = float(self.rate_fn(self._now))
            if rate < 0 or rate > self.max_rate * (1.0 + 1e-9):
                raise SimulationError(
                    f"rate_fn({self._now:.3f}) = {rate} outside [0, max_rate]"
                )
            if self._rng.random() < rate / self.max_rate:
                return self._now - start


def diurnal_arrivals(
    base_rate: float,
    amplitude: float,
    period_s: float,
    rng: np.random.Generator,
    phase: float = 0.0,
) -> NHPPArrivals:
    """Sinusoidal 'day/night' load: rate(t) = base * (1 + a·sin(2πt/T + φ)).

    ``amplitude`` in [0, 1); ``period_s`` is the cycle length in seconds;
    the mean rate over a full period is ``base_rate``.
    """
    require_positive(base_rate, "base_rate")
    require(0.0 <= amplitude < 1.0, "amplitude must be in [0, 1)")
    require_positive(period_s, "period_s")
    two_pi = 2.0 * np.pi

    def rate_fn(t: float) -> float:
        return base_rate * (1.0 + amplitude * np.sin(two_pi * t / period_s + phase))

    return NHPPArrivals(rate_fn, base_rate * (1.0 + amplitude), rng)


class TraceArrivals(ArrivalProcess):
    """Replays an explicit, sorted sequence of arrival timestamps."""

    def __init__(self, times: Sequence[float]) -> None:
        arr = np.asarray(times, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError("times must be a 1-D sequence")
        if arr.size and (np.any(np.diff(arr) < 0) or arr[0] < 0):
            raise ConfigurationError("times must be sorted and non-negative")
        self._times = arr
        self._cursor = 0
        self._last = 0.0

    def next_interarrival(self) -> float:
        if self._cursor >= self._times.shape[0]:
            return float("inf")
        gap = float(self._times[self._cursor] - self._last)
        self._last = float(self._times[self._cursor])
        self._cursor += 1
        if gap < 0:
            raise SimulationError("trace went backwards")
        return gap

    def reset(self) -> None:
        self._cursor = 0
        self._last = 0.0

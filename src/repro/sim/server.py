"""The simulated multicore index-serving node.

Dispatch model (mirrors the paper's system):

* arriving queries join a FIFO dispatch queue;
* whenever at least one core is free and the queue is non-empty, the
  head query is dispatched: the configured policy observes the current
  :class:`~repro.policies.base.SystemState` and requests a degree, which
  the server clamps to the cores actually free and to the measured
  degree grid;
* a degree-``p`` query occupies ``p`` cores for its measured
  degree-``p`` virtual latency (gang execution — the engine's worker
  threads span the query's lifetime);
* on completion the cores are released and dispatch continues.

The model is clock-agnostic: it touches time only through the injected
:class:`~repro.core.clock.SchedulerProtocol` (``.now`` plus
``.schedule(delay_s, callback)``). The virtual-time
:class:`~repro.sim.engine.Simulator` satisfies it for simulation; the
live runtime rehosts the *same* model on a wall-clock scheduler
(:mod:`repro.runtime.serve`) or on the manually-advanced
:class:`~repro.runtime.clock.FakeClock` in deterministic server tests.

Incremental ("few-to-many") policies yield two-phase jobs: a sequential
probe, then — if the query outlives the probe — an escalation to the
load-chosen degree using whatever cores are free at that moment.

Robustness (all opt-in; defaults reproduce the fault-free model
exactly):

* ``deadline`` — per-query SLO budget. A query is *shed at dispatch*
  when its remaining budget cannot cover its expected sequential
  service time (in particular, whenever the queue wait alone has
  consumed the budget): serving it would burn cores on an answer that
  will arrive too late anyway. The estimate is the predictor's when
  the oracle carries predictions, the true t1 otherwise.
* ``max_queue_length`` — admission cap: arrivals finding the dispatch
  queue at the cap are rejected immediately (classic load shedding).
* ``faults`` — a :class:`~repro.sim.faults.FaultSchedule`. Slowdown
  windows multiply service times at dispatch; queries dispatched inside
  a crash window are shed (the machine is down).

Shed queries never produce a :class:`QueryRecord`; they are counted by
the metrics collector and reported through ``on_query_shed`` so a
cluster aggregator can stop waiting for them.

Observability (opt-in): pass a ``tracer`` with ``enabled=True`` and
every submitted query carries a
:class:`~repro.obs.spans.QueryTraceBuilder` through its lifecycle —
enqueue, admit-or-shed, degree grant, execution phases (probe /
escalation), completion — finished traces are handed to
``tracer.on_trace``. With the default
:data:`~repro.obs.spans.NULL_TRACER` nothing is allocated and the
dispatch path is byte-for-byte the untraced one.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.core.scheduling import (
    admission_decision,
    deadline_exceeded,
    grant_degree,
    observe_state,
    plan_escalation,
    plan_initial_phase,
)
from repro.core.clock import SchedulerProtocol
from repro.errors import SimulationError
from repro.obs.spans import NULL_TRACER, QueryTraceBuilder, Tracer
from repro.policies.base import ParallelismPolicy
from repro.sim.faults import FaultSchedule
from repro.sim.metrics import MetricsCollector, QueryRecord
from repro.sim.oracle import ServiceOracle
from repro.util.validation import require_int_in_range, require_positive

#: Fired with each completed query's record and its submit tag.
CompletionHook = Callable[[QueryRecord, Any], None]
#: Fired as (query_index, tag, reason, now) when a query is dropped.
ShedHook = Callable[[int, Any, str, float], None]


class _Job:
    """In-flight query state."""

    __slots__ = (
        "query_index",
        "arrival",
        "start",
        "cores_held",
        "max_degree_used",
        "escalation_degree",
        "probe_time",
        "tag",
        "trace",
    )

    def __init__(self, query_index: int, arrival: float, tag: Any = None) -> None:
        self.query_index = query_index
        self.arrival = arrival
        self.tag = tag
        self.start: Optional[float] = None
        self.cores_held = 0
        self.max_degree_used = 0
        # Escalation plan (incremental policies only).
        self.escalation_degree: Optional[int] = None
        self.probe_time: Optional[float] = None
        # Span builder; populated only when the server's tracer is enabled.
        self.trace: Optional[QueryTraceBuilder] = None


class IndexServerModel:
    """FIFO multicore server with policy-driven intra-query parallelism."""

    def __init__(
        self,
        simulator: SchedulerProtocol,
        oracle: ServiceOracle,
        policy: ParallelismPolicy,
        n_cores: int,
        metrics: MetricsCollector,
        on_query_complete: Optional[CompletionHook] = None,
        clamp_to_plan: bool = False,
        deadline: Optional[float] = None,
        max_queue_length: Optional[int] = None,
        faults: Optional[FaultSchedule] = None,
        on_query_shed: Optional[ShedHook] = None,
        tracer: Optional[Tracer] = None,
        server_id: Optional[str] = None,
    ) -> None:
        require_int_in_range(n_cores, "n_cores", low=1)
        if deadline is not None:
            require_positive(deadline, "deadline")
        if max_queue_length is not None:
            require_int_in_range(max_queue_length, "max_queue_length", low=1)
        self.simulator = simulator
        self.oracle = oracle
        self.policy = policy
        self.n_cores = n_cores
        self.metrics = metrics
        # When set, grants are additionally capped at the query's plan
        # size (its claimable chunk count): a 2-chunk query granted 12
        # workers would strand 10 reserved cores for its whole duration.
        self.clamp_to_plan = clamp_to_plan
        # Optional hook fired with each QueryRecord and the submit tag;
        # the cluster aggregator uses it to join shard responses.
        self.on_query_complete = on_query_complete
        # Robustness knobs (None = fault-free behavior, bit-identical to
        # the original model).
        self.deadline = deadline
        self.max_queue_length = max_queue_length
        # Class-based shedding (anomaly-guard degradation): when set to a
        # collection of class labels, arrivals submitted with a matching
        # ``query_class`` are dropped at the front door with reason
        # "class". None (the default) disables the check entirely.
        self.shed_classes: Optional[Any] = None
        self.faults = faults if faults is not None and faults.has_faults else None
        # Optional hook fired as (query_index, tag, reason, now) when a
        # query is dropped; the cluster aggregator uses it to release
        # join state instead of waiting for a response that never comes.
        self.on_query_shed = on_query_shed
        # Observability (opt-in). With the default NULL_TRACER no span
        # state is allocated anywhere on the hot path.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.server_id = server_id
        self._n_submitted = 0
        self._queue: Deque[_Job] = deque()
        self.free_cores = n_cores
        self.n_running = 0
        self.n_shed = 0

    # ----------------------------------------------------------------
    # External interface
    # ----------------------------------------------------------------

    def submit(
        self, query_index: int, tag: Any = None, query_class: Optional[str] = None
    ) -> None:
        """A query arrives now. ``tag`` is opaque correlation state passed
        to ``on_query_complete`` (used by the cluster aggregator);
        ``query_class`` is an optional traffic-class label consulted by
        class-based shedding during anomaly degradation."""
        self.metrics.on_arrival()
        trace: Optional[QueryTraceBuilder] = None
        if self.tracer.enabled:
            trace = QueryTraceBuilder(
                self._n_submitted, query_index, self.simulator.now,
                server_id=self.server_id,
            )
        self._n_submitted += 1
        shed_reason = admission_decision(
            query_class, self.shed_classes, len(self._queue),
            self.max_queue_length,
        )
        if shed_reason is not None:
            self._shed(query_index, tag, self.simulator.now, shed_reason, trace)
            return
        job = _Job(query_index, self.simulator.now, tag)
        job.trace = trace
        self._queue.append(job)
        self._dispatch()

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # ----------------------------------------------------------------
    # Dispatch
    # ----------------------------------------------------------------

    def _shed(
        self,
        query_index: int,
        tag: Any,
        arrival: float,
        reason: str,
        trace: Optional[QueryTraceBuilder] = None,
    ) -> None:
        """Drop a query without serving it."""
        self.n_shed += 1
        self.metrics.on_shed(arrival, reason)
        if trace is not None:
            self.tracer.on_trace(trace.shed(self.simulator.now, reason))
        if self.on_query_shed is not None:
            self.on_query_shed(query_index, tag, reason, self.simulator.now)

    def _dispatch(self) -> None:
        shed_this_cycle = False
        while self._queue and self.free_cores >= 1:
            job = self._queue.popleft()
            now = self.simulator.now
            # A query is not worth serving once its remaining budget
            # cannot cover its expected service time (a negative
            # prediction degrades to wait-only shedding).
            if self.deadline is not None:
                expected = self.oracle.expected_sequential_latency(job.query_index)
                if deadline_exceeded(now, job.arrival, self.deadline, expected):
                    self._shed(job.query_index, job.tag, job.arrival, "deadline",
                               job.trace)
                    shed_this_cycle = True
                    continue
            # A crashed server answers nothing until it recovers.
            if self.faults is not None and self.faults.crashed_at(now):
                self._shed(job.query_index, job.tag, job.arrival, "fault",
                           job.trace)
                shed_this_cycle = True
                continue
            state = observe_state(
                now=now,
                n_queued=len(self._queue),
                n_running=self.n_running,
                free_cores=self.free_cores,
                n_cores=self.n_cores,
                n_shed=self.n_shed,
                shed_this_cycle=shed_this_cycle,
                max_queue_length=self.max_queue_length,
            )
            info = self.oracle.info(job.query_index)
            requested = self.policy.choose_degree(state, info)
            granted = grant_degree(
                requested,
                self.free_cores,
                self.oracle.clamp_degree,
                self.oracle.plan_chunk_limit(job.query_index)
                if self.clamp_to_plan
                else None,
            )
            job.start = self.simulator.now
            if job.trace is not None:
                job.trace.degree_granted(
                    self.simulator.now, requested=requested, granted=granted,
                    free_cores=self.free_cores,
                )
            self.n_running += 1

            slowdown = (
                self.faults.multiplier_at(now) if self.faults is not None else 1.0
            )
            probe = getattr(self.policy, "probe_time", None)
            t1 = self.oracle.sequential_latency(job.query_index)
            # Incremental policies (probe set) start sequentially;
            # queries that outlive the probe carry an escalation plan.
            plan = plan_initial_phase(
                granted, probe, t1,
                lambda d: self.oracle.latency(job.query_index, d),
                slowdown,
            )
            job.probe_time = plan.probe_time
            job.escalation_degree = plan.escalation_degree
            self._start_phase(job, degree=plan.degree,
                              duration=plan.duration, kind=plan.kind)

    def _start_phase(
        self, job: _Job, degree: int, duration: float, kind: str = "gang"
    ) -> None:
        if degree > self.free_cores:
            raise SimulationError(
                f"phase needs {degree} cores but only {self.free_cores} free"
            )
        if duration < 0:
            raise SimulationError(f"negative phase duration {duration}")
        self.free_cores -= degree
        job.cores_held = degree
        job.max_degree_used = max(job.max_degree_used, degree)
        now = self.simulator.now
        if job.trace is not None:
            job.trace.phase_started(now, degree, kind)
        self.metrics.on_core_usage(now, now + duration, degree)
        self.simulator.schedule(duration, lambda: self._phase_end(job))

    def _phase_end(self, job: _Job) -> None:
        self.free_cores += job.cores_held
        job.cores_held = 0
        if job.trace is not None:
            job.trace.phase_ended(self.simulator.now)
        if job.escalation_degree is not None:
            self._escalate(job)
        else:
            self._complete(job)
        self._dispatch()

    def _escalate(self, job: _Job) -> None:
        """The probe elapsed and the query is still running: widen it."""
        target = job.escalation_degree
        probe = job.probe_time
        job.escalation_degree = None
        job.probe_time = None
        t1 = self.oracle.sequential_latency(job.query_index)
        slowdown = (
            self.faults.multiplier_at(self.simulator.now)
            if self.faults is not None
            else 1.0
        )
        plan = plan_escalation(
            target, probe, t1, self.free_cores,
            self.oracle.clamp_degree,
            lambda d: self.oracle.latency(job.query_index, d),
            slowdown,
        )
        if job.trace is not None:
            job.trace.escalated(self.simulator.now, target=target,
                                actual=plan.degree)
        self._start_phase(job, degree=plan.degree, duration=plan.duration,
                          kind=plan.kind)

    def _complete(self, job: _Job) -> None:
        self.n_running -= 1
        if self.n_running < 0 or not 0 <= self.free_cores <= self.n_cores:
            raise SimulationError("core accounting went inconsistent")
        record = QueryRecord(
            query_index=job.query_index,
            arrival=job.arrival,
            start=float(job.start if job.start is not None else job.arrival),
            completion=self.simulator.now,
            degree=job.max_degree_used,
        )
        self.metrics.on_completion(record)
        if job.trace is not None:
            self.tracer.on_trace(job.trace.completed(self.simulator.now))
        if self.on_query_complete is not None:
            self.on_query_complete(record, job.tag)

"""One simulated load point: drive arrivals into the server, summarize.

:func:`run_load_point` wires workload → server → metrics for a single
(policy, arrival-process) combination and returns a
:class:`LoadPointSummary`. Load sweeps in the harness call it per rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.registry import RunObserver
from repro.policies.base import ParallelismPolicy
from repro.sim.arrivals import ArrivalProcess, PoissonArrivals
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsCollector, QueryRecord
from repro.sim.oracle import ServiceOracle
from repro.sim.server import IndexServerModel
from repro.util.rng import RngFactory
from repro.util.validation import require, require_int_in_range, require_positive


@dataclass(frozen=True)
class LoadPointConfig:
    """Parameters of one simulated load point."""

    rate: float  # mean arrival rate (QPS); ignored if `arrivals` is given
    duration: float = 30.0  # simulated horizon (seconds)
    warmup: float = 5.0  # stats discarded before this time
    n_cores: int = 12
    seed: int = 0
    #: Cap grants at the query's plan size (see IndexServerModel).
    clamp_to_plan: bool = False
    #: Per-query SLO budget; queries whose queue wait exhausts it are
    #: shed at dispatch. None = run every query to completion.
    deadline: Optional[float] = None
    #: Admission cap on the dispatch queue; arrivals beyond it are
    #: rejected. None = unbounded queue.
    max_queue_length: Optional[int] = None
    #: SLO bar for goodput / attainment *measurement only* (no
    #: shedding). Defaults to ``deadline`` when that is set; setting
    #: ``slo`` alone measures how a run without shedding would have
    #: scored against the same bar.
    slo: Optional[float] = None

    def __post_init__(self) -> None:
        require_positive(self.rate, "rate")
        require_positive(self.duration, "duration")
        require(0 <= self.warmup < self.duration, "need 0 <= warmup < duration")
        require_int_in_range(self.n_cores, "n_cores", low=1)
        if self.deadline is not None:
            require_positive(self.deadline, "deadline")
        if self.max_queue_length is not None:
            require_int_in_range(self.max_queue_length, "max_queue_length", low=1)
        if self.slo is not None:
            require_positive(self.slo, "slo")


@dataclass(frozen=True)
class LoadPointSummary:
    """Measured statistics of one load point."""

    policy: str
    rate: float
    n_cores: int
    offered_utilization: float  # rate * E[t1] / cores (sequential work)
    observed: int
    throughput: float
    utilization: float
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    mean_queue_delay: float
    mean_degree: float
    degree_histogram: Dict[int, float] = field(default_factory=dict)
    # Robustness statistics (meaningful only when a deadline and/or
    # admission cap is configured; zeros / NaN otherwise).
    n_shed: int = 0
    shed_rate: float = 0.0
    goodput: float = float("nan")  # in-SLO completions/sec
    slo_attainment: float = float("nan")  # fraction of demand in SLO
    deadline: Optional[float] = None

    @property
    def saturated(self) -> bool:
        """Heuristic: the point is past capacity if measured throughput
        lags the offered rate by more than 5%."""
        return self.throughput < 0.95 * self.rate


def run_load_point(
    oracle: ServiceOracle,
    policy: ParallelismPolicy,
    config: LoadPointConfig,
    arrivals: Optional[ArrivalProcess] = None,
    observer: Optional[RunObserver] = None,
    controllers: Sequence[object] = (),
    query_sampler: Optional[object] = None,
) -> LoadPointSummary:
    """Simulate one load point and summarize it.

    ``observer`` (opt-in) attaches the observability layer: per-query
    span traces via the observer's tracer, plus a metric timeline
    sampled on a virtual-time ticker. Observation is read-only — a
    traced run produces a summary bit-identical to an untraced one.

    ``controllers`` (opt-in) are online control loops — objects with an
    ``attach(simulator, server, collector, horizon_s)`` method, e.g.
    :class:`~repro.policies.online.OnlineDegreeController` or
    :class:`~repro.sim.anomaly.AnomalyGuard` — scheduled onto the run's
    simulator before arrivals start. Unlike observers they *may* mutate
    policy/server knobs at runtime; with the default empty tuple the
    run is bit-identical to the pre-control code path.

    ``query_sampler`` (opt-in) maps each arrival's traffic class (the
    arrival process's ``last_class`` attribute, e.g. from
    :class:`~repro.sim.traffic.RegimeTraffic`) to a query index via its
    ``sample(arrival_class)`` method, replacing the uniform draw from
    the run's ``sample`` stream. Class labels also flow into
    ``server.submit(query_class=...)`` for class-based shedding.
    """
    # Position-independent child streams (see util/rng.py docstring).
    streams = RngFactory(config.seed)
    arrival_rng = streams.stream("arrivals")
    sample_rng = streams.stream("sample")
    if arrivals is None:
        arrivals = PoissonArrivals(config.rate, arrival_rng)

    simulator = Simulator()
    metrics = MetricsCollector(config.warmup, config.duration, config.n_cores)
    server = IndexServerModel(
        simulator, oracle, policy, config.n_cores, metrics,
        clamp_to_plan=config.clamp_to_plan,
        deadline=config.deadline,
        max_queue_length=config.max_queue_length,
        tracer=observer.tracer if observer is not None else None,
    )
    if observer is not None:
        observer.on_run_start(
            policy=policy.name, rate=config.rate, duration=config.duration,
            warmup=config.warmup, n_cores=config.n_cores, seed=config.seed,
        )
        observer.attach(simulator, server, metrics, horizon_s=config.duration)
    for controller in controllers:
        controller.attach(simulator, server, metrics, horizon_s=config.duration)

    n_queries = oracle.n_queries

    def arrive() -> None:
        # The class label belongs to the arrival scheduled by the most
        # recent next_interarrival() call — read it before schedule_next
        # overwrites it with the following arrival's label.
        arrival_class = getattr(arrivals, "last_class", None)
        if query_sampler is not None:
            query_index = int(query_sampler.sample(arrival_class))
        else:
            query_index = int(sample_rng.integers(n_queries))
        server.submit(query_index, query_class=arrival_class)
        schedule_next()

    def schedule_next() -> None:
        gap = arrivals.next_interarrival()
        if math.isinf(gap):
            return
        # Stop generating arrivals at the horizon; queries already in
        # flight drain below so the slow tail is never censored.
        if simulator.now + gap > config.duration:
            return
        simulator.schedule(gap, arrive)

    schedule_next()
    simulator.run(until_s=config.duration)
    # Drain in-flight work (bounded, so an overloaded point cannot spin
    # forever: past 9x the horizon the remaining jobs are dropped from
    # the statistics — they only exist in deeply saturated sweeps).
    drain_limit = config.duration * 10.0
    while (
        server.n_running or server.queue_length
    ) and simulator.now < drain_limit and simulator.pending_events:
        simulator.step()
    if observer is not None:
        observer.finish()

    queue_delays = metrics.queue_delays()
    offered = config.rate * oracle.mean_sequential_latency() / config.n_cores
    return summarize_load_point(metrics, policy, config, offered, queue_delays)


def summarize_load_point(
    metrics: MetricsCollector,
    policy: ParallelismPolicy,
    config: LoadPointConfig,
    offered: float,
    queue_delays: np.ndarray,
) -> LoadPointSummary:
    """Build a :class:`LoadPointSummary` from a finished collector.

    Public because it is the *shared* summary schema: the virtual-time
    runners here, the closed-loop runner, and the wall-clock serving
    runtime (:mod:`repro.runtime`) all report through this one function,
    so simulated and live load points are directly comparable
    field-for-field.
    """
    deadline = getattr(config, "slo", None) or getattr(config, "deadline", None)
    return LoadPointSummary(
        policy=policy.name,
        rate=config.rate,
        n_cores=config.n_cores,
        offered_utilization=offered,
        observed=metrics.n_observed,
        throughput=metrics.throughput(),
        utilization=metrics.utilization(),
        mean_latency=metrics.mean_latency(),
        p50_latency=metrics.latency_percentile(50),
        p95_latency=metrics.latency_percentile(95),
        p99_latency=metrics.latency_percentile(99),
        mean_queue_delay=float(queue_delays.mean()) if queue_delays.size else float("nan"),
        mean_degree=metrics.mean_degree(),
        degree_histogram=metrics.degree_histogram(),
        n_shed=metrics.n_shed_in_window,
        shed_rate=metrics.shed_rate(),
        goodput=metrics.goodput(deadline) if deadline is not None else float("nan"),
        slo_attainment=(
            metrics.slo_attainment(deadline) if deadline is not None else float("nan")
        ),
        deadline=deadline,
    )


def run_trace_point(
    oracle: ServiceOracle,
    policy: ParallelismPolicy,
    arrival_times: Union[Sequence[float], np.ndarray],
    query_indices: Optional[Union[Sequence[int], np.ndarray]] = None,
    n_cores: int = 12,
    warmup: float = 0.0,
) -> Tuple[LoadPointSummary, List[QueryRecord]]:
    """Replay an explicit trace: ``query_indices[i]`` (a row of the cost
    table) arrives at ``arrival_times[i]``.

    ``query_indices`` defaults to ``0..len(times)-1`` (one table row per
    arrival); passing explicit indices lets a long trace draw from a
    smaller measured query pool, as real traces repeat queries.

    Unlike :func:`run_load_point`, the request stream is fully
    deterministic, so two policies can be compared on identical inputs.
    Returns ``(summary, records)`` — the per-query records allow windowed
    (time-varying) analysis, e.g. under diurnal load.
    """
    times = np.asarray(arrival_times, dtype=np.float64)
    if query_indices is None:
        indices = np.arange(times.shape[0], dtype=np.int64)
    else:
        indices = np.asarray(query_indices, dtype=np.int64)
    if times.shape[0] != indices.shape[0]:
        raise ValueError(
            f"trace has {times.shape[0]} arrivals but {indices.shape[0]} "
            "query indices"
        )
    if times.shape[0] == 0:
        raise ValueError("trace must contain at least one arrival")
    if np.any(np.diff(times) < 0) or times[0] < 0:
        raise ValueError("arrival times must be sorted and non-negative")
    if indices.shape[0] and (
        indices.min() < 0 or indices.max() >= oracle.n_queries
    ):
        raise ValueError("query indices outside the cost table")

    horizon = float(times[-1])
    effective_horizon = max(horizon, warmup + 1e-9) + 1e-9
    simulator = Simulator()
    metrics = MetricsCollector(warmup, effective_horizon, n_cores)
    server = IndexServerModel(simulator, oracle, policy, n_cores, metrics)
    for t, qi in zip(times, indices):
        simulator.schedule_at(float(t), lambda qi=int(qi): server.submit(qi))
    simulator.run()

    queue_delays = metrics.queue_delays()
    mean_rate = times.shape[0] / effective_horizon
    offered = mean_rate * oracle.mean_sequential_latency() / n_cores
    config = LoadPointConfig(
        rate=mean_rate, duration=effective_horizon,
        warmup=warmup, n_cores=n_cores,
    )
    summary = summarize_load_point(metrics, policy, config, offered, queue_delays)
    records = sorted(metrics.records, key=lambda r: r.arrival)
    return summary, records

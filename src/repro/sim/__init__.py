"""Discrete-event simulation of a multicore index-serving node."""

from repro.sim.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    MMPP2Arrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.sim.engine import Simulator
from repro.sim.experiment import LoadPointConfig, LoadPointSummary, run_load_point
from repro.sim.faults import CRASH, ClusterFaultPlan, FaultSchedule, FaultWindow
from repro.sim.metrics import MetricsCollector
from repro.sim.oracle import ServiceOracle
from repro.sim.server import IndexServerModel

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "MMPP2Arrivals",
    "PoissonArrivals",
    "TraceArrivals",
    "Simulator",
    "LoadPointConfig",
    "LoadPointSummary",
    "run_load_point",
    "CRASH",
    "ClusterFaultPlan",
    "FaultSchedule",
    "FaultWindow",
    "MetricsCollector",
    "ServiceOracle",
    "IndexServerModel",
]

"""Online anomaly detection, SLA validation, and guarded degradation.

The online degree controller (:mod:`repro.policies.online`) keeps the
node near its tail-latency setpoint under *gradual* regime drift. This
module handles the shifts adaptation alone cannot absorb — flash
crowds, slow-query floods, query-of-death repetition — with three
cooperating pieces, patterned on the G/G/c/K + SLA-validation exemplars
from the capacity-planning literature:

* :class:`EwmaCusumDetector` — a one-sided CUSUM over standardized
  deviations from an EWMA baseline. The EWMA tracks the signal's slow
  component (diurnal drift is *normal*); the CUSUM accumulates only
  sustained positive surprise, so a step change (burst onset) alarms in
  a few windows while noise does not.
* :class:`SlaValidator` — windowed SLO attainment against an
  ``(epsilon, window)`` SLA: the window violates the SLA when more than
  ``epsilon`` of its demand (completions + sheds) missed the bar.
* :class:`AnomalyGuard` — the actuator. It samples arrival rate and
  windowed P99 each window, feeds the detectors, and walks an explicit
  degradation ladder::

      NORMAL -> DEGRADED            (cap the max degree)
             -> SHEDDING            (tighten admission, shed by class)

  Escalation climbs one rung per window, and only when a detector
  alarm and an SLA violation land in the *same* window — an anomalous
  surge the policy absorbs, or plain cost-visible overload the degree
  controller is already handling, leaves the ladder alone.
  De-escalation requires ``recovery_windows`` consecutive clean
  windows (hysteresis, so the guard does not flap at a regime edge).
  Every transition is recorded
  as an ``anomaly.*`` lifecycle event on the tracer, giving traces a
  first-class record of *when* and *why* the node degraded.

Like the controller, the guard only mutates explicit knobs (policy
degree cap, server admission cap, server shed classes) and never draws
randomness, so guarded runs stay bit-identical for a given seed.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.spans import NULL_TRACER, Tracer
from repro.policies.online import OnlineAdaptivePolicy
from repro.util.validation import (
    require,
    require_in_range,
    require_int_in_range,
    require_positive,
)


class EwmaCusumDetector:
    """One-sided CUSUM on EWMA-standardized deviations.

    ``update(x)`` folds one observation in and returns True while the
    statistic exceeds the decision threshold. The baseline mean is an
    EWMA with smoothing ``alpha``; the variance of deviations is an EWMA
    with smoothing ``alpha / 4`` (a noisy scale estimate fattens the
    standardized tails, so the scale adapts slower than the level).
    Deviations are standardized before entering the CUSUM recursion
    ``S <- max(0, S + z - k)``, so ``k`` (slack) and ``h`` (threshold)
    are in sigma units, independent of the signal's scale. The defaults
    (``k = 1``, ``h = 5``) are tuned for *regime* detection: window
    statistics shift by many sigma at a burst onset, while diurnal
    drift and sampling noise stay inside the slack.

    The statistic is additionally clamped to ``2h`` (a CUSUM ceiling):
    without it, a large shift parks ``S`` arbitrarily high and the alarm
    cannot clear for ``S/k`` windows after the signal normalizes. With
    the ceiling, recovery takes at most ``h/k`` windows once deviations
    return to baseline. The first ``warmup`` observations only train the
    baseline (no scoring): a freshly started detector has no variance
    estimate, and scoring against a cold one turns ordinary noise into
    huge standardized surprises.
    """

    def __init__(
        self, alpha: float, k: float = 1.0, h: float = 5.0, warmup: int = 8
    ) -> None:
        require_in_range(
            alpha, "alpha", low=0.0, high=1.0,
            low_inclusive=False, high_inclusive=False,
        )
        require_positive(k, "k", strict=False)
        require_positive(h, "h")
        require_int_in_range(warmup, "warmup", low=1)
        self.alpha = float(alpha)
        self.k = float(k)
        self.h = float(h)
        self.warmup = int(warmup)
        self._n_observed = 0
        self._mean: Optional[float] = None
        self._var = 0.0
        self._cusum = 0.0

    @property
    def mean(self) -> float:
        """Current EWMA baseline (nan before the first observation)."""
        return self._mean if self._mean is not None else float("nan")

    @property
    def statistic(self) -> float:
        """Current one-sided CUSUM value (sigma units)."""
        return self._cusum

    def update(self, value: float) -> bool:
        """Fold one observation in; True while the detector is alarming."""
        if not math.isfinite(value):
            return self._cusum > self.h
        if self._mean is None:
            # First observation seeds the baseline; no surprise yet.
            self._mean = float(value)
            self._n_observed = 1
            return False
        deviation = float(value) - self._mean
        var_alpha = 0.25 * self.alpha
        if self._n_observed < self.warmup:
            # Still learning the baseline: train mean/variance, no
            # scoring.
            self._n_observed += 1
            self._mean += self.alpha * deviation
            self._var = (
                (1.0 - var_alpha) * self._var
                + var_alpha * deviation * deviation
            )
            return False
        sigma = math.sqrt(self._var) if self._var > 0 else 0.0
        if sigma <= 0:
            # Constant training signal: floor the scale at a sliver of
            # the baseline level, so any genuine shift still registers
            # as a large standardized surprise.
            sigma = 1e-6 * abs(self._mean)
        if sigma > 0:
            z = deviation / sigma
        else:
            z = 0.0 if deviation == 0 else math.inf
        z = min(z, 1e6)
        self._cusum = min(max(0.0, self._cusum + z - self.k), 2.0 * self.h)
        # Baseline adapts *after* scoring, and only while not alarming —
        # otherwise a sustained attack would be absorbed into "normal".
        alarming = self._cusum > self.h
        if not alarming:
            self._mean += self.alpha * deviation
            self._var = (
                (1.0 - var_alpha) * self._var
                + var_alpha * deviation * deviation
            )
        return alarming

    def reset(self) -> None:
        """Clear the alarm accumulator (baseline estimates are kept)."""
        self._cusum = 0.0


class SlaValidator:
    """Windowed SLA check: at most ``epsilon`` of demand may miss the bar.

    ``check`` returns True when the window *meets* the SLA. Windows with
    no demand vacuously pass.
    """

    def __init__(self, slo_s: float, epsilon: float) -> None:
        require_positive(slo_s, "slo_s")
        require_in_range(
            epsilon, "epsilon", low=0.0, high=1.0, high_inclusive=False
        )
        self.slo_s = float(slo_s)
        self.epsilon = float(epsilon)

    def check(self, latencies_s: "np.ndarray", n_shed: int) -> bool:
        """Validate one window; shed queries count as SLO misses."""
        demand = int(latencies_s.size) + int(n_shed)
        if demand == 0:
            return True
        misses = int(np.count_nonzero(latencies_s > self.slo_s)) + int(n_shed)
        return misses / demand <= self.epsilon


class DegradationLevel(enum.IntEnum):
    """The guard's explicit degradation ladder (ordered by severity)."""

    NORMAL = 0
    DEGRADED = 1  # max-degree capped
    SHEDDING = 2  # + admission tightened, attack classes shed


@dataclass(frozen=True)
class AnomalyGuardConfig:
    """Detector and degradation parameters for :class:`AnomalyGuard`.

    ``slo_s`` is the SLA bar; ``sla_epsilon`` the tolerated miss
    fraction per window. ``degraded_degree_cap`` is the max-degree
    clamp installed at :data:`DegradationLevel.DEGRADED`;
    ``shedding_queue_cap`` the admission cap installed at
    :data:`DegradationLevel.SHEDDING`; ``shed_classes`` the arrival
    classes dropped at the front door while shedding (ground-truth
    labels from :mod:`repro.sim.traffic` — a deployed system would
    substitute a query-fingerprint classifier).
    """

    slo_s: float
    window_s: float
    sla_epsilon: float = 0.05
    ewma_alpha: float = 0.3
    cusum_k: float = 1.0
    cusum_h: float = 5.0
    degraded_degree_cap: int = 4
    shedding_queue_cap: int = 8
    shed_classes: Tuple[str, ...] = ()
    recovery_windows: int = 2

    def __post_init__(self) -> None:
        require_positive(self.slo_s, "slo_s")
        require_positive(self.window_s, "window_s")
        require_in_range(
            self.sla_epsilon, "sla_epsilon", low=0.0, high=1.0,
            high_inclusive=False,
        )
        require_in_range(
            self.ewma_alpha, "ewma_alpha", low=0.0, high=1.0,
            low_inclusive=False, high_inclusive=False,
        )
        require_positive(self.cusum_k, "cusum_k", strict=False)
        require_positive(self.cusum_h, "cusum_h")
        require_int_in_range(self.degraded_degree_cap, "degraded_degree_cap", low=1)
        require_int_in_range(self.shedding_queue_cap, "shedding_queue_cap", low=1)
        require_int_in_range(self.recovery_windows, "recovery_windows", low=1)
        for name in self.shed_classes:
            require(
                isinstance(name, str) and bool(name),
                f"shed_classes entries must be non-empty strings, got {name!r}",
            )


class AnomalyGuard:
    """Online anomaly detector + SLA validator driving degradation modes.

    Attach via :func:`repro.sim.experiment.run_load_point`'s
    ``controllers`` argument (the guard and the degree controller
    compose; the guard owns the degree *cap* and the admission knobs,
    the controller owns the threshold *scale*).
    """

    def __init__(
        self,
        config: AnomalyGuardConfig,
        policy: Optional[OnlineAdaptivePolicy] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.rate_detector = EwmaCusumDetector(
            config.ewma_alpha, config.cusum_k, config.cusum_h
        )
        self.p99_detector = EwmaCusumDetector(
            config.ewma_alpha, config.cusum_k, config.cusum_h
        )
        self.validator = SlaValidator(config.slo_s, config.sla_epsilon)
        self.level = DegradationLevel.NORMAL
        #: (time_s, level) history of every transition, for tests/reports.
        self.transitions: List[Tuple[float, DegradationLevel]] = []
        self._clean_windows = 0
        self._simulator: Any = None
        self._server: Any = None
        self._collector: Any = None
        self._horizon_s = 0.0
        self._record_cursor = 0
        self._shed_cursor = 0
        self._arrival_cursor = 0
        self._baseline_queue_cap: Optional[int] = None
        self._baseline_degree_cap: Optional[int] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(
        self, simulator: Any, server: Any, collector: Any, horizon_s: float
    ) -> None:
        """Schedule guard ticks on the driving simulator."""
        self._simulator = simulator
        self._server = server
        self._collector = collector
        self._horizon_s = float(horizon_s)
        self._baseline_queue_cap = server.max_queue_length
        if self.policy is not None:
            self._baseline_degree_cap = self.policy.max_degree_cap
        simulator.schedule(self.config.window_s, self._tick)

    # ------------------------------------------------------------------
    # Detection + actuation
    # ------------------------------------------------------------------

    def _window_signals(self) -> Tuple[float, "np.ndarray", int]:
        """(arrival rate qps, completion latencies, sheds) this window."""
        n_arrivals = self._collector.n_arrivals
        window_arrivals = n_arrivals - self._arrival_cursor
        self._arrival_cursor = n_arrivals
        records = self._collector.records
        fresh = records[self._record_cursor:]
        self._record_cursor = len(records)
        n_shed_total = self._collector.n_shed
        n_shed = n_shed_total - self._shed_cursor
        self._shed_cursor = n_shed_total
        latencies_s = np.asarray([r.latency for r in fresh], dtype=np.float64)
        return window_arrivals / self.config.window_s, latencies_s, n_shed

    def _set_level(self, level: DegradationLevel, now_s: float, cause: str) -> None:
        if level == self.level:
            return
        previous = self.level
        self.level = level
        self.transitions.append((now_s, level))
        # Actuate the ladder. Levels are cumulative going up and fully
        # reverted coming back down through each rung.
        if self.policy is not None and self._baseline_degree_cap is not None:
            cap = (
                self.config.degraded_degree_cap
                if level >= DegradationLevel.DEGRADED
                else self._baseline_degree_cap
            )
            self.policy.apply_control(
                max_degree_cap=min(cap, self._baseline_degree_cap)
            )
        if level >= DegradationLevel.SHEDDING:
            baseline = self._baseline_queue_cap
            self._server.max_queue_length = (
                min(self.config.shedding_queue_cap, baseline)
                if baseline is not None
                else self.config.shedding_queue_cap
            )
            self._server.shed_classes = frozenset(self.config.shed_classes)
        else:
            self._server.max_queue_length = self._baseline_queue_cap
            self._server.shed_classes = None
        if self.tracer.enabled:
            name = (
                "anomaly.degrade" if level > previous else "anomaly.recover"
            )
            self.tracer.on_lifecycle_event(
                name,
                now_s,
                {
                    "from": previous.name.lower(),
                    "to": level.name.lower(),
                    "cause": cause,
                },
            )

    def _tick(self) -> None:
        now_s = self._simulator.now
        rate_qps, latencies_s, n_shed = self._window_signals()
        rate_alarm = self.rate_detector.update(rate_qps)
        p99_s = (
            float(np.percentile(latencies_s, 99))
            if latencies_s.size
            else float("nan")
        )
        p99_alarm = self.p99_detector.update(p99_s)
        sla_ok = self.validator.check(latencies_s, n_shed)
        anomalous = rate_alarm or p99_alarm
        if self.tracer.enabled and anomalous and self.level == DegradationLevel.NORMAL:
            self.tracer.on_lifecycle_event(
                "anomaly.alarm",
                now_s,
                {
                    "rate_alarm": rate_alarm,
                    "p99_alarm": p99_alarm,
                    "rate_qps": rate_qps,
                    "p99_s": p99_s,
                },
            )
        if anomalous and not sla_ok:
            # Escalation needs BOTH signals in the same window: the
            # traffic looks anomalous (detectors) AND the node is
            # actually failing its SLA (validator). A legitimate surge
            # the adaptive policy absorbs trips the detectors but keeps
            # the SLA, so the guard stays out of the way; plain overload
            # without an anomaly is the degree controller's job. One
            # rung per window: DEGRADED first, SHEDDING if the combined
            # condition persists.
            self._clean_windows = 0
            if self.level < DegradationLevel.SHEDDING:
                self._set_level(
                    DegradationLevel(int(self.level) + 1), now_s, "anomaly+sla"
                )
        elif anomalous or not sla_ok:
            # One signal alone: hold the ladder, but no recovery credit.
            self._clean_windows = 0
        else:
            self._clean_windows += 1
            if (
                self.level > DegradationLevel.NORMAL
                and self._clean_windows >= self.config.recovery_windows
            ):
                next_level = DegradationLevel(int(self.level) - 1)
                self._set_level(next_level, now_s, "recovered")
                self._clean_windows = 0
                self.rate_detector.reset()
                self.p99_detector.reset()
        if now_s + self.config.window_s <= self._horizon_s:
            self._simulator.schedule(self.config.window_s, self._tick)


__all__ = [
    "EwmaCusumDetector",
    "SlaValidator",
    "DegradationLevel",
    "AnomalyGuardConfig",
    "AnomalyGuard",
]

"""Metrics collection for simulated load points.

Records one row per completed query (arrival, start, completion, granted
degree) plus core-busy integrals, with warmup discarding, and summarizes
into the statistics the experiments report (mean / percentile latency,
queueing delay, throughput, utilization, degree mix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np
import numpy.typing as npt

from repro.errors import SimulationError


@dataclass(frozen=True)
class QueryRecord:
    """Lifecycle of one completed query."""

    query_index: int
    arrival: float
    start: float
    completion: float
    degree: int

    @property
    def latency(self) -> float:
        return self.completion - self.arrival

    @property
    def queue_delay(self) -> float:
        return self.start - self.arrival

    @property
    def service_time(self) -> float:
        return self.completion - self.start


class MetricsCollector:
    """Accumulates query records and core-busy time within a window.

    The measurement window is ``[warmup, horizon]``; queries *arriving*
    before the warmup cutoff are excluded from latency statistics, and
    busy-core time is clipped to the window for utilization.
    """

    def __init__(self, warmup: float, horizon: float, n_cores: int) -> None:
        if warmup < 0 or horizon <= warmup:
            raise SimulationError(
                f"need 0 <= warmup < horizon, got warmup={warmup}, horizon={horizon}"
            )
        self.warmup = float(warmup)
        self.horizon = float(horizon)
        self.n_cores = int(n_cores)
        self.records: List[QueryRecord] = []
        self.busy_core_seconds = 0.0
        self.n_arrivals = 0
        self.n_completions = 0
        self.n_completed_in_window = 0
        # Robustness accounting: queries dropped without completing,
        # keyed by why (admission cap, deadline at dispatch, crashed
        # server). Window counts use the query's arrival time, matching
        # how latency records are warmup-filtered.
        self.shed_by_reason: Dict[str, int] = {}
        self.n_shed = 0
        self.n_shed_in_window = 0

    # ----------------------------------------------------------------
    # Recording (called by the server model)
    # ----------------------------------------------------------------

    def on_arrival(self) -> None:
        self.n_arrivals += 1

    def on_completion(self, record: QueryRecord) -> None:
        """Record a completion.

        Latency statistics cover every query *arriving* inside the
        window, even if it completes after the horizon (the load driver
        drains in-flight queries to avoid censoring the slow tail);
        throughput counts completions falling inside the window.
        """
        self.n_completions += 1
        if record.arrival >= self.warmup:
            self.records.append(record)
        if self.warmup <= record.completion <= self.horizon:
            self.n_completed_in_window += 1

    def on_shed(self, arrival: float, reason: str) -> None:
        """Record a query dropped without service (load shedding)."""
        self.n_shed += 1
        self.shed_by_reason[reason] = self.shed_by_reason.get(reason, 0) + 1
        if arrival >= self.warmup:
            self.n_shed_in_window += 1

    def on_core_usage(self, start_s: float, end_s: float, cores: int) -> None:
        """Account ``cores`` busy during [start_s, end_s], clipped to window."""
        lo_s = max(start_s, self.warmup)
        hi_s = min(end_s, self.horizon)
        if hi_s > lo_s:
            self.busy_core_seconds += cores * (hi_s - lo_s)

    # ----------------------------------------------------------------
    # Summaries
    # ----------------------------------------------------------------

    @property
    def window_s(self) -> float:
        """Measurement window length in seconds."""
        return self.horizon - self.warmup

    @property
    def n_observed(self) -> int:
        return len(self.records)

    def latencies(self) -> npt.NDArray[np.float64]:
        return np.asarray([r.latency for r in self.records], dtype=np.float64)

    def queue_delays(self) -> npt.NDArray[np.float64]:
        return np.asarray([r.queue_delay for r in self.records], dtype=np.float64)

    def degrees(self) -> npt.NDArray[np.int64]:
        return np.asarray([r.degree for r in self.records], dtype=np.int64)

    def latency_percentile(self, q_pct: float) -> float:
        """Latency percentile; ``q_pct`` is on the [0, 100] scale."""
        lat = self.latencies()
        if lat.size == 0:
            return float("nan")
        return float(np.percentile(lat, q_pct))

    def mean_latency(self) -> float:
        lat = self.latencies()
        return float(lat.mean()) if lat.size else float("nan")

    def throughput(self) -> float:
        """Completed queries per second inside the window."""
        return self.n_completed_in_window / self.window_s

    def utilization(self) -> float:
        """Mean fraction of cores busy inside the window."""
        return self.busy_core_seconds / (self.n_cores * self.window_s)

    def shed_rate(self) -> float:
        """Fraction of in-window demand (observed + shed) dropped."""
        demand = self.n_observed + self.n_shed_in_window
        if demand == 0:
            return 0.0
        return self.n_shed_in_window / demand

    def slo_attainment(self, deadline: float) -> float:
        """Fraction of in-window *demand* answered within ``deadline``.

        Shed queries count against attainment: a dropped query is an
        SLO miss from the client's point of view.
        """
        demand = self.n_observed + self.n_shed_in_window
        if demand == 0:
            return float("nan")
        lat = self.latencies()
        return float(np.count_nonzero(lat <= deadline)) / demand

    def goodput(self, deadline: float) -> float:
        """In-SLO completions per second inside the window.

        Unlike :meth:`throughput`, late completions do not count: under
        overload a system can stay busy finishing queries nobody is
        still waiting for, and goodput is the metric that exposes it.
        """
        in_slo = sum(
            1
            for r in self.records
            if self.warmup <= r.completion <= self.horizon
            and r.latency <= deadline
        )
        return in_slo / self.window_s

    def conservation(self) -> Dict[str, int]:
        """Flow-conservation accounting over the whole run.

        ``in_flight`` is whatever arrived but neither completed nor was
        shed (non-zero only if the caller stopped before draining).
        Trace-backed tests re-derive these counts from spans and assert
        ``completed + shed + in_flight == issued``.
        """
        return {
            "issued": self.n_arrivals,
            "completed": self.n_completions,
            "shed": self.n_shed,
            "in_flight": self.n_arrivals - self.n_completions - self.n_shed,
        }

    def degree_histogram(self) -> Dict[int, float]:
        """Fraction of observed queries granted each degree."""
        degrees = self.degrees()
        if degrees.size == 0:
            return {}
        values, counts = np.unique(degrees, return_counts=True)
        total = float(degrees.size)
        return {int(v): float(c) / total for v, c in zip(values, counts)}

    def mean_degree(self) -> float:
        degrees = self.degrees()
        return float(degrees.mean()) if degrees.size else float("nan")

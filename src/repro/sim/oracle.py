"""Service oracle: the simulator's view of query execution costs.

The discrete-event server does not run the engine inline; it replays the
per-query, per-degree virtual-time measurements captured in a
:class:`~repro.profiles.measurement.QueryCostTable`. The oracle also
carries optional predicted latencies (for the predictive policy) and
answers "what is the largest measured degree <= d" so grants clamp onto
the measured grid.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.policies.base import QueryInfo
from repro.profiles.measurement import QueryCostTable


class ServiceOracle:
    """Query cost lookups for the simulated ISN."""

    def __init__(
        self,
        table: QueryCostTable,
        predicted_latencies: Optional[Sequence[float]] = None,
    ) -> None:
        self.table = table
        self.degrees = table.degrees
        self._sorted_degrees = np.asarray(sorted(self.degrees), dtype=np.int64)
        if predicted_latencies is not None:
            predictions = np.asarray(predicted_latencies, dtype=np.float64)
            if predictions.shape[0] != table.n_queries:
                raise SimulationError(
                    "predicted_latencies must align with the cost table"
                )
            self.predicted = predictions
        else:
            self.predicted = None
        self._t1 = table.sequential_latencies()

    @property
    def n_queries(self) -> int:
        return self.table.n_queries

    @property
    def max_degree(self) -> int:
        return int(self._sorted_degrees[-1])

    def clamp_degree(self, degree: int) -> int:
        """Largest measured degree <= ``degree`` (at least 1)."""
        if degree < 1:
            raise SimulationError(f"degree must be >= 1, got {degree}")
        idx = int(np.searchsorted(self._sorted_degrees, degree, side="right")) - 1
        if idx < 0:
            raise SimulationError("cost table does not include degree 1")
        return int(self._sorted_degrees[idx])

    def latency(self, query_index: int, degree: int) -> float:
        """Virtual service time of the query at a *measured* degree."""
        return self.table.latency_of(query_index, degree)

    def sequential_latency(self, query_index: int) -> float:
        return float(self._t1[query_index])

    def expected_sequential_latency(self, query_index: int) -> float:
        """Best *pre-execution* estimate of t1: the predictor's value
        when the table carries predictions, else the true latency (the
        fallback keeps unpredicted tables usable in tests/tools)."""
        if self.predicted is not None:
            return float(self.predicted[query_index])
        return float(self._t1[query_index])

    def plan_chunk_limit(self, query_index: int) -> int:
        """Useful-parallelism bound: the query's sequential chunk count.

        A query whose sequential run terminates after ``c`` chunks keeps
        at most ~``c`` workers productively busy; a wider gang claims
        speculative chunks (wasting CPU) while the reserved extra cores
        add no speedup. The simulated clamp uses the oracle's measured
        count; a deployed system would approximate it with the same
        pre-execution features the latency predictor uses.
        """
        sequential = self.table.degree_column(1)
        return max(1, int(self.table.chunks[query_index, sequential]))

    def info(self, query_index: int) -> QueryInfo:
        """Policy-visible information for one query."""
        query = self.table.queries[query_index]
        return QueryInfo(
            query_id=query.query_id,
            n_terms=query.n_terms,
            predicted_sequential_latency=(
                float(self.predicted[query_index])
                if self.predicted is not None
                else None
            ),
            true_sequential_latency=float(self._t1[query_index]),
        )

    def mean_sequential_latency(self) -> float:
        return float(self._t1.mean())

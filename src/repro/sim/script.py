"""Scripted arrival streams: one workload, replayable on any clock.

:func:`run_load_point` draws its arrival times and query indices online
while the simulation runs, which is fine when the simulator is the only
consumer. Sim-vs-live validation needs something stronger: the *same*
workload must be submittable to the virtual-time server model and to
the wall-clock serving runtime, event for event. This module
materializes the stream up front:

* :func:`build_arrival_script` replays exactly the RNG-stream semantics
  of :func:`~repro.sim.experiment.run_load_point` (``arrivals`` /
  ``sample`` child streams of the seed, class labels read from the
  arrival process's ``last_class``) into a list of
  :class:`ScriptedArrival` rows — so a script built from ``(seed,
  rate, duration)`` is the workload ``run_load_point`` would have
  generated internally;
* :func:`run_scripted_point` replays a script through the simulator and
  summarizes it with the shared
  :func:`~repro.sim.experiment.summarize_load_point` schema.

The wall-clock counterparts live in :mod:`repro.runtime.loadgen`
(paced TCP replay) and :mod:`repro.runtime.parity` (FakeClock replay);
because all of them consume the identical script, any divergence in
their decision sequences is attributable to the hosting, never the
workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.obs.spans import Tracer
from repro.policies.base import ParallelismPolicy
from repro.sim.arrivals import ArrivalProcess, PoissonArrivals
from repro.sim.engine import Simulator
from repro.sim.experiment import (
    LoadPointConfig,
    LoadPointSummary,
    summarize_load_point,
)
from repro.sim.metrics import MetricsCollector
from repro.sim.oracle import ServiceOracle
from repro.sim.server import IndexServerModel
from repro.util.rng import RngFactory
from repro.util.validation import require_int_in_range

__all__ = [
    "ScriptedArrival",
    "build_arrival_script",
    "run_scripted_point",
]


@dataclass(frozen=True)
class ScriptedArrival:
    """One pre-drawn arrival: when, which query, which traffic class."""

    time_s: float
    query_index: int
    query_class: Optional[str] = None


def build_arrival_script(
    n_queries: int,
    config: LoadPointConfig,
    arrivals: Optional[ArrivalProcess] = None,
    query_sampler: Optional[object] = None,
) -> List[ScriptedArrival]:
    """Materialize the arrival stream ``run_load_point`` would generate.

    Draw-for-draw identical to the online path: interarrival gaps come
    from the ``arrivals`` child stream of ``config.seed`` (Poisson at
    ``config.rate`` unless an explicit process is given), query indices
    from the ``sample`` child stream — or from ``query_sampler`` keyed
    by the arrival's class label — and generation stops at the first
    arrival that would land past ``config.duration``.
    """
    require_int_in_range(n_queries, "n_queries", low=1)
    streams = RngFactory(config.seed)
    arrival_rng = streams.stream("arrivals")
    sample_rng = streams.stream("sample")
    if arrivals is None:
        arrivals = PoissonArrivals(config.rate, arrival_rng)

    script: List[ScriptedArrival] = []
    now = 0.0
    while True:
        gap = arrivals.next_interarrival()
        if math.isinf(gap):
            break
        if now + gap > config.duration:
            break
        now += gap
        # The class label belongs to the arrival produced by the draw
        # above (matches the read-before-next-draw order of the online
        # path in run_load_point).
        arrival_class = getattr(arrivals, "last_class", None)
        if query_sampler is not None:
            query_index = int(query_sampler.sample(arrival_class))
        else:
            query_index = int(sample_rng.integers(n_queries))
        script.append(ScriptedArrival(now, query_index, arrival_class))
    return script


def run_scripted_point(
    oracle: ServiceOracle,
    policy: ParallelismPolicy,
    config: LoadPointConfig,
    script: Sequence[ScriptedArrival],
    controllers: Sequence[object] = (),
    tracer: Optional[Tracer] = None,
) -> Tuple[LoadPointSummary, IndexServerModel]:
    """Replay ``script`` through the virtual-time server and summarize.

    Mirrors :func:`~repro.sim.experiment.run_load_point` exactly —
    same server wiring, same horizon-then-bounded-drain schedule, same
    summary — except the arrivals are the given script instead of
    being drawn online. Returns ``(summary, server)``; the server is
    returned so callers can inspect post-run state (shed counters,
    class-shedding knobs toggled by controllers).
    """
    simulator = Simulator()
    metrics = MetricsCollector(config.warmup, config.duration, config.n_cores)
    server = IndexServerModel(
        simulator, oracle, policy, config.n_cores, metrics,
        clamp_to_plan=config.clamp_to_plan,
        deadline=config.deadline,
        max_queue_length=config.max_queue_length,
        tracer=tracer,
    )
    for controller in controllers:
        controller.attach(simulator, server, metrics, horizon_s=config.duration)
    for arrival in script:
        simulator.schedule_at(
            arrival.time_s,
            lambda a=arrival: server.submit(
                a.query_index, query_class=a.query_class
            ),
        )
    simulator.run(until_s=config.duration)
    drain_limit = config.duration * 10.0
    while (
        server.n_running or server.queue_length
    ) and simulator.now < drain_limit and simulator.pending_events:
        simulator.step()

    queue_delays = metrics.queue_delays()
    offered = config.rate * oracle.mean_sequential_latency() / config.n_cores
    summary = summarize_load_point(metrics, policy, config, offered, queue_delays)
    return summary, server

"""Minimal discrete-event simulator core.

A binary-heap event loop with deterministic ordering: events at equal
times fire in scheduling order (a monotone sequence number breaks ties),
so simulations are exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Tuple

from repro.core.clock import VirtualClock
from repro.errors import SimulationError

EventCallback = Callable[[], None]


class Simulator:
    """Event loop with virtual time."""

    def __init__(self) -> None:
        # Virtual time lives in the kernel's clock type: the simulator
        # is "a driver that advances a VirtualClock", which is exactly
        # the shape the wall-clock runtime mirrors (see core/clock.py).
        self._clock = VirtualClock()
        self._sequence = 0
        self._heap: List[Tuple[float, int, EventCallback]] = []
        self._processed = 0

    @property
    def now(self) -> float:
        return self._clock.now

    @property
    def clock(self) -> VirtualClock:
        """The kernel clock this event loop advances."""
        return self._clock

    @property
    def pending_events(self) -> int:
        return len(self._heap)

    @property
    def processed_events(self) -> int:
        return self._processed

    def schedule_at(self, time_s: float, callback: EventCallback) -> None:
        """Schedule ``callback`` at absolute virtual ``time_s`` (seconds)."""
        if not math.isfinite(time_s):
            raise SimulationError(f"event time must be finite, got {time_s}")
        if time_s < self._clock.now:
            raise SimulationError(
                f"cannot schedule in the past: {time_s} < now {self._clock.now}"
            )
        heapq.heappush(self._heap, (time_s, self._sequence, callback))
        self._sequence += 1

    def schedule(self, delay_s: float, callback: EventCallback) -> None:
        """Schedule ``callback`` after ``delay_s`` seconds of virtual time."""
        if delay_s < 0:
            raise SimulationError(f"delay must be >= 0, got {delay_s}")
        self.schedule_at(self._clock.now + delay_s, callback)

    def step(self) -> bool:
        """Process one event; returns False if none remain."""
        if not self._heap:
            return False
        time_s, _, callback = heapq.heappop(self._heap)
        self._clock.advance_to(time_s)
        self._processed += 1
        callback()
        return True

    def run(self, until_s: Optional[float] = None) -> None:
        """Run until the event queue drains or virtual time passes ``until_s``.

        Horizon-boundary semantics (pinned by regression tests):

        * events scheduled at exactly ``until_s`` DO fire, including
          ones that such events schedule at the same instant;
        * events strictly beyond the horizon remain queued;
        * ``now`` lands exactly on the horizon afterwards, even when no
          event was processed, so ``run(until_s=now)`` is a no-op and a
          later ``schedule_at(until_s, ...)`` is legal;
        * the horizon must be finite — ``nan`` would silently skip the
          queue and poison ``now`` (every later comparison is False),
          and ``inf`` would strand ``now`` where nothing can ever be
          scheduled again. Run with ``until_s=None`` to drain fully.
        """
        if until_s is None:
            while self.step():
                pass
            return
        if not math.isfinite(until_s):
            raise SimulationError(f"horizon must be finite, got {until_s}")
        if until_s < self._clock.now:
            raise SimulationError(
                f"horizon {until_s} is before now {self._clock.now}"
            )
        while self._heap and self._heap[0][0] <= until_s:
            self.step()
        self._clock.advance_to(until_s)

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self._clock.now:.6f}, pending={self.pending_events}, "
            f"processed={self._processed})"
        )

"""Nonstationary / adversarial traffic: regimes, bursts, and attacks.

The paper derives degree thresholds offline from a *stationary* load
profile. Real services see diurnal cycles, flash crowds, and attack
traffic — regimes under which an offline threshold is exactly wrong at
the moment it matters most. This module provides the traffic side of
that story (the control side lives in :mod:`repro.policies.online` and
:mod:`repro.sim.anomaly`):

* :class:`DiurnalProfile` — a smooth day/night background rate,
  ``rate(t) = base · (1 + a·sin(2πt/T + φ))``;
* :class:`Burst` — an anomalous flow superimposed on the background for
  a bounded window, with a square or Gaussian-modulated shape and one
  of three kinds: ``flash_crowd`` (extra normal queries), a
  ``slow_query_flood`` (extra *expensive* queries, the classic
  resource-exhaustion attack), and ``query_of_death`` (one pathological
  query repeated verbatim);
* :class:`RegimeTraffic` — the superposed arrival process. Each
  component (background plus every burst) is an independent Poisson
  process with its own :class:`~repro.util.rng.RngFactory` named
  stream, so adding or removing a burst never perturbs the background
  arrival sequence, and every arrival is labeled with the class of the
  component that produced it;
* :class:`ClassAwareQuerySampler` — maps arrival classes to query
  indices (attack classes draw from the expensive tail of the measured
  cost table; ``query_of_death`` repeats the single worst query).

Regime-boundary convention (shared with
:class:`~repro.sim.arrivals.MMPP2Arrivals` and pinned by regression
tests): a burst window is the half-open interval ``[start_s, end_s)``
— an arrival candidate landing *exactly* at a rate-change instant
belongs to the **new** regime, never the old one.

All components are seeded: construction takes an explicit
:class:`~repro.util.rng.RngFactory` and derives one named stream per
component, so traced runs replay bit-identically to untraced ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.arrivals import ArrivalProcess
from repro.util.rng import RngFactory
from repro.util.validation import require, require_in_range, require_positive

#: Arrival-class label of the diurnal background flow.
BACKGROUND = "background"
#: A surge of ordinary queries (legitimate flash crowd).
FLASH_CROWD = "flash_crowd"
#: A flood of deliberately expensive queries (resource-exhaustion attack).
SLOW_QUERY_FLOOD = "slow_query_flood"
#: One pathological query repeated verbatim (query-of-death attack).
QUERY_OF_DEATH = "query_of_death"

BURST_KINDS = (FLASH_CROWD, SLOW_QUERY_FLOOD, QUERY_OF_DEATH)

#: Burst envelope shapes.
SHAPE_SQUARE = "square"
SHAPE_GAUSSIAN = "gaussian"
BURST_SHAPES = (SHAPE_SQUARE, SHAPE_GAUSSIAN)


@dataclass(frozen=True)
class DiurnalProfile:
    """Sinusoidal day/night background rate (mean ``base_rate`` qps).

    ``rate(t) = base_rate · (1 + amplitude · sin(2π t / period_s + phase))``.
    ``amplitude`` in [0, 1) keeps the rate strictly positive.
    """

    base_rate: float
    amplitude: float = 0.0
    period_s: float = 86_400.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.base_rate, "base_rate")
        require_in_range(
            self.amplitude, "amplitude", low=0.0, high=1.0, high_inclusive=False
        )
        require_positive(self.period_s, "period_s")
        require(math.isfinite(self.phase), "phase must be finite")

    @property
    def max_rate(self) -> float:
        """Tight upper bound on the instantaneous rate."""
        return self.base_rate * (1.0 + self.amplitude)

    def rate_at(self, time_s: float) -> float:
        """Instantaneous background rate at virtual time ``time_s``."""
        angle = 2.0 * math.pi * time_s / self.period_s + self.phase
        return self.base_rate * (1.0 + self.amplitude * math.sin(angle))


@dataclass(frozen=True)
class Burst:
    """One anomalous flow superimposed on the background.

    ``peak_rate`` is the extra arrival rate (qps) at the envelope's
    plateau. The window is half-open ``[start_s, end_s)``: the burst
    contributes at exactly ``start_s`` and contributes nothing at
    exactly ``end_s`` (the regime-boundary convention).
    """

    kind: str
    start_s: float
    duration_s: float
    peak_rate: float
    shape: str = SHAPE_SQUARE

    def __post_init__(self) -> None:
        if self.kind not in BURST_KINDS:
            raise ConfigurationError(
                f"burst kind must be one of {BURST_KINDS}, got {self.kind!r}"
            )
        if self.shape not in BURST_SHAPES:
            raise ConfigurationError(
                f"burst shape must be one of {BURST_SHAPES}, got {self.shape!r}"
            )
        require_positive(self.start_s, "start_s", strict=False)
        if not self.duration_s > 0:
            raise ConfigurationError(
                f"burst window must have positive length, got duration_s="
                f"{self.duration_s} (zero-length regimes are degenerate: no "
                "arrival can ever land inside one)"
            )
        require_positive(self.peak_rate, "peak_rate")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def rate_at(self, time_s: float) -> float:
        """Extra rate this burst contributes at ``time_s``.

        Zero outside ``[start_s, end_s)``; note the half-open window —
        at exactly ``end_s`` the burst is already over.
        """
        if time_s < self.start_s or time_s >= self.end_s:
            return 0.0
        if self.shape == SHAPE_SQUARE:
            return self.peak_rate
        # Gaussian envelope centered mid-window; sigma chosen so the
        # envelope has fallen to ~1% of peak at the window edges.
        center_s = self.start_s + self.duration_s / 2.0
        sigma_s = self.duration_s / 6.0
        z = (time_s - center_s) / sigma_s
        return self.peak_rate * math.exp(-0.5 * z * z)

    def overlaps(self, other: "Burst") -> bool:
        """Whether the two half-open windows intersect."""
        return self.start_s < other.end_s and other.start_s < self.end_s


@dataclass(frozen=True)
class TrafficConfig:
    """A full nonstationary traffic scenario: background + bursts.

    Burst windows must be pairwise disjoint — overlapping anomalies
    make per-burst recovery-time accounting ambiguous, so they are
    rejected at construction with the offending pair named.
    """

    background: DiurnalProfile
    bursts: Tuple[Burst, ...] = ()

    def __post_init__(self) -> None:
        ordered = sorted(self.bursts, key=lambda b: b.start_s)
        for first, second in zip(ordered, ordered[1:]):
            if first.overlaps(second):
                raise ConfigurationError(
                    f"burst windows overlap: {first.kind} "
                    f"[{first.start_s}, {first.end_s}) intersects "
                    f"{second.kind} [{second.start_s}, {second.end_s}); "
                    "burst windows must be pairwise disjoint"
                )

    def rate_at(self, time_s: float) -> float:
        """Total instantaneous arrival rate (background + active bursts)."""
        rate = self.background.rate_at(time_s)
        for burst in self.bursts:
            rate += burst.rate_at(time_s)
        return rate

    def classes(self) -> Tuple[str, ...]:
        """Every arrival-class label this scenario can produce."""
        seen = [BACKGROUND]
        for burst in self.bursts:
            if burst.kind not in seen:
                seen.append(burst.kind)
        return tuple(seen)

    def burst_active_at(self, time_s: float) -> Optional[Burst]:
        """The burst whose half-open window contains ``time_s``, if any."""
        for burst in self.bursts:
            if burst.start_s <= time_s < burst.end_s:
                return burst
        return None


class _Component:
    """One independent Poisson flow of the superposition.

    Generates its own arrival sequence by Lewis–Shedler thinning against
    ``max_rate`` on its own named RNG stream. A burst component stops
    proposing candidates once they pass ``until_s`` (its window end), so
    exhausted bursts cost nothing.
    """

    __slots__ = ("label", "rate_at", "max_rate", "rng", "next_s", "until_s")

    def __init__(
        self,
        label: str,
        rate_at: Callable[[float], float],
        max_rate: float,
        rng: np.random.Generator,
        until_s: float,
        start_s: float = 0.0,
    ) -> None:
        self.label = label
        self.rate_at = rate_at
        self.max_rate = float(max_rate)
        self.rng = rng
        self.until_s = float(until_s)
        self.next_s = float(start_s)
        self._advance()

    def _advance(self) -> None:
        """Move ``next_s`` to this component's next accepted arrival."""
        while True:
            self.next_s += float(self.rng.exponential(1.0 / self.max_rate))
            if self.next_s >= self.until_s:
                self.next_s = float("inf")
                return
            rate = self.rate_at(self.next_s)
            if self.rng.random() < rate / self.max_rate:
                return

    def pop(self) -> float:
        """Consume the pending arrival and schedule the next one."""
        current_s = self.next_s
        self._advance()
        return current_s


class RegimeTraffic(ArrivalProcess):
    """Superposed nonstationary arrival process with labeled classes.

    Implements :class:`~repro.sim.arrivals.ArrivalProcess`, so it plugs
    into :func:`~repro.sim.experiment.run_load_point` unchanged. After
    each :meth:`next_interarrival` call, :attr:`last_class` names the
    component (``background`` or a burst kind) that produced the
    arrival about to happen — the load driver uses it to pick the query
    the arrival carries.

    ``horizon_s`` bounds candidate generation for the *background*
    stream; bursts are bounded by their own windows. Streams are derived
    from ``streams`` as ``("traffic", "background")`` and
    ``("traffic", "burst", i)`` — names audited by the determinism
    tests and reprolint's R010 stream-collision analysis.
    """

    def __init__(
        self,
        config: TrafficConfig,
        streams: RngFactory,
        horizon_s: float,
    ) -> None:
        require_positive(horizon_s, "horizon_s")
        self.config = config
        self.horizon_s = float(horizon_s)
        self._components: List[_Component] = [
            _Component(
                BACKGROUND,
                config.background.rate_at,
                config.background.max_rate,
                streams.stream("traffic", "background"),
                until_s=self.horizon_s,
            )
        ]
        for index, burst in enumerate(config.bursts):
            self._components.append(
                _Component(
                    burst.kind,
                    burst.rate_at,
                    burst.peak_rate,
                    streams.stream("traffic", "burst", index),
                    until_s=min(burst.end_s, self.horizon_s),
                    start_s=burst.start_s,
                )
            )
        self._now_s = 0.0
        #: Class label of the arrival produced by the last
        #: :meth:`next_interarrival` call (None before the first).
        self.last_class: Optional[str] = None

    def next_interarrival(self) -> float:
        """Time to the earliest pending component arrival (inf when done).

        Simultaneous candidates (a measure-zero event for continuous
        draws, but reachable in tests) break ties toward the earliest
        component in construction order — background first — so the
        outcome is deterministic.
        """
        best = min(self._components, key=lambda c: c.next_s)
        if math.isinf(best.next_s):
            self.last_class = None
            return float("inf")
        arrival_s = best.pop()
        gap_s = arrival_s - self._now_s
        self._now_s = arrival_s
        self.last_class = best.label
        return gap_s


class ClassAwareQuerySampler:
    """Maps arrival classes to query indices of the measured cost table.

    * ``background`` / ``flash_crowd`` — uniform over the whole table
      (a flash crowd is *legitimate* traffic, just more of it);
    * ``slow_query_flood`` — uniform over the top ``heavy_fraction`` of
      queries by attack score;
    * ``query_of_death`` — always the single highest-scoring query.

    The attack score defaults to sequential latency (the adversary sends
    the most expensive queries). When ``predicted_latencies`` is also
    given, the score becomes the *underprediction residual*
    ``t1 - predicted``: the adversary targets queries whose true cost
    most exceeds what the node's cost model believes, so predictive
    admission control (deadline checks priced with predicted cost)
    admits them and then eats the full latency.

    Draws come from the factory's ``("traffic", "queries")`` stream, so
    the attack mix replays bit-identically for a given seed.
    """

    def __init__(
        self,
        sequential_latencies: Sequence[float],
        streams: RngFactory,
        heavy_fraction: float = 0.1,
        predicted_latencies: Optional[Sequence[float]] = None,
    ) -> None:
        require_in_range(
            heavy_fraction, "heavy_fraction", low=0.0, high=1.0,
            low_inclusive=False,
        )
        t1 = np.asarray(sequential_latencies, dtype=np.float64)
        if t1.ndim != 1 or t1.size == 0:
            raise ConfigurationError(
                "sequential_latencies must be a non-empty 1-D sequence"
            )
        self._n_queries = int(t1.size)
        if predicted_latencies is not None:
            pred = np.asarray(predicted_latencies, dtype=np.float64)
            if pred.shape != t1.shape:
                raise ConfigurationError(
                    "predicted_latencies must match sequential_latencies: "
                    f"shapes {pred.shape} vs {t1.shape}"
                )
            score = t1 - pred
        else:
            score = t1
        order = np.argsort(score, kind="stable")
        n_heavy = max(1, int(round(self._n_queries * heavy_fraction)))
        self._heavy_indices = order[-n_heavy:]
        self._death_index = int(order[-1])
        self._rng = streams.stream("traffic", "queries")

    @property
    def death_index(self) -> int:
        """The query-of-death: the highest-scoring attack query."""
        return self._death_index

    @property
    def attack_indices(self) -> "np.ndarray":
        """All query indices attack classes can draw from (heavy set)."""
        return self._heavy_indices.copy()

    def sample(self, arrival_class: Optional[str]) -> int:
        """Query index for one arrival of ``arrival_class``."""
        if arrival_class == QUERY_OF_DEATH:
            return self._death_index
        if arrival_class == SLOW_QUERY_FLOOD:
            return int(self._heavy_indices[
                self._rng.integers(self._heavy_indices.size)
            ])
        return int(self._rng.integers(self._n_queries))

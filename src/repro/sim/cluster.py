"""Cluster-level simulation: partitioned search with fan-out aggregation.

A web-search cluster partitions the index across many ISNs; every query
fans out to *all* partitions and the aggregator can only respond when
the **slowest** shard replies. This max-of-N structure amplifies tail
latency with cluster size — the "tail at scale" effect — and is the
reason the paper targets the P99 of a single ISN: a per-node tail
improvement compounds at the aggregator.

:class:`ClusterModel` instantiates N independent
:class:`~repro.sim.server.IndexServerModel` shards over one simulator.
Each cluster query draws an independent cost-table row per shard
(different partitions do different work for the same query) and is
recorded when its last shard response lands.

Graceful degradation (all opt-in; defaults reproduce the wait-for-all
aggregator exactly):

* ``quorum`` — answer after K of N shard responses instead of all N,
  recording a *partial* result and its coverage (K/N of the index
  searched).
* ``shard_timeout`` — per-query budget at the aggregator: when it
  expires, answer with whatever shards have responded (partial), or
  count a failure if none have.
* ``hedge_delay`` — tail hedging: when a query is still incomplete this
  long after arrival, re-issue the laggard shard requests to fault-free
  replica servers and take whichever copy answers first.
* per-shard fault injection (:mod:`repro.sim.faults`) and shard-level
  deadlines / admission caps (see :class:`IndexServerModel`): shed
  shard requests release the aggregator's join state instead of
  blocking it forever.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.obs.spans import NULL_TRACER, ClusterTraceBuilder, Tracer
from repro.policies.base import ParallelismPolicy
from repro.sim.arrivals import ArrivalProcess, PoissonArrivals
from repro.sim.engine import Simulator
from repro.sim.faults import ClusterFaultPlan
from repro.sim.metrics import MetricsCollector, QueryRecord
from repro.sim.oracle import ServiceOracle
from repro.sim.server import IndexServerModel
from repro.util.rng import RngFactory
from repro.util.validation import require, require_int_in_range, require_positive


class _InFlight:
    """Join state for one fanned-out cluster query."""

    __slots__ = (
        "arrival",
        "query_indices",
        "responded",
        "outstanding",
        "n_responded",
        "last_completion",
        "hedged",
        "done",
        "trace",
    )

    def __init__(self, arrival: float, query_indices: List[int]) -> None:
        self.arrival = arrival
        # Per-shard cost-table rows, remembered so hedged re-issues do
        # the same work on the replica as on the primary.
        self.query_indices = query_indices
        n_shards = len(query_indices)
        self.responded = [False] * n_shards
        self.outstanding = [1] * n_shards  # live attempts per shard
        self.n_responded = 0
        self.last_completion = arrival
        self.hedged = False
        self.done = False
        # Aggregator-side span builder (tracer enabled only).
        self.trace: Optional[ClusterTraceBuilder] = None


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster topology and load-point parameters.

    ``rate`` is the *cluster* query rate; every query hits all shards,
    so each shard also sees ``rate`` queries per second.
    ``aggregation_overhead`` models the merge/network step after the
    last shard responds.

    The robustness knobs (``deadline``, ``max_queue_length``,
    ``quorum``, ``shard_timeout``, ``hedge_delay``) all default to off;
    a default config is bit-identical to the fault-free wait-for-all
    aggregator.
    """

    n_shards: int = 8
    n_cores_per_shard: int = 12
    rate: float = 1_000.0
    duration: float = 20.0
    warmup: float = 4.0
    aggregation_overhead: float = 200e-6
    seed: int = 0
    #: Per-query SLO budget enforced at each shard (shed at dispatch
    #: once the queue wait has consumed it); also the bar used for the
    #: cluster's goodput / SLO-attainment statistics.
    deadline: Optional[float] = None
    #: Per-shard admission cap on the dispatch queue.
    max_queue_length: Optional[int] = None
    #: Answer after this many shard responses (K-of-N). None = all N.
    quorum: Optional[int] = None
    #: Aggregator-side budget per query: answer partially (or fail, if
    #: nothing responded) this long after arrival. None = wait forever.
    shard_timeout: Optional[float] = None
    #: Hedge laggard shard requests to a replica this long after
    #: arrival. None = no hedging (and no replica servers exist).
    hedge_delay: Optional[float] = None

    def __post_init__(self) -> None:
        require_int_in_range(self.n_shards, "n_shards", low=1)
        require_int_in_range(self.n_cores_per_shard, "n_cores_per_shard", low=1)
        require_positive(self.rate, "rate")
        require_positive(self.duration, "duration")
        require(0 <= self.warmup < self.duration, "need 0 <= warmup < duration")
        require(self.aggregation_overhead >= 0, "aggregation_overhead must be >= 0")
        if self.deadline is not None:
            require_positive(self.deadline, "deadline")
        if self.max_queue_length is not None:
            require_int_in_range(self.max_queue_length, "max_queue_length", low=1)
        if self.quorum is not None:
            require_int_in_range(
                self.quorum, "quorum", low=1, high=self.n_shards
            )
        if self.shard_timeout is not None:
            require_positive(self.shard_timeout, "shard_timeout")
        if self.hedge_delay is not None:
            require_positive(self.hedge_delay, "hedge_delay")


@dataclass(frozen=True)
class ClusterSummary:
    """End-to-end (aggregated) latency statistics of a cluster run."""

    policy: str
    n_shards: int
    rate: float
    observed: int
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    shard_p99_latency: float  # P99 of individual shard responses
    tail_amplification: float  # cluster P99 / shard P99
    # Robustness statistics. With no deadline/quorum/timeout/hedging
    # configured these are the trivial values (all answers full, no
    # sheds, coverage 1.0).
    n_full: int = 0  # answers covering every shard
    n_partial: int = 0  # answers missing >= 1 shard
    n_failed: int = 0  # queries answered by no shard at all
    n_timed_out: int = 0  # answers forced out by shard_timeout
    n_shed: int = 0  # shard-level requests dropped (all shards)
    n_hedges: int = 0  # replica requests issued
    n_hedge_wins: int = 0  # shards answered first by the replica
    unfinished: int = 0  # queries still in flight at the drain limit
    mean_coverage: float = float("nan")  # shards answered / N, per answer
    slo_attainment: float = float("nan")  # answers in SLO / demand
    goodput: float = float("nan")  # in-SLO answers per second

    @property
    def answered(self) -> int:
        return self.n_full + self.n_partial


def run_cluster_point(
    oracle: ServiceOracle,
    policy_factory: Callable[[], ParallelismPolicy],
    config: ClusterConfig,
    arrivals: Optional[ArrivalProcess] = None,
    faults: Optional[ClusterFaultPlan] = None,
    tracer: Optional[Tracer] = None,
) -> ClusterSummary:
    """Simulate one cluster load point.

    ``policy_factory`` is called once per shard — policies may be
    stateful (e.g. EWMA variants), so shards must not share an instance.
    ``faults`` injects per-shard slowdown/crash schedules (replica
    servers used for hedging are deliberately fault-free — replicas are
    different machines, which is what hedging exploits).

    ``tracer`` (opt-in) receives one aggregator-side ``cluster`` trace
    per query — shard attempt spans plus hedge / quorum / timeout
    outcomes — and the node-level traces of every shard and replica
    server (``server_id`` distinguishes them). Tracing is read-only:
    a traced run returns a summary bit-identical to an untraced one.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    # Named streams derived by hashing, not by drawing from a parent
    # generator: child streams must not depend on the parent's
    # consumption position (see util/rng.py). One-time stream change vs
    # the pre-reprolint derivation, documented in CHANGES.md.
    streams = RngFactory(config.seed)
    arrival_rng = streams.stream("arrivals")
    sample_rng = streams.stream("sample")
    if arrivals is None:
        arrivals = PoissonArrivals(config.rate, arrival_rng)

    simulator = Simulator()
    in_flight: Dict[int, _InFlight] = {}
    cluster_latencies: List[float] = []
    shard_latencies: List[float] = []
    coverages: List[float] = []
    counters = {
        "full": 0, "partial": 0, "failed": 0, "timed_out": 0,
        "hedges": 0, "hedge_wins": 0, "in_slo": 0,
    }

    def finalize(tag: int, state: _InFlight, now: float, timed_out: bool) -> None:
        """Emit the aggregator's answer (or record the failure)."""
        state.done = True
        del in_flight[tag]
        if state.trace is not None:
            n_resp = state.n_responded
            outcome = (
                "failed" if n_resp == 0
                else "full" if n_resp == config.n_shards
                else "partial"
            )
            answer_s = now + (config.aggregation_overhead if n_resp else 0.0)
            tracer.on_trace(
                state.trace.finalized(
                    answer_s, outcome, n_resp, config.n_shards,
                    timed_out=timed_out, quorum=config.quorum,
                )
            )
        if state.arrival < config.warmup:
            return
        coverage = state.n_responded / config.n_shards
        if timed_out:
            counters["timed_out"] += 1
        if state.n_responded == 0:
            counters["failed"] += 1
            return
        counters["full" if coverage == 1.0 else "partial"] += 1
        latency = now + config.aggregation_overhead - state.arrival
        cluster_latencies.append(latency)
        coverages.append(coverage)
        if config.deadline is not None and latency <= config.deadline:
            counters["in_slo"] += 1

    def check_done(tag: int, state: _InFlight, now: float) -> None:
        if state.n_responded == config.n_shards:
            finalize(tag, state, now, timed_out=False)
            return
        if config.quorum is not None and state.n_responded >= config.quorum:
            finalize(tag, state, now, timed_out=False)
            return
        # Every attempt is dead and no hedge can revive the laggards:
        # answer with what we have rather than wait for nothing.
        hedge_pending = config.hedge_delay is not None and not state.hedged
        if not hedge_pending and not any(state.outstanding):
            finalize(tag, state, now, timed_out=False)

    def on_shard_complete(record: QueryRecord, tag, from_replica: bool = False):
        cluster_tag, shard_id = tag
        if record.arrival >= config.warmup:
            shard_latencies.append(record.latency)
        state = in_flight.get(cluster_tag)
        if state is None or state.done:
            return  # duplicate of an already-answered query
        state.outstanding[shard_id] -= 1
        if state.trace is not None:
            state.trace.shard_responded(
                record.completion, shard_id,
                replica=from_replica, won=not state.responded[shard_id],
            )
        if not state.responded[shard_id]:
            state.responded[shard_id] = True
            state.n_responded += 1
            state.last_completion = max(state.last_completion, record.completion)
            if from_replica:
                counters["hedge_wins"] += 1
            check_done(cluster_tag, state, record.completion)

    def on_replica_complete(record: QueryRecord, tag) -> None:
        on_shard_complete(record, tag, from_replica=True)

    def on_shard_shed(
        query_index: int, tag, reason: str, now: float, from_replica: bool = False
    ) -> None:
        cluster_tag, shard_id = tag
        state = in_flight.get(cluster_tag)
        if state is None or state.done:
            return
        if state.trace is not None:
            state.trace.shard_shed(now, shard_id, reason, replica=from_replica)
        state.outstanding[shard_id] -= 1
        check_done(cluster_tag, state, now)

    def on_replica_shed(query_index: int, tag, reason: str, now: float) -> None:
        on_shard_shed(query_index, tag, reason, now, from_replica=True)

    def make_shards(fault_plan, on_complete, on_shed, role) -> List[IndexServerModel]:
        servers = []
        for shard_id in range(config.n_shards):
            policy: ParallelismPolicy = policy_factory()
            metrics = MetricsCollector(
                warmup=config.warmup,
                horizon=config.duration,
                n_cores=config.n_cores_per_shard,
            )
            servers.append(
                IndexServerModel(
                    simulator,
                    oracle,
                    policy,
                    config.n_cores_per_shard,
                    metrics,
                    on_query_complete=on_complete,
                    deadline=config.deadline,
                    max_queue_length=config.max_queue_length,
                    faults=(
                        fault_plan.schedule_for(shard_id)
                        if fault_plan is not None
                        else None
                    ),
                    on_query_shed=on_shed,
                    tracer=tracer,
                    server_id=f"{role}{shard_id}",
                )
            )
        return servers

    shards = make_shards(faults, on_shard_complete, on_shard_shed, "shard")
    policy_name = shards[0].policy.name
    replicas: List[IndexServerModel] = (
        make_shards(None, on_replica_complete, on_replica_shed, "replica")
        if config.hedge_delay is not None
        else []
    )

    n_queries = oracle.n_queries
    next_tag = [0]

    def hedge(tag: int) -> None:
        """Re-issue every laggard shard request to its replica."""
        state = in_flight.get(tag)
        if state is None or state.done:
            return
        state.hedged = True
        laggards = [
            shard_id
            for shard_id in range(config.n_shards)
            if not state.responded[shard_id]
        ]
        if state.trace is not None and laggards:
            state.trace.hedged(simulator.now, laggards)
        for shard_id in laggards:
            state.outstanding[shard_id] += 1
            counters["hedges"] += 1
            if state.trace is not None:
                # Register the replica attempt before submit(): admission
                # shed is synchronous and must land on an open attempt.
                state.trace.shard_submitted(
                    simulator.now, shard_id,
                    state.query_indices[shard_id], replica=True,
                )
            replicas[shard_id].submit(
                state.query_indices[shard_id], tag=(tag, shard_id)
            )
        if not laggards:
            check_done(tag, state, simulator.now)

    def timeout(tag: int) -> None:
        state = in_flight.get(tag)
        if state is None or state.done:
            return
        finalize(tag, state, simulator.now, timed_out=True)

    def arrive() -> None:
        tag = next_tag[0]
        next_tag[0] += 1
        indices = [int(sample_rng.integers(n_queries)) for _ in shards]
        state = _InFlight(simulator.now, indices)
        if tracer.enabled:
            state.trace = ClusterTraceBuilder(tag, simulator.now, config.n_shards)
            for shard_id in range(config.n_shards):
                state.trace.shard_submitted(
                    simulator.now, shard_id, indices[shard_id]
                )
        in_flight[tag] = state
        for shard_id, shard in enumerate(shards):
            # Independent work per partition for the same logical query.
            shard.submit(indices[shard_id], tag=(tag, shard_id))
        if config.hedge_delay is not None:
            simulator.schedule(config.hedge_delay, lambda t=tag: hedge(t))
        if config.shard_timeout is not None:
            simulator.schedule(config.shard_timeout, lambda t=tag: timeout(t))
        schedule_next()

    def schedule_next() -> None:
        gap = arrivals.next_interarrival()
        if not np.isfinite(gap) or simulator.now + gap > config.duration:
            return
        simulator.schedule(gap, arrive)

    schedule_next()
    simulator.run(until_s=config.duration)
    drain_limit = config.duration * 10.0
    while in_flight and simulator.now < drain_limit and simulator.pending_events:
        simulator.step()
    unfinished = len(in_flight)
    if unfinished:
        warnings.warn(
            f"cluster drain limit ({drain_limit:.1f}s) tripped with "
            f"{unfinished} queries still in flight; tail statistics are "
            "censored (the load point is deeply saturated)",
            RuntimeWarning,
            stacklevel=2,
        )

    cluster = np.asarray(cluster_latencies, dtype=np.float64)
    shard_arr = np.asarray(shard_latencies, dtype=np.float64)
    cluster_p99 = float(np.percentile(cluster, 99)) if cluster.size else float("nan")
    shard_p99 = float(np.percentile(shard_arr, 99)) if shard_arr.size else float("nan")
    demand = counters["full"] + counters["partial"] + counters["failed"]
    window_s = config.duration - config.warmup
    return ClusterSummary(
        policy=policy_name or "unknown",
        n_shards=config.n_shards,
        rate=config.rate,
        observed=int(cluster.size),
        mean_latency=float(cluster.mean()) if cluster.size else float("nan"),
        p50_latency=float(np.percentile(cluster, 50)) if cluster.size else float("nan"),
        p95_latency=float(np.percentile(cluster, 95)) if cluster.size else float("nan"),
        p99_latency=cluster_p99,
        shard_p99_latency=shard_p99,
        tail_amplification=(
            cluster_p99 / shard_p99
            if math.isfinite(shard_p99) and shard_p99 > 0
            else float("nan")
        ),
        n_full=counters["full"],
        n_partial=counters["partial"],
        n_failed=counters["failed"],
        n_timed_out=counters["timed_out"],
        n_shed=sum(s.n_shed for s in shards) + sum(r.n_shed for r in replicas),
        n_hedges=counters["hedges"],
        n_hedge_wins=counters["hedge_wins"],
        unfinished=unfinished,
        mean_coverage=(
            float(np.mean(coverages)) if coverages else float("nan")
        ),
        slo_attainment=(
            counters["in_slo"] / demand
            if config.deadline is not None and demand
            else float("nan")
        ),
        goodput=(
            counters["in_slo"] / window_s
            if config.deadline is not None
            else float("nan")
        ),
    )

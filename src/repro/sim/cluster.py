"""Cluster-level simulation: partitioned search with fan-out aggregation.

A web-search cluster partitions the index across many ISNs; every query
fans out to *all* partitions and the aggregator can only respond when
the **slowest** shard replies. This max-of-N structure amplifies tail
latency with cluster size — the "tail at scale" effect — and is the
reason the paper targets the P99 of a single ISN: a per-node tail
improvement compounds at the aggregator.

:class:`ClusterModel` instantiates N independent
:class:`~repro.sim.server.IndexServerModel` shards over one simulator.
Each cluster query draws an independent cost-table row per shard
(different partitions do different work for the same query) and is
recorded when its last shard response lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.policies.base import ParallelismPolicy
from repro.sim.arrivals import ArrivalProcess, PoissonArrivals
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsCollector, QueryRecord
from repro.sim.oracle import ServiceOracle
from repro.sim.server import IndexServerModel
from repro.util.rng import make_rng
from repro.util.validation import require, require_int_in_range, require_positive


class _InFlight:
    """Join state for one fanned-out cluster query."""

    __slots__ = ("arrival", "remaining", "last_completion")

    def __init__(self, arrival: float, n_shards: int) -> None:
        self.arrival = arrival
        self.remaining = n_shards
        self.last_completion = arrival


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster topology and load-point parameters.

    ``rate`` is the *cluster* query rate; every query hits all shards,
    so each shard also sees ``rate`` queries per second.
    ``aggregation_overhead`` models the merge/network step after the
    last shard responds.
    """

    n_shards: int = 8
    n_cores_per_shard: int = 12
    rate: float = 1_000.0
    duration: float = 20.0
    warmup: float = 4.0
    aggregation_overhead: float = 200e-6
    seed: int = 0

    def __post_init__(self) -> None:
        require_int_in_range(self.n_shards, "n_shards", low=1)
        require_int_in_range(self.n_cores_per_shard, "n_cores_per_shard", low=1)
        require_positive(self.rate, "rate")
        require_positive(self.duration, "duration")
        require(0 <= self.warmup < self.duration, "need 0 <= warmup < duration")
        require(self.aggregation_overhead >= 0, "aggregation_overhead must be >= 0")


@dataclass(frozen=True)
class ClusterSummary:
    """End-to-end (aggregated) latency statistics of a cluster run."""

    policy: str
    n_shards: int
    rate: float
    observed: int
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    shard_p99_latency: float  # P99 of individual shard responses
    tail_amplification: float  # cluster P99 / shard P99


def run_cluster_point(
    oracle: ServiceOracle,
    policy_factory,
    config: ClusterConfig,
    arrivals: Optional[ArrivalProcess] = None,
) -> ClusterSummary:
    """Simulate one cluster load point.

    ``policy_factory`` is called once per shard — policies may be
    stateful (e.g. EWMA variants), so shards must not share an instance.
    """
    rng = make_rng(config.seed)
    arrival_rng = np.random.default_rng(rng.integers(2**63))
    sample_rng = np.random.default_rng(rng.integers(2**63))
    if arrivals is None:
        arrivals = PoissonArrivals(config.rate, arrival_rng)

    simulator = Simulator()
    in_flight: Dict[int, _InFlight] = {}
    cluster_latencies: List[float] = []
    shard_latencies: List[float] = []

    def on_shard_complete(record: QueryRecord, tag) -> None:
        state = in_flight.get(tag)
        if state is None:
            return
        state.remaining -= 1
        state.last_completion = max(state.last_completion, record.completion)
        if state.remaining == 0:
            del in_flight[tag]
            if state.arrival >= config.warmup:
                end = state.last_completion + config.aggregation_overhead
                cluster_latencies.append(end - state.arrival)
        if record.arrival >= config.warmup:
            shard_latencies.append(record.latency)

    shards: List[IndexServerModel] = []
    policy_name = None
    for shard_id in range(config.n_shards):
        policy: ParallelismPolicy = policy_factory()
        policy_name = policy.name
        metrics = MetricsCollector(
            warmup=config.warmup,
            horizon=config.duration,
            n_cores=config.n_cores_per_shard,
        )
        shards.append(
            IndexServerModel(
                simulator,
                oracle,
                policy,
                config.n_cores_per_shard,
                metrics,
                on_query_complete=on_shard_complete,
            )
        )

    n_queries = oracle.n_queries
    next_tag = [0]

    def arrive() -> None:
        tag = next_tag[0]
        next_tag[0] += 1
        in_flight[tag] = _InFlight(simulator.now, config.n_shards)
        for shard in shards:
            # Independent work per partition for the same logical query.
            shard.submit(int(sample_rng.integers(n_queries)), tag=tag)
        schedule_next()

    def schedule_next() -> None:
        gap = arrivals.next_interarrival()
        if not np.isfinite(gap) or simulator.now + gap > config.duration:
            return
        simulator.schedule(gap, arrive)

    schedule_next()
    simulator.run(until=config.duration)
    drain_limit = config.duration * 10.0
    while in_flight and simulator.now < drain_limit and simulator.pending_events:
        simulator.step()

    cluster = np.asarray(cluster_latencies, dtype=np.float64)
    shard_arr = np.asarray(shard_latencies, dtype=np.float64)
    cluster_p99 = float(np.percentile(cluster, 99)) if cluster.size else float("nan")
    shard_p99 = float(np.percentile(shard_arr, 99)) if shard_arr.size else float("nan")
    return ClusterSummary(
        policy=policy_name or "unknown",
        n_shards=config.n_shards,
        rate=config.rate,
        observed=int(cluster.size),
        mean_latency=float(cluster.mean()) if cluster.size else float("nan"),
        p50_latency=float(np.percentile(cluster, 50)) if cluster.size else float("nan"),
        p95_latency=float(np.percentile(cluster, 95)) if cluster.size else float("nan"),
        p99_latency=cluster_p99,
        shard_p99_latency=shard_p99,
        tail_amplification=cluster_p99 / shard_p99 if shard_p99 else float("nan"),
    )

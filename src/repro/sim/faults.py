"""Deterministic fault injection for the simulated ISN and cluster.

Real index-serving fleets degrade in two characteristic ways: a machine
goes *slow* (background compaction, co-located tenant, thermal
throttling — service times inflate by some factor for a while) or it
goes *away* (crash, network partition — requests in that window are
never answered and the node recovers later). Both matter to the
adaptive-parallelism story because the cluster tail is a max over
shards: one degraded shard is enough to move the aggregate P99.

This module expresses both as **seeded, precomputed schedules** so fault
runs are exactly reproducible: a :class:`FaultSchedule` is a list of
non-overlapping :class:`FaultWindow` intervals, each either a slowdown
(finite service-time multiplier > 0) or a crash (``CRASH`` sentinel).
The server consumes a schedule through two pure lookups —
:meth:`FaultSchedule.multiplier_at` scales a query's service time at
dispatch, and :meth:`FaultSchedule.crashed_at` sheds queries dispatched
inside a crash window (the aggregator sees the shed and degrades to a
partial answer rather than waiting forever).

:class:`ClusterFaultPlan` maps shard ids to schedules;
:func:`ClusterFaultPlan.generate` draws a random plan from a seed so
sweeps can inject "one slow shard" or "rolling crashes" without
hand-writing intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError
from repro.util.rng import make_rng

#: Service-time multiplier meaning "the shard is down in this window".
CRASH = float("inf")


@dataclass(frozen=True)
class FaultWindow:
    """One fault interval: ``[start, end)`` with a service-time multiplier.

    A finite ``multiplier`` > 1 models a slow shard (1.0 is a no-op and
    < 1.0 a speedup, allowed for completeness); ``multiplier == CRASH``
    (infinity) models a crashed shard — queries dispatched inside the
    window are dropped, and the shard serves normally again at ``end``.
    """

    start: float
    end: float
    multiplier: float = CRASH

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise FaultInjectionError(
                f"need 0 <= start < end, got [{self.start}, {self.end})"
            )
        if not self.multiplier > 0:
            raise FaultInjectionError(
                f"multiplier must be > 0 (or CRASH), got {self.multiplier}"
            )

    @property
    def is_crash(self) -> bool:
        return self.multiplier == CRASH


class FaultSchedule:
    """Non-overlapping fault windows for one server, sorted by start."""

    def __init__(self, windows: Iterable[FaultWindow] = ()) -> None:
        ordered = sorted(windows, key=lambda w: w.start)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start < earlier.end:
                raise FaultInjectionError(
                    f"fault windows overlap: [{earlier.start}, {earlier.end}) "
                    f"and [{later.start}, {later.end})"
                )
        self.windows: Tuple[FaultWindow, ...] = tuple(ordered)

    def _window_at(self, t: float) -> Optional[FaultWindow]:
        for window in self.windows:
            if window.start <= t < window.end:
                return window
            if window.start > t:
                break
        return None

    def multiplier_at(self, t: float) -> float:
        """Service-time multiplier in effect at time ``t`` (1.0 if healthy).

        Crash windows report 1.0 here: a crashed shard does not serve at
        all (see :meth:`crashed_at`), so no finite scaling applies.
        """
        window = self._window_at(t)
        if window is None or window.is_crash:
            return 1.0
        return window.multiplier

    def crashed_at(self, t: float) -> bool:
        """True if ``t`` falls inside a crash window."""
        window = self._window_at(t)
        return window is not None and window.is_crash

    @property
    def has_faults(self) -> bool:
        return bool(self.windows)

    @staticmethod
    def slowdown(start: float, end: float, multiplier: float) -> "FaultSchedule":
        """One slowdown interval — the common "one slow shard" case."""
        return FaultSchedule([FaultWindow(start, end, multiplier)])

    @staticmethod
    def crash(start: float, end: float) -> "FaultSchedule":
        """One crash/recovery interval."""
        return FaultSchedule([FaultWindow(start, end, CRASH)])

    def __repr__(self) -> str:
        return f"FaultSchedule({len(self.windows)} windows)"


class ClusterFaultPlan:
    """Per-shard fault schedules for a cluster run.

    Shards absent from the mapping are healthy. Replica (hedge) servers
    are intentionally *not* covered by the plan: a replica is a
    different machine, and that fault independence is exactly what
    hedged requests exploit.
    """

    def __init__(self, schedules: Optional[Dict[int, FaultSchedule]] = None) -> None:
        self.schedules: Dict[int, FaultSchedule] = dict(schedules or {})
        for shard_id, schedule in self.schedules.items():
            if not isinstance(schedule, FaultSchedule):
                raise FaultInjectionError(
                    f"shard {shard_id}: expected FaultSchedule, "
                    f"got {type(schedule).__name__}"
                )

    def schedule_for(self, shard_id: int) -> Optional[FaultSchedule]:
        return self.schedules.get(shard_id)

    @property
    def has_faults(self) -> bool:
        return any(s.has_faults for s in self.schedules.values())

    @staticmethod
    def slow_shard(
        shard_id: int, start: float, end: float, multiplier: float
    ) -> "ClusterFaultPlan":
        return ClusterFaultPlan(
            {shard_id: FaultSchedule.slowdown(start, end, multiplier)}
        )

    @staticmethod
    def generate(
        seed: int,
        n_shards: int,
        duration: float,
        slowdown_rate: float = 0.0,
        crash_rate: float = 0.0,
        slowdown_duration: float = 1.0,
        crash_duration: float = 0.5,
        multiplier_range: Sequence[float] = (2.0, 6.0),
    ) -> "ClusterFaultPlan":
        """Draw a random plan: per shard, Poisson fault arrivals.

        ``slowdown_rate`` / ``crash_rate`` are mean faults per shard per
        second of simulated time; windows that would overlap an earlier
        one on the same shard are skipped (keeping schedules valid while
        staying a pure function of the seed).
        """
        if n_shards < 1 or duration <= 0:
            raise FaultInjectionError("need n_shards >= 1 and duration > 0")
        if slowdown_rate < 0 or crash_rate < 0:
            raise FaultInjectionError("fault rates must be >= 0")
        lo, hi = float(multiplier_range[0]), float(multiplier_range[1])
        if not 0 < lo <= hi:
            raise FaultInjectionError("need 0 < multiplier lo <= hi")
        rng = make_rng(seed)
        schedules: Dict[int, FaultSchedule] = {}
        for shard_id in range(n_shards):
            windows: List[FaultWindow] = []
            for rate, width, crash in (
                (slowdown_rate, slowdown_duration, False),
                (crash_rate, crash_duration, True),
            ):
                if rate <= 0:
                    continue
                n_faults = int(rng.poisson(rate * duration))
                starts = sorted(rng.uniform(0.0, duration, size=n_faults))
                for start in starts:
                    end = min(float(start) + width, duration)
                    if end <= start:
                        continue
                    if any(w.start < end and start < w.end for w in windows):
                        continue
                    multiplier = CRASH if crash else float(rng.uniform(lo, hi))
                    windows.append(FaultWindow(float(start), end, multiplier))
            if windows:
                schedules[shard_id] = FaultSchedule(windows)
        return ClusterFaultPlan(schedules)

    def __repr__(self) -> str:
        return f"ClusterFaultPlan(shards={sorted(self.schedules)})"

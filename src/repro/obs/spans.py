"""Structured query-lifecycle spans and the tracer protocol.

Every query admitted to a simulated ISN can carry a
:class:`QueryTrace`: a typed tree of virtual-time-stamped spans covering
its whole lifecycle — ``queue`` (enqueue → dispatch), ``exec``
(dispatch → completion, containing one ``exec.phase`` child per gang
phase), plus instant events for the decisions taken along the way
(``degree_grant``, ``escalate``, ``shed``). Cluster queries carry the
aggregator-side counterpart: a ``cluster`` root with one
``cluster.shard`` child per shard attempt and events for hedge /
quorum / timeout outcomes.

Tracing is strictly opt-in. The server models hold a :class:`Tracer`
whose ``enabled`` flag gates *all* span construction: with the default
:data:`NULL_TRACER` no builder, span, or event object is ever
allocated, so fault-free untraced runs execute exactly the original
code path. With tracing on, span recording is read-only with respect to
simulation state (no RNG draws, no event scheduling), so results are
unchanged — the determinism regression tests pin both properties.

All timestamps are virtual-time seconds from the driving
:class:`~repro.sim.engine.Simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import SimulationError

# Span names (the taxonomy is documented in docs/architecture.md §10).
QUERY = "query"
QUEUE = "queue"
EXEC = "exec"
PHASE = "exec.phase"
CLUSTER = "cluster"
SHARD = "cluster.shard"

# Instant-event names.
EVENT_ENQUEUE = "enqueue"
EVENT_ADMIT = "admit"
EVENT_SHED = "shed"
EVENT_DEGREE_GRANT = "degree_grant"
EVENT_ESCALATE = "escalate"
EVENT_HEDGE = "hedge"
EVENT_FINALIZE = "finalize"


_EMPTY_ATTRS: Mapping[str, Any] = {}


class SpanEvent:
    """An instant (zero-duration) marker inside a span.

    Plain ``__slots__`` class rather than a dataclass: one is built per
    lifecycle decision of every traced query, so construction cost is
    the tracing overhead. Treat instances as immutable.
    """

    __slots__ = ("name", "time_s", "attrs")

    def __init__(
        self, name: str, time_s: float, attrs: Mapping[str, Any] = _EMPTY_ATTRS
    ) -> None:
        self.name = name
        self.time_s = time_s
        self.attrs = attrs

    def __repr__(self) -> str:
        return f"SpanEvent({self.name!r}, {self.time_s}, {dict(self.attrs)!r})"


class Span:
    """A closed interval of virtual time with typed children and events.

    Plain ``__slots__`` class for the same reason as :class:`SpanEvent`;
    treat instances as immutable once built.
    """

    __slots__ = ("name", "start_s", "end_s", "attrs", "children", "events")

    def __init__(
        self,
        name: str,
        start_s: float,
        end_s: float,
        attrs: Mapping[str, Any] = _EMPTY_ATTRS,
        children: Tuple["Span", ...] = (),
        events: Tuple[SpanEvent, ...] = (),
    ) -> None:
        self.name = name
        self.start_s = start_s
        self.end_s = end_s
        self.attrs = attrs
        self.children = children
        self.events = events

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, [{self.start_s}, {self.end_s}], "
            f"children={len(self.children)}, events={len(self.events)})"
        )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def child(self, name: str) -> Optional["Span"]:
        """First direct child with ``name`` (None if absent)."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def validate(self) -> None:
        """Check the span-algebra invariants, recursively.

        * ``start_s <= end_s`` (spans never run backwards);
        * children nest inside their parent's interval;
        * children appear in non-decreasing start order;
        * events fall inside the span's interval.

        Raises :class:`~repro.errors.SimulationError` on violation. The
        builders below only produce valid trees; ``validate`` exists so
        tests (and external trace consumers) can assert it.
        """
        if self.end_s < self.start_s:
            raise SimulationError(
                f"span {self.name!r} runs backwards: "
                f"[{self.start_s}, {self.end_s}]"
            )
        previous_start = self.start_s
        for span in self.children:
            if span.start_s < self.start_s or span.end_s > self.end_s:
                raise SimulationError(
                    f"child {span.name!r} [{span.start_s}, {span.end_s}] "
                    f"escapes parent {self.name!r} "
                    f"[{self.start_s}, {self.end_s}]"
                )
            if span.start_s < previous_start:
                raise SimulationError(
                    f"children of {self.name!r} are out of order at "
                    f"{span.name!r}"
                )
            previous_start = span.start_s
            span.validate()
        for event in self.events:
            if not self.start_s <= event.time_s <= self.end_s:
                raise SimulationError(
                    f"event {event.name!r} at {event.time_s} outside span "
                    f"{self.name!r} [{self.start_s}, {self.end_s}]"
                )


class QueryTrace:
    """The recorded lifecycle of one query at one server.

    ``outcome`` is ``"completed"`` or ``"shed:<reason>"``. For cluster
    traces (root span :data:`CLUSTER`) it is ``"full"``, ``"partial"``,
    or ``"failed"``. One is built per traced query (hot path), hence a
    plain ``__slots__`` class; treat instances as immutable.
    """

    __slots__ = ("trace_id", "query_index", "root", "outcome", "server_id")

    def __init__(
        self,
        trace_id: int,
        query_index: int,
        root: Span,
        outcome: str,
        server_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.query_index = query_index
        self.root = root
        self.outcome = outcome
        self.server_id = server_id

    def __repr__(self) -> str:
        return (
            f"QueryTrace(id={self.trace_id}, query_index={self.query_index}, "
            f"outcome={self.outcome!r}, server_id={self.server_id!r})"
        )

    @property
    def arrival_s(self) -> float:
        return self.root.start_s

    @property
    def completion_s(self) -> float:
        return self.root.end_s

    @property
    def latency_s(self) -> float:
        return self.root.duration_s

    @property
    def completed(self) -> bool:
        return self.outcome == "completed"

    @property
    def answered(self) -> bool:
        """Completed node query, or a cluster answer with any coverage."""
        return self.outcome in ("completed", "full", "partial")

    @property
    def shed_reason(self) -> Optional[str]:
        if self.outcome.startswith("shed:"):
            return self.outcome.split(":", 1)[1]
        return None

    def queue_delay_s(self) -> float:
        """Duration of the ``queue`` span (0.0 when shed before dispatch)."""
        queue = self.root.child(QUEUE)
        return queue.duration_s if queue is not None else 0.0

    def service_s(self) -> float:
        """Duration of the ``exec`` span (0.0 when never dispatched)."""
        execution = self.root.child(EXEC)
        return execution.duration_s if execution is not None else 0.0


class Tracer:
    """Tracer protocol: a sink for finished traces and timelines.

    The default implementation is a no-op with ``enabled = False``;
    instrumented code MUST consult ``enabled`` before building any span
    state so that untraced runs allocate nothing.
    """

    enabled: bool = False

    def on_run_start(self, meta: Mapping[str, Any]) -> None:
        """A new simulated run (load point) is starting."""

    def on_trace(self, trace: QueryTrace) -> None:
        """A query's trace is complete (completion or shed)."""

    def on_timeline(self, meta: Mapping[str, Any], rows: List[Dict[str, Any]]) -> None:
        """A run's sampled metric timeline is complete."""

    def on_lifecycle_event(
        self, name: str, time_s: float, attrs: Mapping[str, Any] = _EMPTY_ATTRS
    ) -> None:
        """A run-level control event fired (``control.adjust``,
        ``anomaly.alarm``, ``anomaly.degrade``, ``anomaly.recover``).

        Unlike ``on_trace`` these are not tied to a single query: they
        record the *system's* control decisions so traces can explain
        why a window of queries ran degraded."""


class NullTracer(Tracer):
    """Disabled tracer: zero allocation, zero behavior."""

    __slots__ = ()
    enabled = False


#: Shared disabled tracer; instrumented code defaults to this.
NULL_TRACER = NullTracer()


@dataclass
class TraceRun:
    """One simulated run's worth of recorded observability output."""

    meta: Dict[str, Any] = field(default_factory=dict)
    traces: List[QueryTrace] = field(default_factory=list)
    timeline: List[Dict[str, Any]] = field(default_factory=list)
    #: Run-level control/anomaly lifecycle events, in emission order.
    events: List[SpanEvent] = field(default_factory=list)


class RecordingTracer(Tracer):
    """In-memory tracer used by tests, the trace CLI, and ``--trace``.

    Traces are grouped into :class:`TraceRun` buckets, one per
    ``on_run_start`` call (a default bucket is created lazily for
    callers that never announce a run).
    """

    enabled = True

    def __init__(self) -> None:
        self.runs: List[TraceRun] = []

    def _current(self) -> TraceRun:
        if not self.runs:
            self.runs.append(TraceRun())
        return self.runs[-1]

    def on_run_start(self, meta: Mapping[str, Any]) -> None:
        self.runs.append(TraceRun(meta=dict(meta)))

    def on_trace(self, trace: QueryTrace) -> None:
        self._current().traces.append(trace)

    def on_timeline(self, meta: Mapping[str, Any], rows: List[Dict[str, Any]]) -> None:
        self._current().timeline.extend(rows)

    def on_lifecycle_event(
        self, name: str, time_s: float, attrs: Mapping[str, Any] = _EMPTY_ATTRS
    ) -> None:
        self._current().events.append(SpanEvent(name, time_s, dict(attrs)))

    @property
    def traces(self) -> List[QueryTrace]:
        """All traces across runs, in recording order."""
        return [trace for run in self.runs for trace in run.traces]

    @property
    def lifecycle_events(self) -> List[SpanEvent]:
        """All run-level lifecycle events across runs, in order."""
        return [event for run in self.runs for event in run.events]

    def clear(self) -> None:
        self.runs = []


class _PhaseState:
    """Open execution phase (mutable while the gang runs)."""

    __slots__ = ("start_s", "degree", "kind")

    def __init__(self, start_s: float, degree: int, kind: str) -> None:
        self.start_s = start_s
        self.degree = degree
        self.kind = kind


class QueryTraceBuilder:
    """Assembles a node-level :class:`QueryTrace` as the server acts.

    The server drives it through the lifecycle::

        enqueue (construction) -> shed(...)                 # dropped, or
                               -> degree_granted/phase_* -> completed(...)

    Only constructed when the server's tracer is enabled.
    """

    __slots__ = (
        "trace_id", "query_index", "server_id", "arrival_s",
        "_start_s", "_events", "_phases", "_open_phase", "_grant_attrs",
    )

    def __init__(
        self,
        trace_id: int,
        query_index: int,
        arrival_s: float,
        server_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.query_index = query_index
        self.server_id = server_id
        self.arrival_s = arrival_s
        self._start_s: Optional[float] = None
        self._events: List[SpanEvent] = [SpanEvent(EVENT_ENQUEUE, arrival_s)]
        self._phases: List[Span] = []
        self._open_phase: Optional[_PhaseState] = None
        self._grant_attrs: Dict[str, Any] = {}

    def degree_granted(
        self, time_s: float, requested: int, granted: int, free_cores: int
    ) -> None:
        """The head-of-queue query was admitted and sized."""
        self._start_s = time_s
        self._grant_attrs = {
            "requested": requested,
            "granted": granted,
            "free_cores": free_cores,
        }
        self._events.append(SpanEvent(EVENT_ADMIT, time_s))
        # The grant attrs are shared (not copied) with the exec span;
        # the builder never mutates them after this point.
        self._events.append(
            SpanEvent(EVENT_DEGREE_GRANT, time_s, self._grant_attrs)
        )

    def phase_started(self, time_s: float, degree: int, kind: str = "gang") -> None:
        self._open_phase = _PhaseState(time_s, degree, kind)

    def phase_ended(self, time_s: float) -> None:
        phase = self._open_phase
        if phase is None:
            raise SimulationError("phase_ended without an open phase")
        self._open_phase = None
        self._phases.append(
            Span(
                PHASE,
                phase.start_s,
                time_s,
                attrs={"degree": phase.degree, "kind": phase.kind},
            )
        )

    def escalated(self, time_s: float, target: int, actual: int) -> None:
        """The probe elapsed; the query widens to ``actual`` workers."""
        self._events.append(
            SpanEvent(EVENT_ESCALATE, time_s, {"target": target, "actual": actual})
        )

    def shed(self, time_s: float, reason: str) -> QueryTrace:
        """The query was dropped; returns the finished trace."""
        events = self._events + [SpanEvent(EVENT_SHED, time_s, {"reason": reason})]
        children: List[Span] = []
        if time_s > self.arrival_s or self._start_s is None:
            # Shed from the queue (admission happens at arrival time, in
            # which case the queue span is empty but still recorded).
            children.append(Span(QUEUE, self.arrival_s, time_s))
        root = Span(
            QUERY,
            self.arrival_s,
            time_s,
            attrs={"query_index": self.query_index},
            children=tuple(children),
            events=tuple(events),
        )
        return QueryTrace(
            trace_id=self.trace_id,
            query_index=self.query_index,
            root=root,
            outcome=f"shed:{reason}",
            server_id=self.server_id,
        )

    def completed(self, time_s: float) -> QueryTrace:
        """The query finished; returns the finished trace."""
        if self._start_s is None:
            raise SimulationError("completed() before degree_granted()")
        if self._open_phase is not None:
            raise SimulationError("completed() with an open phase")
        queue = Span(QUEUE, self.arrival_s, self._start_s)
        execution = Span(
            EXEC,
            self._start_s,
            time_s,
            attrs=self._grant_attrs,
            children=tuple(self._phases),
        )
        root = Span(
            QUERY,
            self.arrival_s,
            time_s,
            attrs={"query_index": self.query_index},
            children=(queue, execution),
            events=tuple(self._events),
        )
        return QueryTrace(
            trace_id=self.trace_id,
            query_index=self.query_index,
            root=root,
            outcome="completed",
            server_id=self.server_id,
        )


class ClusterTraceBuilder:
    """Assembles the aggregator-side trace of one fanned-out query.

    One ``cluster.shard`` child span is recorded per shard *attempt*
    (primary submit, and replica re-issue when hedged); attempts end at
    the response, shed, or — for attempts still outstanding when the
    aggregator answers — the finalize time, with the outcome attribute
    telling them apart.
    """

    __slots__ = ("trace_id", "arrival_s", "_attempts", "_events")

    def __init__(self, trace_id: int, arrival_s: float, n_shards: int) -> None:
        self.trace_id = trace_id
        self.arrival_s = arrival_s
        # (shard_id, replica) -> [start_s, end_s or None, outcome, query_index]
        self._attempts: Dict[Tuple[int, bool], List[Any]] = {}
        self._events: List[SpanEvent] = []

    def shard_submitted(
        self, time_s: float, shard_id: int, query_index: int, replica: bool = False
    ) -> None:
        self._attempts[(shard_id, replica)] = [time_s, None, "pending", query_index]

    def shard_responded(
        self, time_s: float, shard_id: int, replica: bool = False, won: bool = True
    ) -> None:
        attempt = self._attempts.get((shard_id, replica))
        if attempt is not None and attempt[1] is None:
            attempt[1] = time_s
            attempt[2] = "won" if won else "lost"

    def shard_shed(
        self, time_s: float, shard_id: int, reason: str, replica: bool = False
    ) -> None:
        attempt = self._attempts.get((shard_id, replica))
        if attempt is not None and attempt[1] is None:
            attempt[1] = time_s
            attempt[2] = f"shed:{reason}"

    def hedged(self, time_s: float, shard_ids: List[int]) -> None:
        self._events.append(
            SpanEvent(EVENT_HEDGE, time_s, {"shards": list(shard_ids)})
        )

    def finalized(
        self,
        time_s: float,
        outcome: str,
        n_responded: int,
        n_shards: int,
        timed_out: bool,
        quorum: Optional[int],
    ) -> QueryTrace:
        self._events.append(
            SpanEvent(
                EVENT_FINALIZE,
                time_s,
                {
                    "outcome": outcome,
                    "coverage": n_responded / n_shards,
                    "timed_out": timed_out,
                    "quorum": quorum,
                },
            )
        )
        children = []
        for (shard_id, replica), attempt in sorted(self._attempts.items()):
            start_s, end_s, status, query_index = attempt
            if end_s is None:  # still outstanding when the answer shipped
                end_s, status = time_s, "abandoned"
            children.append(
                Span(
                    SHARD,
                    start_s,
                    max(end_s, start_s),
                    attrs={
                        "shard": shard_id,
                        "replica": replica,
                        "outcome": status,
                        "query_index": query_index,
                    },
                )
            )
        children.sort(key=lambda span: (span.start_s, span.attrs["shard"]))
        root = Span(
            CLUSTER,
            self.arrival_s,
            max(time_s, self.arrival_s),
            children=tuple(children),
            events=tuple(self._events),
        )
        return QueryTrace(
            trace_id=self.trace_id,
            query_index=-1,  # cluster queries span one index per shard
            root=root,
            outcome=outcome,
        )

"""Terminal rendering of traces and timelines.

``python -m repro trace <id>`` uses these to show a per-query waterfall
(one bar row per span, indented by depth, scaled to the query's
lifetime) and a timeline summary (queue depth and busy cores over
virtual time via :mod:`repro.util.ascii_chart`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.spans import QueryTrace, Span
from repro.util.ascii_chart import line_chart


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def _attr_summary(attrs: Mapping[str, Any]) -> str:
    if not attrs:
        return ""
    parts = [f"{key}={value}" for key, value in attrs.items()]
    return " {" + ", ".join(parts) + "}"


def _waterfall_rows(
    span: Span, t0_s: float, window_s: float, width: int, depth: int,
    rows: List[str],
) -> None:
    lo = round((span.start_s - t0_s) / window_s * (width - 1))
    hi = round((span.end_s - t0_s) / window_s * (width - 1))
    bar = [" "] * width
    if hi == lo:
        bar[lo] = "|"
    else:
        bar[lo] = "["
        bar[hi] = "]"
        for col in range(lo + 1, hi):
            bar[col] = "="
    label = "  " * depth + span.name
    rows.append(
        f"{label:<24}{''.join(bar)}  {_fmt_ms(span.duration_s)}"
        f"{_attr_summary(span.attrs)}"
    )
    for child in span.children:
        _waterfall_rows(child, t0_s, window_s, width, depth + 1, rows)


def render_waterfall(trace: QueryTrace, width: int = 60) -> str:
    """One query's span tree as an indented bar waterfall."""
    if width < 10:
        raise ConfigurationError("waterfall width must be >= 10")
    root = trace.root
    window_s = max(root.duration_s, 1e-12)
    header = (
        f"trace {trace.trace_id} (query_index={trace.query_index}"
        + (f", server={trace.server_id}" if trace.server_id else "")
        + f") — {trace.outcome}, {_fmt_ms(trace.latency_s)} "
        f"[{root.start_s:.6f}s .. {root.end_s:.6f}s]"
    )
    rows: List[str] = [header]
    _waterfall_rows(root, root.start_s, window_s, width, 0, rows)
    events = [e for e in root.events]
    if events:
        rows.append("  events: " + ", ".join(
            f"{e.name}@{_fmt_ms(e.time_s - root.start_s)}"
            + (_attr_summary(e.attrs) if e.attrs else "")
            for e in events
        ))
    return "\n".join(rows)


def render_timeline(
    rows: Sequence[Mapping[str, Any]],
    fields: Sequence[str] = ("queue_depth", "busy_cores"),
    width: int = 64,
    height: int = 12,
    title: Optional[str] = None,
) -> str:
    """Timeline samples as a multi-series ASCII chart over virtual time."""
    if len(rows) < 2:
        return "(timeline has fewer than two samples; nothing to chart)"
    x = [float(row["t_s"]) for row in rows]
    series: Dict[str, List[float]] = {}
    for field in fields:
        if any(field in row for row in rows):
            series[field] = [float(row.get(field, 0.0)) for row in rows]
    if not series:
        raise ConfigurationError(
            f"none of {tuple(fields)} present in timeline rows"
        )
    return line_chart(
        x, series, width=width, height=height,
        title=title or "timeline", x_label="virtual time (s)", y_label="value",
    )


def summarize_traces(traces: Sequence[QueryTrace]) -> Dict[str, Any]:
    """Counts and span-derived aggregates over a batch of traces."""
    completed = [t for t in traces if t.completed]
    shed: Dict[str, int] = {}
    for trace in traces:
        reason = trace.shed_reason
        if reason is not None:
            shed[reason] = shed.get(reason, 0) + 1
    queue = [t.queue_delay_s() for t in completed]
    service = [t.service_s() for t in completed]
    n = len(completed)
    return {
        "n_traces": len(traces),
        "n_completed": n,
        "shed_by_reason": shed,
        "mean_queue_delay_s": sum(queue) / n if n else float("nan"),
        "mean_service_s": sum(service) / n if n else float("nan"),
        "mean_latency_s": (
            sum(t.latency_s for t in completed) / n if n else float("nan")
        ),
    }


def render_trace_report(
    traces: Sequence[QueryTrace],
    timeline_rows: Sequence[Mapping[str, Any]],
    n_waterfalls: int = 3,
    width: int = 60,
) -> str:
    """The ``repro trace`` output: summary, timeline, picked waterfalls.

    Waterfalls show the most informative completed queries: the slowest,
    the median, and the fastest (deduplicated when fewer exist).
    """
    lines: List[str] = []
    summary = summarize_traces(traces)
    lines.append(
        f"{summary['n_traces']} traces: {summary['n_completed']} completed"
        + (
            ", shed " + ", ".join(
                f"{count} ({reason})"
                for reason, count in sorted(summary["shed_by_reason"].items())
            )
            if summary["shed_by_reason"]
            else ""
        )
    )
    if summary["n_completed"]:
        lines.append(
            f"span-derived means: latency {_fmt_ms(summary['mean_latency_s'])} "
            f"= queue {_fmt_ms(summary['mean_queue_delay_s'])} "
            f"+ service {_fmt_ms(summary['mean_service_s'])}"
        )
    lines.append("")
    if timeline_rows:
        lines.append(render_timeline(timeline_rows))
        lines.append("")
    completed = sorted(
        (t for t in traces if t.answered), key=lambda t: t.latency_s
    )
    if completed:
        picks: List[QueryTrace] = [completed[-1]]  # slowest first
        if len(completed) > 2:
            picks.append(completed[len(completed) // 2])
        if len(completed) > 1:
            picks.append(completed[0])
        for trace in picks[:n_waterfalls]:
            lines.append(render_waterfall(trace, width=width))
            lines.append("")
    return "\n".join(lines)

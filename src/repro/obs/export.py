"""Exporting traces, timelines, and run manifests.

Traces and timelines are written as JSONL (one JSON object per line)
next to the experiment's result JSON, so a run's observability output
can be archived, diffed, and re-analyzed without re-simulating. The run
manifest records provenance — seed, scale, configuration hash, git
revision — and deliberately contains no wall-clock timestamp, so two
identical runs produce byte-identical manifests.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.obs.spans import QueryTrace, Span, SpanEvent
from repro.util.serde import to_jsonable


def span_to_jsonable(span: Span) -> Dict[str, Any]:
    """Serialize one span subtree to plain JSON types."""
    payload: Dict[str, Any] = {
        "name": span.name,
        "start_s": span.start_s,
        "end_s": span.end_s,
    }
    if span.attrs:
        payload["attrs"] = to_jsonable(dict(span.attrs))
    if span.events:
        payload["events"] = [_event_to_jsonable(e) for e in span.events]
    if span.children:
        payload["children"] = [span_to_jsonable(c) for c in span.children]
    return payload


def _event_to_jsonable(event: SpanEvent) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"name": event.name, "time_s": event.time_s}
    if event.attrs:
        payload["attrs"] = to_jsonable(dict(event.attrs))
    return payload


def trace_to_jsonable(trace: QueryTrace) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "trace_id": trace.trace_id,
        "query_index": trace.query_index,
        "outcome": trace.outcome,
        "root": span_to_jsonable(trace.root),
    }
    if trace.server_id is not None:
        payload["server_id"] = trace.server_id
    return payload


def _write_jsonl(objects: Iterable[Mapping[str, Any]], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for obj in objects:
            handle.write(json.dumps(obj, sort_keys=True))
            handle.write("\n")
    return path


def export_traces_jsonl(
    traces: Iterable[QueryTrace], path: Union[str, Path]
) -> Path:
    """Write one trace per line."""
    return _write_jsonl((trace_to_jsonable(t) for t in traces), path)


def export_timeline_jsonl(
    rows: Iterable[Mapping[str, Any]], path: Union[str, Path]
) -> Path:
    """Write one timeline sample row per line."""
    return _write_jsonl((to_jsonable(dict(r)) for r in rows), path)


def load_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a JSONL file back into a list of dicts."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def config_hash(config: Any) -> str:
    """Stable short hash of any serializable configuration object."""
    canonical = json.dumps(to_jsonable(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_revision(repo_dir: Optional[Union[str, Path]] = None) -> str:
    """Current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=str(repo_dir) if repo_dir is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def run_manifest(
    *,
    seed: int,
    scale: str,
    config: Any = None,
    experiments: Optional[List[str]] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the provenance manifest for one harness run."""
    manifest: Dict[str, Any] = {
        "seed": seed,
        "scale": scale,
        "config_hash": config_hash(config) if config is not None else None,
        "git_rev": git_revision(),
    }
    if experiments is not None:
        manifest["experiments"] = list(experiments)
    if extra:
        manifest.update(to_jsonable(dict(extra)))
    return manifest


def write_manifest(manifest: Mapping[str, Any], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(to_jsonable(dict(manifest)), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path

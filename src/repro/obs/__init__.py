"""Query-lifecycle observability: spans, metric timelines, export, render.

See docs/architecture.md §10 for the span taxonomy and the overhead
budget. The subsystem is strictly opt-in: with the default
:data:`~repro.obs.spans.NULL_TRACER`, instrumented code allocates
nothing and simulated results are bit-identical to the pre-obs code.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunObserver,
    TimelineSampler,
)
from repro.obs.spans import (
    NULL_TRACER,
    ClusterTraceBuilder,
    NullTracer,
    QueryTrace,
    QueryTraceBuilder,
    RecordingTracer,
    Span,
    SpanEvent,
    TraceRun,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunObserver",
    "TimelineSampler",
    "NULL_TRACER",
    "ClusterTraceBuilder",
    "NullTracer",
    "QueryTrace",
    "QueryTraceBuilder",
    "RecordingTracer",
    "Span",
    "SpanEvent",
    "TraceRun",
    "Tracer",
]

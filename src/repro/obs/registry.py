"""Metrics registry sampled on a virtual-time ticker.

:class:`MetricsRegistry` holds named counters, gauges, and histograms;
:class:`TimelineSampler` snapshots the registry at a fixed virtual-time
interval by scheduling read-only tick events on the driving simulator.
:class:`RunObserver` bundles a tracer with a registry and wires the
standard per-run instruments (queue depth, busy cores, cumulative
arrival/completion/shed counts, granted-degree mix) onto a server model.

Sampler ticks never mutate simulation state — they only read it — so a
traced run produces results bit-identical to an untraced one (pinned by
the determinism regression tests).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.spans import RecordingTracer, Tracer
from repro.util.validation import require_positive


class Counter:
    """Monotone event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease")
        self.value += n


class Gauge:
    """Point-in-time reading of a callable (sampled at ticks)."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]) -> None:
        self.name = name
        self.fn = fn

    def read(self) -> float:
        return self.fn()


class Histogram:
    """Fixed-bucket histogram with running sum / min / max.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches the rest.
    """

    __slots__ = ("name", "bounds", "counts", "total", "n", "min", "max")

    def __init__(self, name: str, bounds: Tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name!r} needs sorted, non-empty bucket bounds"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.n = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        index = 0
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            index = len(self.bounds)
        self.counts[index] += 1
        self.total += value
        self.n += 1
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def summary(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "mean": self.total / self.n if self.n else float("nan"),
            "min": self.min if self.n else float("nan"),
            "max": self.max if self.n else float("nan"),
            "buckets": {
                **{str(b): c for b, c in zip(self.bounds, self.counts)},
                "+inf": self.counts[-1],
            },
        }


class MetricsRegistry:
    """Named instruments, registered once and sampled together."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_fresh(name)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str, fn: Callable[[], float]) -> Gauge:
        if name in self._gauges:
            raise ConfigurationError(f"gauge {name!r} already registered")
        self._check_fresh(name)
        instrument = self._gauges[name] = Gauge(name, fn)
        return instrument

    def histogram(self, name: str, bounds: Tuple[float, ...]) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_fresh(name)
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    def _check_fresh(self, name: str) -> None:
        if name in self._counters or name in self._gauges or name in self._histograms:
            raise ConfigurationError(
                f"metric name {name!r} already used by another instrument type"
            )

    def sample(self) -> Dict[str, float]:
        """One timeline row: every gauge read, every counter's value."""
        row: Dict[str, float] = {}
        for name, gauge in self._gauges.items():
            row[name] = gauge.read()
        for name, counter in self._counters.items():
            row[name] = counter.value
        return row

    def snapshot(self) -> Dict[str, Any]:
        """Full end-of-run state, including histogram summaries."""
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.read() for n, g in self._gauges.items()},
            "histograms": {n: h.summary() for n, h in self._histograms.items()},
        }


class TimelineSampler:
    """Samples a registry every ``interval_s`` of virtual time.

    Ticks are plain simulator events that read instruments and append a
    row; they schedule nothing else and touch no simulation state.
    """

    def __init__(
        self,
        simulator: Any,
        registry: MetricsRegistry,
        interval_s: float,
        until_s: float,
        on_tick: Optional[Callable[[], None]] = None,
    ) -> None:
        require_positive(interval_s, "interval_s")
        self.simulator = simulator
        self.registry = registry
        self.interval_s = float(interval_s)
        self.until_s = float(until_s)
        self.on_tick = on_tick
        self.rows: List[Dict[str, Any]] = []
        self._installed = False

    def install(self) -> None:
        """Schedule the first tick (at the current virtual time)."""
        if self._installed:
            raise ConfigurationError("sampler already installed")
        self._installed = True
        self.simulator.schedule(0.0, self._tick)

    def _tick(self) -> None:
        if self.on_tick is not None:
            self.on_tick()
        row: Dict[str, Any] = {"t_s": self.simulator.now}
        row.update(self.registry.sample())
        self.rows.append(row)
        next_s = self.simulator.now + self.interval_s
        if next_s <= self.until_s:
            self.simulator.schedule(self.interval_s, self._tick)


#: Default number of timeline samples per run when no interval is given.
DEFAULT_SAMPLES_PER_RUN = 100


class RunObserver:
    """Per-run observability bundle: tracer + registry + sampler wiring.

    Pass one to :func:`repro.sim.experiment.run_load_point` (or set
    ``AdaptiveSearchSystem.tracer``, which builds one per point). The
    observer registers the standard node gauges, samples them on a
    virtual-time ticker, and hands the finished timeline to the tracer.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        sample_interval_s: Optional[float] = None,
    ) -> None:
        self.tracer: Tracer = tracer if tracer is not None else RecordingTracer()
        self.sample_interval_s = sample_interval_s
        self.registry = MetricsRegistry()
        self.sampler: Optional[TimelineSampler] = None
        self._meta: Dict[str, Any] = {}
        self._record_cursor = 0
        self._collector: Any = None

    def on_run_start(self, **meta: Any) -> None:
        self._meta = dict(meta)
        self.tracer.on_run_start(self._meta)

    def attach(self, simulator: Any, server: Any, collector: Any, horizon_s: float) -> None:
        """Wire the standard node instruments and start the ticker."""
        self._collector = collector
        registry = self.registry
        registry.gauge("queue_depth", lambda: server.queue_length)
        registry.gauge("busy_cores", lambda: server.n_cores - server.free_cores)
        registry.gauge("running", lambda: server.n_running)
        registry.gauge("arrivals", lambda: collector.n_arrivals)
        registry.gauge("completions", lambda: collector.n_completions)
        registry.gauge("shed", lambda: collector.n_shed)
        interval = self.sample_interval_s
        if interval is None:
            interval = horizon_s / DEFAULT_SAMPLES_PER_RUN
        self.sampler = TimelineSampler(
            simulator, registry, interval, horizon_s, on_tick=self._consume_records
        )
        self.sampler.install()

    def _consume_records(self) -> None:
        """Fold completion records seen since the last tick into the
        granted-degree histogram (read-only; the collector owns them)."""
        records = self._collector.records
        histogram = self.registry.histogram(
            "granted_degree", bounds=(1, 2, 3, 4, 6, 8, 12, 16)
        )
        while self._record_cursor < len(records):
            histogram.observe(records[self._record_cursor].degree)
            self._record_cursor += 1

    def finish(self) -> None:
        """Flush: one final record sweep, then emit the timeline."""
        if self._collector is not None:
            self._consume_records()
        rows = self.sampler.rows if self.sampler is not None else []
        self.tracer.on_timeline(self._meta, rows)

"""Policy interface and the system-state snapshot policies observe."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.errors import PolicyError


@dataclass(frozen=True)
class SystemState:
    """Snapshot of the ISN at a dispatch decision.

    Attributes
    ----------
    now:
        Simulation time (seconds).
    n_queued:
        Queries waiting in the dispatch queue (excluding the one being
        dispatched).
    n_running:
        Queries currently executing.
    free_cores:
        Idle cores at this instant (>= 1 at dispatch time).
    n_cores:
        Total cores of the ISN.
    n_shed:
        Queries this server has dropped so far (admission cap, deadline,
        or fault shedding). Zero on servers without robustness limits.
    overloaded:
        True when the server is actively shedding load (its dispatch
        queue sits at the admission cap, or the head-of-queue wait
        already exceeds the deadline). Policies may use this to bias
        toward sequential execution during overload.
    """

    now: float
    n_queued: int
    n_running: int
    free_cores: int
    n_cores: int
    n_shed: int = 0
    overloaded: bool = False

    @property
    def n_in_system(self) -> int:
        """Load measure used by the adaptive policy: the number of
        queries in the system *including* the one being dispatched."""
        return self.n_queued + self.n_running + 1

    @property
    def busy_cores(self) -> int:
        return self.n_cores - self.free_cores


@dataclass(frozen=True)
class QueryInfo:
    """What a policy may know about the query being dispatched.

    ``predicted_sequential_latency`` is filled by a predictor (the
    predictive-policy extension); ``true_sequential_latency`` is only
    available to the oracle policy.
    """

    query_id: Optional[int] = None
    n_terms: Optional[int] = None
    predicted_sequential_latency: Optional[float] = None
    true_sequential_latency: Optional[float] = None


class ParallelismPolicy(abc.ABC):
    """Chooses the parallelism degree for a query at dispatch time.

    Implementations must be side-effect free with respect to the
    simulation: the same (state, info) must always yield the same degree.
    """

    #: Human-readable policy label used in experiment tables.
    name: str = "policy"

    @abc.abstractmethod
    def choose_degree(self, state: SystemState, info: QueryInfo) -> int:
        """Return the requested degree (>= 1).

        The server clamps the request to the cores actually free, so a
        policy may request its ideal degree without tracking core
        availability itself.
        """

    def _validate(self, degree: int) -> int:
        if not isinstance(degree, int) or isinstance(degree, bool) or degree < 1:
            raise PolicyError(
                f"{self.name} produced invalid degree {degree!r}; must be int >= 1"
            )
        return degree

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

"""The paper's adaptive parallelism policy.

The policy observes one load signal — the number of queries in the
system (queued + running + the one being dispatched) — and maps it to a
parallelism degree through a precomputed, monotone **threshold table**:
wide parallelism while the system is lightly loaded, narrowing degrees
as load rises, and sequential execution near saturation. The table is
derived offline from the measured speedup/efficiency profile (see
:mod:`repro.policies.derivation`), so the runtime decision is a
constant-time lookup — cheap enough to sit on the dispatch path of every
query, which is what makes the scheme practical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import PolicyError
from repro.policies.base import ParallelismPolicy, QueryInfo, SystemState


@dataclass(frozen=True)
class ThresholdTable:
    """Monotone mapping from queries-in-system to parallelism degree.

    ``entries`` is a sequence of ``(max_in_system, degree)`` pairs with
    strictly increasing limits and strictly decreasing degrees; a load of
    ``n`` selects the first entry whose limit is >= n. Loads beyond the
    last limit run sequentially.

    >>> table = ThresholdTable.from_pairs([(1, 12), (2, 6), (4, 3), (8, 2)])
    >>> [table.degree_for(n) for n in (1, 2, 3, 5, 9)]
    [12, 6, 3, 2, 1]
    """

    entries: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise PolicyError("threshold table must have at least one entry")
        last_limit = 0
        last_degree = None
        for limit, degree in self.entries:
            if not isinstance(limit, int) or limit <= last_limit:
                raise PolicyError(
                    f"limits must be strictly increasing ints, got {self.entries!r}"
                )
            if not isinstance(degree, int) or degree < 1:
                raise PolicyError(f"degrees must be ints >= 1, got {self.entries!r}")
            if last_degree is not None and degree >= last_degree:
                raise PolicyError(
                    "degrees must be strictly decreasing with load, got "
                    f"{self.entries!r}"
                )
            last_limit = limit
            last_degree = degree

    @staticmethod
    def from_pairs(pairs: Sequence[Tuple[int, int]]) -> "ThresholdTable":
        return ThresholdTable(entries=tuple((int(a), int(b)) for a, b in pairs))

    def degree_for(self, n_in_system: int) -> int:
        if n_in_system < 1:
            raise PolicyError(f"n_in_system must be >= 1, got {n_in_system}")
        for limit, degree in self.entries:
            if n_in_system <= limit:
                return degree
        return 1

    @property
    def max_degree(self) -> int:
        return self.entries[0][1]

    def describe(self) -> str:
        parts: List[str] = []
        prev = 0
        for limit, degree in self.entries:
            low = prev + 1
            span = f"{low}" if low == limit else f"{low}-{limit}"
            parts.append(f"n={span}→p={degree}")
            prev = limit
        parts.append(f"n>{prev}→p=1")
        return ", ".join(parts)


class AdaptivePolicy(ParallelismPolicy):
    """Load-threshold adaptive degree selection (the paper's policy)."""

    def __init__(self, table: ThresholdTable) -> None:
        self.table = table
        self.name = "adaptive"

    def choose_degree(self, state: SystemState, info: QueryInfo) -> int:
        return self._validate(self.table.degree_for(state.n_in_system))

    def __repr__(self) -> str:
        return f"AdaptivePolicy({self.table.describe()})"

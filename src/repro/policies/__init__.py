"""Parallelism-degree selection policies (the paper's contribution).

A policy decides, at the moment a query begins execution, how many
worker threads it gets. The paper's **adaptive** policy keys the
decision on instantaneous system load; fixed-degree and sequential
policies are the baselines it is compared against, and the oracle,
predictive, and incremental policies are upper-bound / extension
variants.
"""

from repro.policies.adaptive import AdaptivePolicy, ThresholdTable
from repro.policies.base import ParallelismPolicy, QueryInfo, SystemState
from repro.policies.derivation import derive_threshold_table
from repro.policies.fixed import FixedPolicy, SequentialPolicy
from repro.policies.incremental import IncrementalPolicy
from repro.policies.oracle import OraclePolicy
from repro.policies.predictive import PredictivePolicy
from repro.policies.predictor import QueryLatencyPredictor

__all__ = [
    "AdaptivePolicy",
    "ThresholdTable",
    "ParallelismPolicy",
    "QueryInfo",
    "SystemState",
    "derive_threshold_table",
    "FixedPolicy",
    "SequentialPolicy",
    "IncrementalPolicy",
    "OraclePolicy",
    "PredictivePolicy",
    "QueryLatencyPredictor",
]

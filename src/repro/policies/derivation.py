"""Offline derivation of the adaptive policy's threshold table.

The derivation captures the paper's reasoning about when parallelism
pays off:

* with ``n`` queries in the system, each query's fair share of the ISN
  is ``n_cores / n`` cores — requesting more than the share steals
  capacity from concurrent queries and inflates queueing delay;
* within that share, pick the degree with the best measured speedup
  (speedup curves are sublinear and can plateau, so "largest allowed"
  is not always best);
* parallelism below a minimum gain (default 5%) is not worth its
  overhead: fall back to sequential execution.

Because the share shrinks monotonically with load, the resulting table
is monotone (degree non-increasing in load) by construction, which the
:class:`~repro.policies.adaptive.ThresholdTable` validates again.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple

from repro.errors import PolicyError
from repro.policies.adaptive import ThresholdTable
from repro.util.validation import require_int_in_range, require_positive


class SpeedupCurve(Protocol):
    """Anything exposing a mean speedup per degree (measured profile or
    parametric model)."""

    def speedup(self, degree: int) -> float:  # pragma: no cover - protocol
        ...


def _best_degree(
    curve: SpeedupCurve, allowed: Sequence[int], min_gain: float
) -> int:
    """Degree with the best speedup among ``allowed``; ties favor the
    smaller degree; parallelism below ``min_gain`` falls back to 1."""
    best_p, best_s = 1, 1.0
    for p in allowed:
        if p == 1:
            continue
        s = curve.speedup(p)
        if s > best_s + 1e-12:
            best_p, best_s = p, s
    if best_s < min_gain:
        return 1
    return best_p


def scale_table(table: ThresholdTable, factor: float) -> ThresholdTable:
    """Scale the load limits of ``table`` by ``factor``.

    ``factor > 1`` keeps parallelism alive at higher loads; ``< 1`` backs
    off earlier. The analytic fair-share derivation below is
    conservative — it sizes degrees as if the instantaneous queue were
    permanent, while in a stochastic queue the load fluctuates below its
    mean — so the deployed table is typically the derived one stretched
    by an empirically tuned factor (the paper tunes its thresholds
    against the live system; :func:`repro.core.calibration.
    calibrate_threshold_scale` reproduces that step in simulation).

    Scaled limits are rounded and deduplicated while preserving the
    degree ordering, so the result is always a valid monotone table.
    """
    require_positive(factor, "factor")
    entries: List[Tuple[int, int]] = []
    last_limit = 0
    for limit, degree in table.entries:
        scaled = max(last_limit + 1, int(round(limit * factor)))
        entries.append((scaled, degree))
        last_limit = scaled
    return ThresholdTable.from_pairs(entries)


def derive_threshold_table(
    curve: SpeedupCurve,
    n_cores: int,
    degrees: Optional[Sequence[int]] = None,
    min_gain: float = 1.05,
) -> ThresholdTable:
    """Derive the adaptive policy's table from a speedup curve.

    Parameters
    ----------
    curve:
        A measured :class:`~repro.profiles.speedup.SpeedupProfile` or a
        :class:`~repro.profiles.speedup.ParametricSpeedup`.
    n_cores:
        Core count of the ISN.
    degrees:
        Candidate degrees the runtime supports. Defaults to the curve's
        measured degrees when available.
    min_gain:
        Minimum mean speedup for parallel execution to be worthwhile.
    """
    require_int_in_range(n_cores, "n_cores", low=1)
    require_positive(min_gain, "min_gain")
    if degrees is None:
        degrees = getattr(curve, "degrees", None)
        if degrees is None:
            raise PolicyError(
                "degrees must be given explicitly for curves without a "
                "measured degree set"
            )
    candidate_degrees = sorted(set(int(p) for p in degrees))
    if any(p < 1 for p in candidate_degrees):
        raise PolicyError("candidate degrees must be >= 1")
    candidate_degrees = [p for p in candidate_degrees if p <= n_cores]
    if not candidate_degrees:
        raise PolicyError("no candidate degree fits within n_cores")

    # degree(n) for each queries-in-system level n.
    chosen: List[int] = []
    for n in range(1, n_cores + 1):
        share = n_cores // n
        allowed = [p for p in candidate_degrees if p <= max(share, 1)]
        chosen.append(_best_degree(curve, allowed, min_gain))

    # Compress runs of equal degree into (limit, degree) entries,
    # dropping the trailing degree-1 region (it is the table's fallback).
    entries: List[Tuple[int, int]] = []
    run_degree = chosen[0]
    for n in range(2, n_cores + 1):
        if chosen[n - 1] != run_degree:
            if run_degree > 1:
                entries.append((n - 1, run_degree))
            run_degree = chosen[n - 1]
    if run_degree > 1:
        entries.append((n_cores, run_degree))

    if not entries:
        # Parallelism never pays off: a degenerate single-entry table
        # that always selects sequential execution.
        entries = [(1, 1)]
    return ThresholdTable.from_pairs(entries)

"""Predictive parallelism (extension).

Combines the paper's load-adaptive thresholds with a per-query length
prediction: queries predicted to be short run sequentially (they gain
nothing from extra workers and their parallel execution wastes CPU),
while predicted-long queries use the load-selected degree. This is the
direction the authors pursued in follow-up work; here it serves as an
ablation between plain adaptive and the clairvoyant oracle.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.policies.adaptive import AdaptivePolicy, ThresholdTable
from repro.policies.base import QueryInfo, SystemState
from repro.util.validation import require_positive


class PredictivePolicy(AdaptivePolicy):
    """Adaptive thresholds gated by *predicted* query length."""

    def __init__(self, table: ThresholdTable, long_query_cutoff: float) -> None:
        super().__init__(table)
        require_positive(long_query_cutoff, "long_query_cutoff")
        self.long_query_cutoff = float(long_query_cutoff)
        self.name = "predictive"

    def choose_degree(self, state: SystemState, info: QueryInfo) -> int:
        if info.predicted_sequential_latency is None:
            raise PolicyError(
                "PredictivePolicy requires predicted_sequential_latency in "
                "QueryInfo (annotate the workload with QueryLatencyPredictor)"
            )
        if info.predicted_sequential_latency < self.long_query_cutoff:
            return 1
        return self._validate(self.table.degree_for(state.n_in_system))

"""Baseline policies: sequential execution and fixed parallelism.

These are the configurations the paper compares adaptive parallelism
against: ``SequentialPolicy`` is the classic throughput-optimal ISN
configuration; ``FixedPolicy(p)`` parallelizes every query at degree
``p`` regardless of load (latency-optimal at low load, but it saturates
early because every query pays the work-inflation tax).
"""

from __future__ import annotations

from repro.policies.base import ParallelismPolicy, QueryInfo, SystemState
from repro.util.validation import require_int_in_range


class FixedPolicy(ParallelismPolicy):
    """Every query runs at the same degree."""

    def __init__(self, degree: int) -> None:
        require_int_in_range(degree, "degree", low=1)
        self.degree = degree
        self.name = f"fixed-{degree}"

    def choose_degree(self, state: SystemState, info: QueryInfo) -> int:
        return self.degree


class SequentialPolicy(FixedPolicy):
    """Every query runs sequentially (degree 1)."""

    def __init__(self) -> None:
        super().__init__(1)
        self.name = "sequential"

"""Online degree-threshold control: close the loop the paper leaves open.

The paper's adaptive policy maps instantaneous load to a degree through
a threshold table derived **offline** from a stationary profile. Under
regime shifts (diurnal swings, flash crowds, attacks) the offline table
is mis-calibrated exactly when it matters: thresholds tuned for the
average regime over-parallelize during overload and under-parallelize
when the machine is idle.

This module keeps the paper's constant-time dispatch decision but makes
the *calibration* a runtime quantity:

* :class:`OnlineAdaptivePolicy` wraps a
  :class:`~repro.policies.adaptive.ThresholdTable` with two runtime
  knobs — a **threshold scale** (``scale < 1`` inflates the perceived
  load, narrowing degrees earlier; ``scale > 1`` relaxes it) and a
  **max-degree cap** (a degradation-mode clamp). Dispatch stays a table
  lookup.
* :class:`OnlineDegreeController` is the feedback loop: every control
  window it reads windowed tail latency and shed rate from the run's
  :class:`~repro.sim.metrics.MetricsCollector` and nudges the knobs —
  with a *deadband* (hysteresis) around the tail-latency setpoint and a
  *bounded multiplicative step*, so the loop is stable under noisy
  feedback instead of chattering.

The controller mutates only its policy and the server's admission cap;
it draws randomness (optional tick jitter, which desynchronizes control
ticks from periodic load structure) exclusively from an explicit
:class:`~repro.util.rng.RngFactory` named stream, keeping runs
bit-identical for a given seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from numbers import Real
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.core.clock import SchedulerProtocol
from repro.errors import ConfigurationError
from repro.obs.spans import NULL_TRACER, Tracer
from repro.policies.adaptive import ThresholdTable
from repro.policies.base import ParallelismPolicy, QueryInfo, SystemState
from repro.util.rng import RngFactory
from repro.util.validation import (
    require,
    require_in_range,
    require_int_in_range,
    require_positive,
)


class OnlineAdaptivePolicy(ParallelismPolicy):
    """Threshold-table policy with runtime-adjustable calibration.

    With ``scale == 1`` and an unconstrained cap this is exactly the
    offline :class:`~repro.policies.adaptive.AdaptivePolicy` decision
    (pinned by tests). The controller moves ``scale`` within configured
    bounds; the anomaly guard may additionally cap the degree during
    degradation.
    """

    def __init__(self, table: ThresholdTable) -> None:
        self.table = table
        self.name = "online-adaptive"
        self._scale = 1.0
        self._max_degree_cap = table.max_degree

    @property
    def scale(self) -> float:
        """Current threshold scale (1.0 = the offline calibration)."""
        return self._scale

    @property
    def max_degree_cap(self) -> int:
        """Current degradation cap on granted degrees."""
        return self._max_degree_cap

    def apply_control(
        self,
        scale: Optional[float] = None,
        max_degree_cap: Optional[int] = None,
    ) -> None:
        """Install new control outputs (validated; partial updates ok)."""
        if scale is not None:
            if not isinstance(scale, Real) or not math.isfinite(scale) or scale <= 0:
                raise ConfigurationError(
                    f"scale must be a finite number > 0, got {scale!r}"
                )
            self._scale = float(scale)
        if max_degree_cap is not None:
            require_int_in_range(
                max_degree_cap, "max_degree_cap", low=1,
                high=self.table.max_degree,
            )
            self._max_degree_cap = max_degree_cap

    def choose_degree(self, state: SystemState, info: QueryInfo) -> int:
        # Scaling the load measure is equivalent to scaling every table
        # limit but keeps the lookup exact on integer loads: perceived
        # load is n/scale, so scale < 1 reaches the narrow-degree rows
        # of the table at lower true load.
        n_effective = max(1, int(math.ceil(state.n_in_system / self._scale)))
        degree = self.table.degree_for(n_effective)
        return self._validate(min(degree, self._max_degree_cap))

    def __repr__(self) -> str:
        return (
            f"OnlineAdaptivePolicy(scale={self._scale:.3f}, "
            f"cap={self._max_degree_cap}, {self.table.describe()})"
        )


@dataclass(frozen=True)
class OnlineControllerConfig:
    """Feedback-loop parameters for :class:`OnlineDegreeController`.

    ``target_p99_s`` is the tail-latency setpoint (normally the SLO);
    the controller leaves the policy alone while windowed P99 stays
    inside ``target · (1 ± deadband)`` — the hysteresis band that
    prevents limit cycles — and otherwise moves the threshold scale by
    at most a factor of ``(1 ± step)`` per window, clamped to
    ``[min_scale, max_scale]``.
    """

    target_p99_s: float
    window_s: float
    step: float = 0.25
    deadband: float = 0.15
    min_scale: float = 0.25
    max_scale: float = 2.0
    #: Shed-rate level treated as overload regardless of observed P99
    #: (under deep overload completions are censored survivors: the
    #: queries that would have dragged P99 up were shed, so the latency
    #: signal alone under-reports distress).
    shed_rate_high: float = 0.05
    #: Minimum windowed completions before the latency signal is
    #: trusted; windows with fewer observations leave the knobs alone.
    min_samples: int = 8
    #: Optional uniform jitter on tick spacing, as a fraction of
    #: ``window_s`` (0 = strictly periodic ticks). Jitter draws come
    #: from the controller's named RNG stream.
    jitter_fraction: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.target_p99_s, "target_p99_s")
        require_positive(self.window_s, "window_s")
        require_in_range(
            self.step, "step", low=0.0, high=1.0,
            low_inclusive=False, high_inclusive=False,
        )
        require_in_range(
            self.deadband, "deadband", low=0.0, high=1.0, high_inclusive=False
        )
        require_positive(self.min_scale, "min_scale")
        require(
            self.max_scale >= self.min_scale,
            f"max_scale ({self.max_scale}) must be >= min_scale "
            f"({self.min_scale})",
        )
        require_in_range(
            self.shed_rate_high, "shed_rate_high", low=0.0, high=1.0,
            low_inclusive=False,
        )
        require_int_in_range(self.min_samples, "min_samples", low=1)
        require_in_range(
            self.jitter_fraction, "jitter_fraction", low=0.0, high=0.5
        )


@dataclass(frozen=True)
class ControlDecision:
    """One control-tick record (kept for tests and offline analysis)."""

    time_s: float
    p99_s: float  # windowed observed P99 (nan when too few samples)
    shed_rate: float  # windowed shed fraction of demand
    n_completed: int
    n_shed: int
    scale: float  # scale in force *after* this tick
    action: str  # "tighten" | "relax" | "hold"


class OnlineDegreeController:
    """Windowed tail-latency/shed-rate feedback onto an online policy.

    Attach one to a run via
    :func:`repro.sim.experiment.run_load_point`'s ``controllers``
    argument. Each tick it reads the completions and sheds recorded by
    the run's :class:`~repro.sim.metrics.MetricsCollector` since the
    previous tick — the same accounting the obs metric timelines sample
    — computes windowed P99 and shed rate, and applies a bounded,
    hysteresis-guarded multiplicative update to the policy's threshold
    scale. Decisions are recorded in :attr:`decisions` and emitted as
    ``control.adjust`` lifecycle events on the tracer.
    """

    def __init__(
        self,
        policy: OnlineAdaptivePolicy,
        config: OnlineControllerConfig,
        streams: Optional[RngFactory] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if not isinstance(policy, OnlineAdaptivePolicy):
            raise ConfigurationError(
                "OnlineDegreeController requires an OnlineAdaptivePolicy, "
                f"got {type(policy).__name__}"
            )
        if config.jitter_fraction > 0.0 and streams is None:
            raise ConfigurationError(
                "jitter_fraction > 0 requires an RngFactory (the "
                "controller never draws from an implicit global stream)"
            )
        self.policy = policy
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._jitter_rng = (
            streams.stream("controller", "jitter")
            if streams is not None and config.jitter_fraction > 0.0
            else None
        )
        self.decisions: List[ControlDecision] = []
        # The driving event loop, seen only through the kernel's clock/
        # scheduler protocol: the controller reads time and schedules
        # ticks, and never learns whether the seconds are virtual or wall.
        self._clock: Optional[SchedulerProtocol] = None
        self._collector: Any = None
        self._horizon_s = 0.0
        self._record_cursor = 0
        self._shed_cursor = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(
        self, simulator: SchedulerProtocol, server: Any, collector: Any,
        horizon_s: float,
    ) -> None:
        """Schedule control ticks on the driving event loop (any
        SchedulerProtocol: the virtual-time simulator or a wall-clock
        runtime adapter)."""
        del server  # the degree controller acts through the policy only
        self._clock = simulator
        self._collector = collector
        self._horizon_s = float(horizon_s)
        simulator.schedule(self._tick_delay_s(), self._tick)

    def _tick_delay_s(self) -> float:
        delay_s = self.config.window_s
        if self._jitter_rng is not None:
            spread = self.config.jitter_fraction * self.config.window_s
            delay_s += float(self._jitter_rng.uniform(-spread, spread))
        return delay_s

    # ------------------------------------------------------------------
    # Control law
    # ------------------------------------------------------------------

    def _window_feedback(self) -> Tuple[float, float, int, int]:
        """(p99_s, shed_rate, n_completed, n_shed) since the last tick."""
        records = self._collector.records
        fresh = records[self._record_cursor:]
        self._record_cursor = len(records)
        n_shed_total = self._collector.n_shed
        n_shed = n_shed_total - self._shed_cursor
        self._shed_cursor = n_shed_total
        n_completed = len(fresh)
        demand = n_completed + n_shed
        shed_rate = n_shed / demand if demand else 0.0
        if n_completed >= self.config.min_samples:
            latencies = np.asarray([r.latency for r in fresh], dtype=np.float64)
            p99_s = float(np.percentile(latencies, 99))
        else:
            p99_s = float("nan")
        return p99_s, shed_rate, n_completed, n_shed

    def _tick(self) -> None:
        config = self.config
        p99_s, shed_rate, n_completed, n_shed = self._window_feedback()
        high_bar_s = config.target_p99_s * (1.0 + config.deadband)
        low_bar_s = config.target_p99_s * (1.0 - config.deadband)
        overloaded = shed_rate > config.shed_rate_high or (
            not math.isnan(p99_s) and p99_s > high_bar_s
        )
        calm = (
            shed_rate == 0.0
            and not math.isnan(p99_s)
            and p99_s < low_bar_s
        )
        scale = self.policy.scale
        if overloaded:
            action = "tighten"
            scale = max(config.min_scale, scale * (1.0 - config.step))
        elif calm:
            action = "relax"
            scale = min(config.max_scale, scale * (1.0 + config.step))
        else:
            action = "hold"
        if action != "hold":
            self.policy.apply_control(scale=scale)
        now_s = self._clock.now
        self.decisions.append(
            ControlDecision(
                time_s=now_s,
                p99_s=p99_s,
                shed_rate=shed_rate,
                n_completed=n_completed,
                n_shed=n_shed,
                scale=self.policy.scale,
                action=action,
            )
        )
        if self.tracer.enabled and action != "hold":
            self.tracer.on_lifecycle_event(
                "control.adjust",
                now_s,
                {
                    "action": action,
                    "scale": self.policy.scale,
                    "p99_s": p99_s,
                    "shed_rate": shed_rate,
                },
            )
        next_delay_s = self._tick_delay_s()
        if now_s + next_delay_s <= self._horizon_s:
            self._clock.schedule(next_delay_s, self._tick)


__all__ = [
    "OnlineAdaptivePolicy",
    "OnlineControllerConfig",
    "OnlineDegreeController",
    "ControlDecision",
]

"""Oracle policy: per-query upper bound on adaptive parallelism.

The adaptive policy parallelizes *every* query at the load-selected
degree, even short ones that gain nothing from extra workers. The oracle
knows each query's true sequential latency and only parallelizes queries
long enough to benefit, so it upper-bounds what any length-aware scheme
(e.g. the predictive extension) can achieve.
"""

from __future__ import annotations

from repro.errors import PolicyError
from repro.policies.adaptive import AdaptivePolicy, ThresholdTable
from repro.policies.base import QueryInfo, SystemState
from repro.util.validation import require_positive


class OraclePolicy(AdaptivePolicy):
    """Adaptive thresholds gated by the query's *true* length."""

    def __init__(self, table: ThresholdTable, long_query_cutoff: float) -> None:
        super().__init__(table)
        require_positive(long_query_cutoff, "long_query_cutoff")
        self.long_query_cutoff = float(long_query_cutoff)
        self.name = "oracle"

    def choose_degree(self, state: SystemState, info: QueryInfo) -> int:
        if info.true_sequential_latency is None:
            raise PolicyError(
                "OraclePolicy requires true_sequential_latency in QueryInfo"
            )
        if info.true_sequential_latency < self.long_query_cutoff:
            return 1
        return self._validate(self.table.degree_for(state.n_in_system))

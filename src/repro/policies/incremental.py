"""Incremental ("few-to-many") parallelism (extension).

Rather than committing a degree at dispatch, start every query
sequentially and *escalate* to the load-selected degree only if it is
still running after a probe interval. Short queries — the majority —
finish inside the probe and never pay parallel overhead; long queries
lose only the probe time relative to immediate parallelism. This
approximates the few-to-many idea from the authors' follow-up work.

Mechanically the policy is an :class:`AdaptivePolicy` whose chosen
degree applies to the *escalation phase*; the simulated server detects
the ``probe_time`` attribute and builds a two-phase job (see
``repro.sim.server``). The escalated phase's duration is scaled from
the measured degree-``p`` latency by the fraction of sequential work
remaining — an approximation, stated in DESIGN.md, that preserves the
policy's first-order behaviour (short queries avoid the parallelism tax
entirely).
"""

from __future__ import annotations

from repro.policies.adaptive import AdaptivePolicy, ThresholdTable
from repro.policies.base import QueryInfo, SystemState
from repro.util.validation import require_positive


class IncrementalPolicy(AdaptivePolicy):
    """Sequential probe, then load-adaptive escalation."""

    def __init__(self, table: ThresholdTable, probe_time: float) -> None:
        super().__init__(table)
        require_positive(probe_time, "probe_time")
        self.probe_time = float(probe_time)
        self.name = "incremental"

    def choose_degree(self, state: SystemState, info: QueryInfo) -> int:
        """Degree used *if* the query escalates after the probe."""
        return self._validate(self.table.degree_for(state.n_in_system))

"""Query service-time prediction from pre-execution features.

A small ridge regression on log-latency, using only features available
*before* executing the query (term count, posting-list statistics, and
the plan's candidate-chunk count — all metadata lookups). This powers
the predictive-parallelism extension: parallelize only queries predicted
to be long, approximating the oracle without clairvoyance.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.engine.executor import Engine
from repro.engine.query import Query
from repro.errors import PolicyError
from repro.util.validation import require_in_range


def _features(engine: Engine, query: Query) -> np.ndarray:
    """Pre-execution feature vector for one query."""
    lexicon = engine.index.lexicon
    dfs = [lexicon.doc_frequency(t) for t in query.term_ids]
    min_df = min(dfs) if dfs else 0
    sum_df = sum(dfs)
    plan = engine.plan(query)
    return np.asarray(
        [
            1.0,
            float(query.n_terms),
            np.log1p(min_df),
            np.log1p(sum_df),
            np.log1p(plan.n_candidate_chunks),
        ],
        dtype=np.float64,
    )


class QueryLatencyPredictor:
    """Ridge regression on log sequential latency."""

    def __init__(self, ridge: float = 1e-3) -> None:
        require_in_range(ridge, "ridge", low=0.0)
        self.ridge = float(ridge)
        self._coef: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        return self._coef is not None

    def fit(
        self,
        engine: Engine,
        queries: Sequence[Query],
        sequential_latencies: Sequence[float],
    ) -> "QueryLatencyPredictor":
        """Fit on a training sample of (query, measured t1) pairs."""
        y = np.asarray(sequential_latencies, dtype=np.float64)
        if len(queries) != y.shape[0] or y.size == 0:
            raise PolicyError("queries and latencies must be equal-length, non-empty")
        if np.any(y <= 0):
            raise PolicyError("latencies must be positive")
        design = np.stack([_features(engine, q) for q in queries])
        target = np.log(y)
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        self._coef = np.linalg.solve(gram, design.T @ target)
        return self

    def predict(self, engine: Engine, query: Query) -> float:
        """Predicted sequential latency (seconds)."""
        if self._coef is None:
            raise PolicyError("predictor is not fitted")
        return float(np.exp(_features(engine, query) @ self._coef))

    def predict_many(self, engine: Engine, queries: Sequence[Query]) -> np.ndarray:
        if self._coef is None:
            raise PolicyError("predictor is not fitted")
        design = np.stack([_features(engine, q) for q in queries])
        return np.exp(design @ self._coef)

    @staticmethod
    def r_squared(predicted: np.ndarray, actual: np.ndarray) -> float:
        """Goodness of fit in log space."""
        lp, la = np.log(predicted), np.log(actual)
        ss_res = float(((lp - la) ** 2).sum())
        ss_tot = float(((la - la.mean()) ** 2).sum())
        return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0

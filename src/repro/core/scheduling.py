"""Pure scheduling-kernel decisions: admission, deadline, degree, phases.

These are the decision rules of the paper's index-serving node,
extracted from the simulator driver so they are *clock-agnostic and
pure*: every function is a deterministic map from explicit arguments to
a value, reads no clocks (timestamps arrive as plain floats captured by
the driver), performs no I/O, and mutates nothing. The same functions
will back the live wall-clock runtime; reprolint's R014/R017 hold this
module to that contract.

The driver (``sim/server.py`` today, the asyncio front door next)
retains ownership of all mutable state — queues, core accounting,
knobs like ``max_queue_length`` that the anomaly guard retunes at
runtime — and consults these functions at each decision point:

* :func:`admission_decision` — shed-at-arrival (class-based shedding,
  queue-length admission control);
* :func:`deadline_exceeded` — shed-at-dispatch when the remaining SLO
  budget cannot cover the expected sequential service time;
* :func:`observe_state` — the :class:`SystemState` snapshot policies
  decide from;
* :func:`grant_degree` — clamp a policy's requested degree to free
  cores, the measured degree grid, and (optionally) the plan size;
* :func:`plan_initial_phase` / :func:`plan_escalation` — gang vs.
  few-to-many phase planning, as an inert :class:`PhasePlan` value the
  driver executes.

Oracle access is injected as plain callables (``clamp_degree``,
``parallel_latency``) so the kernel stays independent of the profile
machinery's types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Container, Optional

from repro.policies.base import SystemState

__all__ = [
    "PhasePlan",
    "admission_decision",
    "deadline_exceeded",
    "grant_degree",
    "observe_state",
    "plan_escalation",
    "plan_initial_phase",
]


@dataclass(frozen=True)
class PhasePlan:
    """An execution phase the driver should start, as inert data.

    ``escalation_degree``/``probe_time`` are set only for a probe phase
    of a few-to-many (incremental) execution: the driver records them on
    the job and, if the query outlives the probe, asks
    :func:`plan_escalation` for the follow-on phase.
    """

    degree: int
    duration: float
    kind: str
    escalation_degree: Optional[int] = None
    probe_time: Optional[float] = None


def admission_decision(
    query_class: Optional[str],
    shed_classes: Optional[Container[str]],
    queue_length: int,
    max_queue_length: Optional[int],
) -> Optional[str]:
    """Shed reason for an arriving query, or None to admit it.

    Class-based shedding (anomaly-guard degradation) is checked first so
    a degraded class is reported as "class" even when the queue is also
    full; then the admission cap drops arrivals that find the dispatch
    queue at ``max_queue_length``.
    """
    if (
        shed_classes is not None
        and query_class is not None
        and query_class in shed_classes
    ):
        return "class"
    if max_queue_length is not None and queue_length >= max_queue_length:
        return "admission"
    return None


def deadline_exceeded(
    now: float,
    arrival: float,
    deadline: Optional[float],
    expected_sequential: float,
) -> bool:
    """True when a query's remaining SLO budget cannot cover its
    expected sequential service time (a negative prediction degrades to
    wait-only shedding). ``deadline=None`` disables the check."""
    if deadline is None:
        return False
    wait = now - arrival
    return wait >= deadline or wait + max(0.0, expected_sequential) > deadline


def observe_state(
    now: float,
    n_queued: int,
    n_running: int,
    free_cores: int,
    n_cores: int,
    n_shed: int,
    shed_this_cycle: bool,
    max_queue_length: Optional[int],
) -> SystemState:
    """The load snapshot a policy decides from, at a driver-captured
    timestamp. ``overloaded`` is set when this dispatch cycle already
    shed a query or the queue sits at the admission cap."""
    return SystemState(
        now=now,
        n_queued=n_queued,
        n_running=n_running,
        free_cores=free_cores,
        n_cores=n_cores,
        n_shed=n_shed,
        overloaded=shed_this_cycle
        or (max_queue_length is not None and n_queued >= max_queue_length),
    )


def grant_degree(
    requested: int,
    free_cores: int,
    clamp_degree: Callable[[int], int],
    plan_limit: Optional[int] = None,
) -> int:
    """Clamp a policy's requested degree to what can actually be used:
    the cores free right now, optionally the query's plan size (a
    2-chunk query granted 12 workers would strand 10 cores), and the
    oracle's measured degree grid — never below 1."""
    cap = min(requested, free_cores)
    if plan_limit is not None:
        cap = min(cap, plan_limit)
    return clamp_degree(max(1, cap))


def plan_initial_phase(
    granted: int,
    probe: Optional[float],
    t1: float,
    parallel_latency: Callable[[int], float],
    slowdown: float,
) -> PhasePlan:
    """The first execution phase for a dispatched query.

    Gang policies run one phase at the granted degree. Incremental
    ("few-to-many") policies start everything sequentially: queries
    whose sequential time exceeds the probe budget get a probe phase
    carrying an escalation plan; shorter ones run to completion at
    degree 1 and never pay parallel overheads.
    """
    if probe is not None:
        if granted > 1 and t1 > probe:
            return PhasePlan(
                degree=1,
                duration=float(probe) * slowdown,
                kind="probe",
                escalation_degree=granted,
                probe_time=float(probe),
            )
        return PhasePlan(degree=1, duration=t1 * slowdown, kind="gang")
    return PhasePlan(
        degree=granted,
        duration=parallel_latency(granted) * slowdown,
        kind="gang",
    )


def plan_escalation(
    target: int,
    probe: float,
    t1: float,
    free_cores: int,
    clamp_degree: Callable[[int], int],
    parallel_latency: Callable[[int], float],
    slowdown: float,
) -> PhasePlan:
    """The follow-on phase when a probe elapsed and the query is still
    running: widen to up to ``target`` cores, but never stall — at worst
    continue sequentially on the core the probe was using. The remaining
    work is approximated as parallelizing like the whole query does at
    the chosen degree (documented in DESIGN.md)."""
    actual = clamp_degree(max(1, min(target, free_cores)))
    remaining_fraction = max(0.0, 1.0 - probe / t1)
    if actual == 1:
        duration = t1 * remaining_fraction
    else:
        duration = parallel_latency(actual) * remaining_fraction
    return PhasePlan(
        degree=actual, duration=duration * slowdown, kind="escalated"
    )

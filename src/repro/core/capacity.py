"""SLA-constrained capacity: the peak sustainable throughput of a policy.

The paper's throughput comparison asks: at what arrival rate does each
configuration stop meeting the tail-latency SLO? :func:`capacity_at_slo`
answers it by bisecting on the arrival rate with the discrete-event
simulator as the evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.controller import AdaptiveSearchSystem
from repro.util.validation import require, require_in_range, require_positive


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of a capacity search for one policy."""

    policy: str
    slo: float
    capacity_qps: float
    capacity_utilization: float  # as a fraction of sequential saturation
    evaluated_points: Tuple[Tuple[float, float], ...]  # (rate, p99)


def capacity_at_slo(
    system: AdaptiveSearchSystem,
    policy_name: str,
    slo: float,
    low_utilization: float = 0.02,
    high_utilization: float = 1.2,
    tolerance: float = 0.02,
    duration: float = 15.0,
    warmup: float = 3.0,
    seed: int = 7,
) -> CapacityResult:
    """Bisect on the arrival rate for the highest P99-compliant load.

    ``tolerance`` is the bisection stopping width, as a fraction of the
    sequential saturation rate. The returned capacity is the highest
    *probed* compliant rate (conservative).
    """
    require_positive(slo, "slo")
    require_in_range(low_utilization, "low_utilization", low=0.0, low_inclusive=False)
    require(high_utilization > low_utilization, "need high > low utilization")
    require_in_range(tolerance, "tolerance", low=1e-4, high=0.5)

    evaluated: List[Tuple[float, float]] = []

    def p99_at(utilization: float) -> float:
        rate = system.rate_for_utilization(utilization)
        summary = system.run_point(
            policy_name, rate, duration=duration, warmup=warmup, seed=seed
        )
        evaluated.append((rate, summary.p99_latency))
        return summary.p99_latency

    low, high = low_utilization, high_utilization
    if p99_at(low) > slo:
        # SLO unattainable even at trivial load.
        return CapacityResult(
            policy=policy_name,
            slo=slo,
            capacity_qps=0.0,
            capacity_utilization=0.0,
            evaluated_points=tuple(evaluated),
        )
    if p99_at(high) <= slo:
        return CapacityResult(
            policy=policy_name,
            slo=slo,
            capacity_qps=system.rate_for_utilization(high),
            capacity_utilization=high,
            evaluated_points=tuple(evaluated),
        )
    best = low
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if p99_at(mid) <= slo:
            best = mid
            low = mid
        else:
            high = mid
    return CapacityResult(
        policy=policy_name,
        slo=slo,
        capacity_qps=system.rate_for_utilization(best),
        capacity_utilization=best,
        evaluated_points=tuple(evaluated),
    )

"""Deployment planning: pick a parallelism policy for an SLO and a load
profile.

The operator-facing question the paper's machinery ultimately answers:
*given my tail-latency SLO and my daily load shape, how should I
configure intra-query parallelism, and what headroom do I have?*
:func:`plan_deployment` evaluates candidate policies against every load
level in the profile (plus an SLO-capacity solve), reports per-policy
feasibility, and recommends the policy with the lowest worst-hour P99
among those meeting the SLO at every hour — falling back to the most
SLO-compliant one if none fully qualifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.capacity import capacity_at_slo
from repro.core.controller import AdaptiveSearchSystem
from repro.util.tables import Table
from repro.util.validation import require, require_positive

DEFAULT_CANDIDATES = ("sequential", "fixed-2", "fixed-4", "adaptive")


@dataclass(frozen=True)
class PolicyAssessment:
    """How one candidate policy fares against the profile and SLO."""

    policy: str
    hourly_p99: Tuple[float, ...]
    hours_meeting_slo: int
    worst_p99: float
    mean_p99: float
    capacity_qps: float
    headroom: float  # capacity / peak offered rate

    @property
    def fully_compliant(self) -> bool:
        return self.hours_meeting_slo == len(self.hourly_p99)


@dataclass(frozen=True)
class DeploymentPlan:
    """Planner output: per-policy assessments and a recommendation."""

    slo: float
    load_profile: Tuple[float, ...]
    assessments: Dict[str, PolicyAssessment]
    recommended: str

    def to_table(self) -> Table:
        table = Table(
            ["policy", "worst-hour P99 (ms)", "mean P99 (ms)",
             "hours meeting SLO", "capacity (QPS)", "headroom"],
            title=f"Deployment plan (SLO = {self.slo * 1e3:.1f} ms)",
        )
        for name, assessment in self.assessments.items():
            marker = " *" if name == self.recommended else ""
            table.add_row(
                [
                    name + marker,
                    assessment.worst_p99 * 1e3,
                    assessment.mean_p99 * 1e3,
                    f"{assessment.hours_meeting_slo}/{len(self.load_profile)}",
                    assessment.capacity_qps,
                    assessment.headroom,
                ]
            )
        return table


def plan_deployment(
    system: AdaptiveSearchSystem,
    slo: float,
    load_profile: Sequence[float],
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
    duration: float = 8.0,
    warmup: float = 2.0,
    seed: int = 23,
) -> DeploymentPlan:
    """Evaluate candidate policies against an SLO and a load profile.

    ``load_profile`` is a sequence of utilization levels (fractions of
    sequential saturation), e.g. 24 hourly values of a diurnal day.
    """
    require_positive(slo, "slo")
    require(len(load_profile) > 0, "load_profile must not be empty")
    require(len(candidates) > 0, "candidates must not be empty")
    for u in load_profile:
        require_positive(float(u), "load_profile entry")

    peak_rate = system.rate_for_utilization(max(load_profile))
    distinct_loads = sorted(set(float(u) for u in load_profile))

    assessments: Dict[str, PolicyAssessment] = {}
    for name in candidates:
        # Evaluate each *distinct* load once, then map back to hours.
        p99_by_load: Dict[float, float] = {}
        for i, u in enumerate(distinct_loads):
            summary = system.run_point(
                name,
                system.rate_for_utilization(u),
                duration=duration,
                warmup=warmup,
                seed=seed + i,
            )
            p99_by_load[u] = summary.p99_latency
        hourly = tuple(p99_by_load[float(u)] for u in load_profile)
        capacity = capacity_at_slo(
            system, name, slo,
            duration=duration / 2, warmup=warmup / 2, seed=seed,
        )
        assessments[name] = PolicyAssessment(
            policy=name,
            hourly_p99=hourly,
            hours_meeting_slo=int(sum(p <= slo for p in hourly)),
            worst_p99=float(max(hourly)),
            mean_p99=float(np.mean(hourly)),
            capacity_qps=capacity.capacity_qps,
            headroom=capacity.capacity_qps / peak_rate if peak_rate else 0.0,
        )

    compliant = [a for a in assessments.values() if a.fully_compliant]
    if compliant:
        recommended = min(compliant, key=lambda a: a.worst_p99).policy
    else:
        recommended = max(
            assessments.values(),
            key=lambda a: (a.hours_meeting_slo, -a.worst_p99),
        ).policy

    return DeploymentPlan(
        slo=float(slo),
        load_profile=tuple(float(u) for u in load_profile),
        assessments=assessments,
        recommended=recommended,
    )

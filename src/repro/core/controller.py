"""The assembled adaptive-parallelism search system.

:class:`AdaptiveSearchSystem` performs the paper's full offline pipeline
once — sample a query workload, measure per-degree execution costs on
the engine, summarize speedup/service-time profiles, derive the adaptive
threshold table — and then serves as a factory for policies and
simulated load sweeps. Everything the experiment harness and the
examples do goes through this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.compare import PolicyComparison
from repro.errors import ConfigurationError
from repro.obs.registry import RunObserver
from repro.obs.spans import Tracer
from repro.policies.adaptive import AdaptivePolicy, ThresholdTable
from repro.policies.base import ParallelismPolicy
from repro.policies.derivation import derive_threshold_table, scale_table
from repro.policies.fixed import FixedPolicy, SequentialPolicy
from repro.policies.incremental import IncrementalPolicy
from repro.policies.online import OnlineAdaptivePolicy
from repro.policies.oracle import OraclePolicy
from repro.policies.predictive import PredictivePolicy
from repro.policies.predictor import QueryLatencyPredictor
from repro.profiles.measurement import (
    MeasurementConfig,
    QueryCostTable,
    measure_cost_table,
)
from repro.profiles.servicetime import ServiceTimeDistribution
from repro.profiles.speedup import SpeedupProfile
from repro.sim.arrivals import ArrivalProcess
from repro.sim.experiment import LoadPointConfig, LoadPointSummary, run_load_point
from repro.sim.oracle import ServiceOracle
from repro.util.validation import require, require_in_range, require_int_in_range
from repro.workloads.workbench import Workbench


@dataclass(frozen=True)
class SystemConfig:
    """Offline-profiling and policy-derivation parameters."""

    n_queries: int = 1_000
    degrees: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12)
    n_cores: int = 12
    min_gain: float = 1.05
    #: Stretch applied to the analytically derived threshold limits. The
    #: fair-share derivation is conservative under stochastic load (see
    #: repro.policies.derivation.scale_table); 2.0 reproduces the
    #: empirically tuned operating point. Set 1.0 for the raw derivation.
    threshold_scale: float = 2.0
    long_query_cutoff_percentile: float = 66.7
    predictor_train_fraction: float = 0.5
    incremental_probe_percentile: float = 50.0
    seed: int = 0

    def __post_init__(self) -> None:
        require_int_in_range(self.n_queries, "n_queries", low=10)
        require_int_in_range(self.n_cores, "n_cores", low=1)
        require(1 in self.degrees, "degrees must include 1")
        require_in_range(self.threshold_scale, "threshold_scale", low=0.0,
                         low_inclusive=False)
        require_in_range(
            self.long_query_cutoff_percentile,
            "long_query_cutoff_percentile",
            low=0.0,
            high=100.0,
        )
        require_in_range(
            self.predictor_train_fraction,
            "predictor_train_fraction",
            low=0.0,
            high=1.0,
            low_inclusive=False,
            high_inclusive=False,
        )
        require_in_range(
            self.incremental_probe_percentile,
            "incremental_probe_percentile",
            low=0.0,
            high=100.0,
        )


class AdaptiveSearchSystem:
    """Profiled ISN + derived policies + simulated load sweeps."""

    def __init__(
        self,
        workbench: Workbench,
        cost_table: QueryCostTable,
        config: SystemConfig,
    ) -> None:
        self.workbench = workbench
        self.cost_table = cost_table
        self.config = config
        #: Opt-in observability sink. When set, every load point run
        #: through :meth:`run_point` / :meth:`sweep` reports spans and
        #: metric timelines to it (results are unchanged — see
        #: repro.obs). None keeps the zero-overhead untraced path.
        self.tracer: Optional[Tracer] = None

        self.profile = SpeedupProfile(cost_table)
        self.service_distribution = ServiceTimeDistribution(
            cost_table.sequential_latencies()
        )
        self.threshold_table: ThresholdTable = scale_table(
            derive_threshold_table(
                self.profile,
                n_cores=config.n_cores,
                degrees=config.degrees,
                min_gain=config.min_gain,
            ),
            config.threshold_scale,
        )
        self.long_query_cutoff = self.service_distribution.percentile(
            config.long_query_cutoff_percentile
        )
        self.incremental_probe = self.service_distribution.percentile(
            config.incremental_probe_percentile
        )

        # Train the latency predictor on the first half of the sample and
        # annotate the whole table with its predictions.
        t1 = cost_table.sequential_latencies()
        n_train = max(2, int(cost_table.n_queries * config.predictor_train_fraction))
        self.predictor = QueryLatencyPredictor().fit(
            workbench.engine, cost_table.queries[:n_train], t1[:n_train]
        )
        predictions = self.predictor.predict_many(
            workbench.engine, cost_table.queries
        )
        self.oracle = ServiceOracle(cost_table, predicted_latencies=predictions)

    # ----------------------------------------------------------------
    # Construction
    # ----------------------------------------------------------------

    @classmethod
    def from_workbench(
        cls,
        workbench: Workbench,
        config: Optional[SystemConfig] = None,
        queries: Optional[Sequence] = None,
    ) -> "AdaptiveSearchSystem":
        """Profile ``workbench`` and assemble the system."""
        config = config or SystemConfig()
        if queries is None:
            generator = workbench.query_generator("profile-queries")
            queries = generator.sample_many(config.n_queries)
        table = measure_cost_table(
            workbench.engine,
            queries,
            MeasurementConfig(degrees=config.degrees, n_queries=len(queries)),
        )
        return cls(workbench, table, config)

    # ----------------------------------------------------------------
    # Derived quantities
    # ----------------------------------------------------------------

    @property
    def n_cores(self) -> int:
        return self.config.n_cores

    @property
    def saturation_rate(self) -> float:
        """Arrival rate (QPS) at which sequential execution saturates the
        ISN: ``n_cores / E[t1]``."""
        return self.n_cores / self.oracle.mean_sequential_latency()

    def rate_for_utilization(self, utilization: float) -> float:
        """QPS corresponding to a sequential-work utilization level."""
        require_in_range(utilization, "utilization", low=0.0, high=2.0,
                         low_inclusive=False)
        return utilization * self.saturation_rate

    # ----------------------------------------------------------------
    # Policy factory
    # ----------------------------------------------------------------

    def policy(self, name: str) -> ParallelismPolicy:
        """Construct a policy by name.

        Supported: ``sequential``, ``fixed-<p>``, ``adaptive``,
        ``oracle``, ``predictive``, ``incremental``, ``online``.
        """
        if name == "sequential":
            return SequentialPolicy()
        if name.startswith("fixed-"):
            try:
                degree = int(name.split("-", 1)[1])
            except ValueError:
                raise ConfigurationError(f"bad fixed policy name {name!r}") from None
            return FixedPolicy(degree)
        if name == "adaptive":
            return AdaptivePolicy(self.threshold_table)
        if name == "oracle":
            return OraclePolicy(self.threshold_table, self.long_query_cutoff)
        if name == "predictive":
            return PredictivePolicy(self.threshold_table, self.long_query_cutoff)
        if name == "incremental":
            return IncrementalPolicy(self.threshold_table, self.incremental_probe)
        if name == "online":
            # Online variant of the adaptive table: same offline-derived
            # thresholds, runtime-adjustable calibration. Note a fresh
            # instance per call — controllers mutate their policy, so
            # callers must not share one across concurrent runs.
            return OnlineAdaptivePolicy(self.threshold_table)
        raise ConfigurationError(f"unknown policy {name!r}")

    # ----------------------------------------------------------------
    # Simulation
    # ----------------------------------------------------------------

    def run_point(
        self,
        policy_name: Union[str, ParallelismPolicy],
        rate: float,
        duration: float = 20.0,
        warmup: float = 4.0,
        seed: int = 42,
        arrivals: Optional[ArrivalProcess] = None,
        deadline: Optional[float] = None,
        max_queue_length: Optional[int] = None,
        slo: Optional[float] = None,
        observer: Optional[RunObserver] = None,
        controllers: Sequence[object] = (),
        query_sampler: Optional[object] = None,
    ) -> LoadPointSummary:
        """Simulate one load point for one policy.

        ``policy_name`` may be a factory name or an already-constructed
        policy instance (online controllers need a handle on the exact
        instance they steer). ``observer`` overrides the system-level
        :attr:`tracer`; with neither set the run is untraced.
        ``controllers`` / ``query_sampler`` pass through to
        :func:`~repro.sim.experiment.run_load_point`.
        """
        config = LoadPointConfig(
            rate=rate,
            duration=duration,
            warmup=warmup,
            n_cores=self.n_cores,
            seed=seed,
            deadline=deadline,
            max_queue_length=max_queue_length,
            slo=slo,
        )
        if observer is None and self.tracer is not None:
            observer = RunObserver(tracer=self.tracer)
        policy = (
            policy_name
            if isinstance(policy_name, ParallelismPolicy)
            else self.policy(policy_name)
        )
        return run_load_point(
            self.oracle, policy, config, arrivals,
            observer=observer, controllers=controllers,
            query_sampler=query_sampler,
        )

    def sweep(
        self,
        policy_names: Sequence[str],
        utilizations: Sequence[float],
        duration: float = 20.0,
        warmup: float = 4.0,
        seed: int = 42,
    ) -> PolicyComparison:
        """Load sweep: every policy at every utilization level.

        All policies see identically seeded arrival/workload streams at
        each load point, so comparisons are paired.
        """
        rates = [self.rate_for_utilization(u) for u in utilizations]
        summaries: Dict[str, List[LoadPointSummary]] = {}
        for name in policy_names:
            rows = []
            for i, rate in enumerate(rates):
                rows.append(
                    self.run_point(
                        name, rate, duration=duration, warmup=warmup,
                        seed=seed + i,
                    )
                )
            summaries[self.policy(name).name] = rows
        return PolicyComparison(rates=list(rates), summaries=summaries)

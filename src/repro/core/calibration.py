"""Simulation-based refinement of the adaptive threshold table.

The analytic derivation (:mod:`repro.policies.derivation`) ignores
queueing dynamics; the paper tunes its thresholds against the real
system. :func:`calibrate_threshold_scale` reproduces that step in
simulation: it scales every load limit in the table by candidate
factors, measures P99 regret against the fixed-policy envelope across a
load sweep, and keeps the factor with the smallest mean regret.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.compare import PolicyComparison
from repro.core.controller import AdaptiveSearchSystem
from repro.policies.adaptive import AdaptivePolicy, ThresholdTable
from repro.policies.derivation import scale_table
from repro.sim.experiment import LoadPointConfig, run_load_point
from repro.util.validation import require


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of the threshold calibration sweep."""

    best_factor: float
    best_table: ThresholdTable
    mean_regret_by_factor: Dict[float, float]


def calibrate_threshold_scale(
    system: AdaptiveSearchSystem,
    factors: Sequence[float] = (0.5, 0.75, 1.0, 1.5, 2.0),
    utilizations: Sequence[float] = (0.1, 0.3, 0.5, 0.7),
    envelope_policies: Sequence[str] = ("sequential", "fixed-4", "fixed-8"),
    duration: float = 12.0,
    warmup: float = 3.0,
    seed: int = 11,
) -> CalibrationResult:
    """Grid-search the threshold scale factor against the envelope."""
    require(len(factors) > 0, "factors must not be empty")
    require(len(utilizations) > 1, "need at least two load points")

    rates = [system.rate_for_utilization(u) for u in utilizations]

    # Envelope from the baseline policies (shared across factors).
    summaries = {}
    for name in envelope_policies:
        policy = system.policy(name)
        rows = []
        for i, rate in enumerate(rates):
            config = LoadPointConfig(
                rate=rate, duration=duration, warmup=warmup,
                n_cores=system.n_cores, seed=seed + i,
            )
            rows.append(run_load_point(system.oracle, policy, config))
        summaries[policy.name] = rows

    envelope = PolicyComparison(rates=list(rates), summaries=dict(summaries))
    envelope_p99 = envelope.envelope_p99(list(summaries))

    regret_by_factor: Dict[float, float] = {}
    best_factor, best_regret = None, float("inf")
    for factor in factors:
        table = scale_table(system.threshold_table, factor)
        policy = AdaptivePolicy(table)
        p99s = []
        for i, rate in enumerate(rates):
            config = LoadPointConfig(
                rate=rate, duration=duration, warmup=warmup,
                n_cores=system.n_cores, seed=seed + i,
            )
            p99s.append(run_load_point(system.oracle, policy, config).p99_latency)
        regret = float(np.mean(np.asarray(p99s) / envelope_p99 - 1.0))
        regret_by_factor[float(factor)] = regret
        if regret < best_regret:
            best_factor, best_regret = float(factor), regret

    return CalibrationResult(
        best_factor=best_factor,
        best_table=scale_table(system.threshold_table, best_factor),
        mean_regret_by_factor=regret_by_factor,
    )

"""High-level system facade tying the reproduction together.

:class:`AdaptiveSearchSystem` is the main entry point a downstream user
works with: it profiles a workbench, derives the adaptive policy,
constructs any baseline/extension policy by name, and runs load sweeps.
"""

from repro.core.calibration import calibrate_threshold_scale
from repro.core.capacity import capacity_at_slo
from repro.core.controller import AdaptiveSearchSystem, SystemConfig
from repro.core.planner import DeploymentPlan, plan_deployment
from repro.core.replication import (
    compare_policies_replicated,
    replicate_load_point,
)

__all__ = [
    "AdaptiveSearchSystem",
    "SystemConfig",
    "capacity_at_slo",
    "calibrate_threshold_scale",
    "DeploymentPlan",
    "plan_deployment",
    "compare_policies_replicated",
    "replicate_load_point",
]

"""Multi-seed replication of simulated load points.

A single simulated load point is one draw from a stochastic system;
reviewer-grade claims need replication. :func:`replicate_load_point`
repeats a (policy, load) point across seeds and reports mean ± bootstrap
CI for the chosen metric, and :func:`compare_policies_replicated`
answers "is A better than B here?" with per-seed *paired* differences
(both policies see identically seeded arrival streams, so pairing
removes most of the workload variance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.bootstrap import ConfidenceInterval, mean_ci
from repro.core.controller import AdaptiveSearchSystem
from repro.errors import AnalysisError
from repro.util.validation import require, require_positive


@dataclass(frozen=True)
class ReplicatedMetric:
    """A metric replicated across seeds."""

    policy: str
    utilization: float
    metric: str
    values: Tuple[float, ...]
    ci: ConfidenceInterval

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else 0.0


def replicate_load_point(
    system: AdaptiveSearchSystem,
    policy_name: str,
    utilization: float,
    seeds: Sequence[int],
    metric: str = "p99_latency",
    duration: float = 8.0,
    warmup: float = 2.0,
) -> ReplicatedMetric:
    """Run one load point once per seed; summarize ``metric``."""
    require(len(seeds) >= 2, "need at least 2 seeds to replicate")
    require_positive(utilization, "utilization")
    rate = system.rate_for_utilization(utilization)
    values: List[float] = []
    for seed in seeds:
        summary = system.run_point(
            policy_name, rate, duration=duration, warmup=warmup, seed=int(seed)
        )
        value = getattr(summary, metric, None)
        if value is None:
            raise AnalysisError(f"LoadPointSummary has no metric {metric!r}")
        values.append(float(value))
    return ReplicatedMetric(
        policy=policy_name,
        utilization=utilization,
        metric=metric,
        values=tuple(values),
        ci=mean_ci(values, n_resamples=2_000),
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired multi-seed comparison of two policies at one load."""

    policy_a: str
    policy_b: str
    utilization: float
    metric: str
    differences: Tuple[float, ...]  # per-seed a − b
    mean_difference: float
    ci: ConfidenceInterval

    @property
    def a_better(self) -> bool:
        """True when A's metric is significantly lower (latency-style)."""
        return self.ci.high < 0.0

    @property
    def significant(self) -> bool:
        return not self.ci.contains(0.0)


def compare_policies_replicated(
    system: AdaptiveSearchSystem,
    policy_a: str,
    policy_b: str,
    utilization: float,
    seeds: Sequence[int],
    metric: str = "p99_latency",
    duration: float = 8.0,
    warmup: float = 2.0,
) -> PairedComparison:
    """Paired comparison: per seed, both policies see the same arrivals."""
    require(len(seeds) >= 2, "need at least 2 seeds to compare")
    rate = system.rate_for_utilization(utilization)
    differences: List[float] = []
    for seed in seeds:
        a = system.run_point(policy_a, rate, duration=duration, warmup=warmup,
                             seed=int(seed))
        b = system.run_point(policy_b, rate, duration=duration, warmup=warmup,
                             seed=int(seed))
        value_a = float(getattr(a, metric))
        value_b = float(getattr(b, metric))
        differences.append(value_a - value_b)
    return PairedComparison(
        policy_a=policy_a,
        policy_b=policy_b,
        utilization=utilization,
        metric=metric,
        differences=tuple(differences),
        mean_difference=float(np.mean(differences)),
        ci=mean_ci(differences, n_resamples=2_000),
    )

"""Clock-agnostic time interfaces for the scheduling kernel.

The adaptive-parallelism kernel — policies, admission/deadline/degree
decisions — must run identically under the virtual-time simulator and a
wall-clock serving runtime. That equivalence is only real if the kernel
reads time through one narrow interface instead of reaching into
whichever driver happens to be running it. This module is that
interface:

* :class:`ClockProtocol` — anything with a monotone ``now`` (seconds).
* :class:`SchedulerProtocol` — a clock that can also run a callback
  after a delay; the simulator's event loop satisfies it structurally,
  and the live runtime's event-loop adapter will too.
* :class:`VirtualClock` — the kernel-owned virtual time source. The
  discrete-event simulator advances one as it pops events; tests drive
  one directly.

The wall-clock counterpart, :class:`repro.runtime.clock.WallClock`,
lives in the ``runtime`` package: the kernel never imports wall-clock
code (reprolint R014 enforces this), it only ever sees these protocols.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.errors import SimulationError

__all__ = [
    "ClockProtocol",
    "SchedulerProtocol",
    "VirtualClock",
]


@runtime_checkable
class ClockProtocol(Protocol):
    """A monotone time source, in seconds."""

    @property
    def now(self) -> float:  # pragma: no cover - protocol signature
        ...


@runtime_checkable
class SchedulerProtocol(Protocol):
    """A clock that can also run callbacks later (event-loop shaped).

    ``schedule`` runs ``callback`` after ``delay_s`` seconds of *this
    clock's* time — virtual seconds under the simulator, wall seconds
    under a live event loop. The kernel never cares which.
    """

    @property
    def now(self) -> float:  # pragma: no cover - protocol signature
        ...

    def schedule(
        self, delay_s: float, callback: Callable[[], Any]
    ) -> None:  # pragma: no cover - protocol signature
        ...


class VirtualClock:
    """Manually advanced monotone clock.

    The simulator owns one and advances it to each event's timestamp;
    unit tests advance one by hand to exercise time-dependent kernel
    code without an event loop. Time never goes backwards — a driver
    that tried would silently corrupt every latency measurement built
    on this clock, so it raises instead.
    """

    __slots__ = ("_now_s",)

    def __init__(self, start_s: float = 0.0) -> None:
        self._now_s = float(start_s)

    @property
    def now(self) -> float:
        return self._now_s

    def advance_to(self, time_s: float) -> None:
        """Jump to absolute ``time_s`` (must not move backwards)."""
        if time_s < self._now_s:
            raise SimulationError(
                f"clock cannot run backwards: {time_s} < now {self._now_s}"
            )
        self._now_s = float(time_s)

    def advance_by(self, delta_s: float) -> None:
        """Advance by ``delta_s`` seconds (must be >= 0)."""
        if delta_s < 0:
            raise SimulationError(f"delta must be >= 0, got {delta_s}")
        self._now_s += float(delta_s)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now_s:.6f})"

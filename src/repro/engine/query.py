"""Query representation.

A query is a bag of term ids with a match mode and a result size ``k``.
The engine's default mode is conjunctive (``ALL``): a document matches
only if it contains every query term — the primary matching semantics of
web search, and the source of the wide service-time spread the paper
exploits (queries over rare term combinations scan deep into the index
before finding enough matches; common combinations terminate quickly).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import QueryError


class MatchMode(enum.Enum):
    """Document-matching semantics."""

    ALL = "all"  # conjunctive: every term must occur (web-search default)
    ANY = "any"  # disjunctive: at least one term occurs


@dataclass(frozen=True)
class Query:
    """An immutable search query.

    Attributes
    ----------
    term_ids:
        The query's terms (vocabulary ids). Duplicates are removed and
        order is normalized at construction.
    k:
        Number of results to return (top-k).
    mode:
        Conjunctive or disjunctive matching.
    query_id:
        Optional external identifier (trace position, arrival index...).
    """

    term_ids: Tuple[int, ...]
    k: int = 10
    mode: MatchMode = MatchMode.ALL
    query_id: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.term_ids:
            raise QueryError("query must contain at least one term")
        normalized = tuple(sorted(set(int(t) for t in self.term_ids)))
        if any(t < 0 for t in normalized):
            raise QueryError("term ids must be non-negative")
        object.__setattr__(self, "term_ids", normalized)
        if not isinstance(self.k, int) or isinstance(self.k, bool) or self.k < 1:
            raise QueryError(f"k must be a positive integer, got {self.k!r}")
        if not isinstance(self.mode, MatchMode):
            raise QueryError(f"mode must be a MatchMode, got {self.mode!r}")

    @property
    def n_terms(self) -> int:
        return len(self.term_ids)

    @staticmethod
    def of(terms: Sequence[int], k: int = 10, mode: MatchMode = MatchMode.ALL,
           query_id: Optional[int] = None) -> "Query":
        """Convenience constructor from any term-id sequence."""
        return Query(term_ids=tuple(terms), k=k, mode=mode, query_id=query_id)

    def __repr__(self) -> str:
        terms = ",".join(str(t) for t in self.term_ids)
        return f"Query([{terms}], k={self.k}, mode={self.mode.value})"

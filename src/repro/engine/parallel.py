"""Intra-query parallel execution in deterministic virtual time.

Models the paper's parallelization: ``degree`` workers dynamically claim
candidate chunks (in document order) from a shared cursor, evaluate them
independently, and merge their matches into a shared top-k under a lock.
Termination rules are consulted at *claim* time against the shared state,
so — exactly as in the real system — workers that are mid-chunk when the
budget fills complete their chunk anyway. Those extra chunks are the
**speculative waste** that makes parallel efficiency sublinear; no waste
factor is assumed anywhere, it emerges from the execution dynamics.

The executor is an event-driven mini-simulation over worker completion
times, so it is deterministic (ties broken by worker id) and independent
of host thread scheduling; see :mod:`repro.engine.threads` for the real
thread-pool counterpart used to validate result equivalence.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.engine.results import ChunkSpan, ExecutionResult, make_ranked
from repro.engine.termination import TerminationConfig, TerminationState
from repro.engine.topk import TopK
from repro.engine.trace import ChunkTrace
from repro.errors import ExecutionError


def execute_parallel(
    trace: ChunkTrace,
    termination: TerminationConfig,
    degree: int,
    collect_spans: bool = False,
) -> ExecutionResult:
    """Run the traced query with ``degree`` parallel workers.

    With ``collect_spans`` the result carries one
    :class:`~repro.engine.results.ChunkSpan` per chunk claim (worker,
    position, phase-relative start/end) and the instant the first worker
    observed early termination. Span collection is pure bookkeeping: the
    execution schedule, result set, and every statistic are identical
    with it on or off.
    """
    if not isinstance(degree, int) or isinstance(degree, bool) or degree < 1:
        raise ExecutionError(f"degree must be a positive integer, got {degree!r}")

    plan = trace.plan
    query = plan.query
    cost_model = trace.cost_model

    topk = TopK(query.k)
    state = TerminationState(termination, plan, topk)

    merge_cost = cost_model.merge_time(degree)
    busy: List[float] = [0.0] * degree

    # Event heap of (worker-local ready time, worker id, completed position).
    # All workers become ready at t=0 of the parallel phase; fork/join are
    # accounted as serial prologue/epilogue.
    events: List[Tuple[float, int, Optional[int]]] = [
        (0.0, worker, None) for worker in range(degree)
    ]
    heapq.heapify(events)

    next_position = 0
    parallel_makespan = 0.0
    chunks_evaluated = 0
    chunks_skipped = 0
    postings_scanned = 0
    docs_matched = 0
    spans: Optional[List[ChunkSpan]] = [] if collect_spans else None
    claim_starts: Dict[int, float] = {}
    termination_s: Optional[float] = None

    while events:
        now, worker, completed = heapq.heappop(events)
        if completed is not None:
            if spans is not None:
                spans.append(
                    ChunkSpan(worker, completed, claim_starts.pop(completed), now)
                )
            outcome, _ = trace.get(completed)
            chunks_evaluated += 1
            postings_scanned += outcome.postings_scanned
            docs_matched += outcome.n_matched
            topk.offer_many(outcome.scores, outcome.doc_ids)
            state.record_matches(outcome.n_matched)
            busy[worker] += merge_cost
            now += merge_cost
        # Advance the shared cursor past individually skippable chunks
        # (safe per-chunk score bound); the claiming worker pays the
        # metadata-compare cost, 0 under the default model.
        while not state.should_stop(next_position) and state.should_skip(
            next_position
        ):
            next_position += 1
            chunks_skipped += 1
            skip_cost = cost_model.skip_time()
            busy[worker] += skip_cost
            now += skip_cost
        if not state.should_stop(next_position):
            position = next_position
            next_position += 1
            _, cost = trace.get(position)
            busy[worker] += cost
            if spans is not None:
                claim_starts[position] = now
            heapq.heappush(events, (now + cost, worker, position))
        else:
            if spans is not None and termination_s is None:
                termination_s = now
            parallel_makespan = max(parallel_makespan, now)

    serial_overhead = (
        cost_model.query_fixed_cost
        + cost_model.fork_time(degree)
        + cost_model.join_time(degree)
        + cost_model.rerank_time(docs_matched)
    )
    latency = serial_overhead + parallel_makespan
    cpu_time = serial_overhead + sum(busy)

    return ExecutionResult(
        query=query,
        degree=degree,
        results=make_ranked(topk.results()),
        latency=latency,
        cpu_time=cpu_time,
        chunks_evaluated=chunks_evaluated,
        postings_scanned=postings_scanned,
        docs_matched=docs_matched,
        terminated_early=state.terminated_early,
        termination_rule=state.fired_rule,
        worker_busy=tuple(busy),
        chunks_skipped=chunks_skipped,
        chunk_spans=tuple(spans) if spans is not None else None,
        termination_s=(
            termination_s if spans is not None and state.terminated_early else None
        ),
    )

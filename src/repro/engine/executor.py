"""Engine facade: configure once, execute queries at any degree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.engine.batch import BatchExecutor
from repro.engine.cost import CostModel
from repro.engine.parallel import execute_parallel
from repro.engine.plan import QueryPlan
from repro.engine.query import Query
from repro.engine.results import ExecutionResult
from repro.engine.sequential import execute_sequential
from repro.engine.termination import TerminationConfig
from repro.engine.threads import execute_threaded, execute_threaded_batch
from repro.engine.trace import ChunkTrace
from repro.errors import ExecutionError
from repro.index.inverted import InvertedIndex
from repro.ranking.composite import ScoreWeights
from repro.util.validation import require_int_in_range


@dataclass(frozen=True)
class EngineConfig:
    """Engine-wide execution parameters.

    ``max_degree`` mirrors the core count of the ISN (the paper's server
    exposes 12 physical cores); requesting a higher degree is an error so
    policies cannot silently oversubscribe.
    """

    weights: ScoreWeights = field(default_factory=ScoreWeights)
    cost_model: CostModel = field(default_factory=CostModel)
    termination: TerminationConfig = field(default_factory=TerminationConfig)
    max_degree: int = 12

    def __post_init__(self) -> None:
        require_int_in_range(self.max_degree, "max_degree", low=1)


class Engine:
    """Query-execution engine over one index shard.

    >>> engine = Engine(index)                      # doctest: +SKIP
    >>> result = engine.execute(query, degree=4)    # doctest: +SKIP
    """

    def __init__(self, index: InvertedIndex, config: Optional[EngineConfig] = None):
        self.index = index
        self.config = config or EngineConfig()

    def plan(self, query: Query) -> QueryPlan:
        """Build the execution plan for ``query``."""
        return QueryPlan(query, self.index, self.config.weights)

    def trace(self, query: Query) -> ChunkTrace:
        """Build a memoizing chunk trace for ``query`` (reusable across
        degrees — chunk evaluations are shared)."""
        return ChunkTrace(self.plan(query), self.config.cost_model)

    def _check_degree(self, degree: int) -> None:
        if not isinstance(degree, int) or isinstance(degree, bool) or degree < 1:
            raise ExecutionError(f"degree must be a positive integer, got {degree!r}")
        if degree > self.config.max_degree:
            raise ExecutionError(
                f"degree {degree} exceeds max_degree {self.config.max_degree}"
            )

    def execute(
        self, query: Query, degree: int = 1, collect_spans: bool = False
    ) -> ExecutionResult:
        """Execute ``query`` with ``degree`` workers in virtual time."""
        return self.execute_trace(self.trace(query), degree, collect_spans)

    def execute_trace(
        self, trace: ChunkTrace, degree: int = 1, collect_spans: bool = False
    ) -> ExecutionResult:
        """Execute a previously built trace at ``degree`` workers.

        Reusing one trace across degrees evaluates each chunk at most
        once, which is what makes speedup-profile measurement affordable.

        ``collect_spans`` attaches per-chunk claim spans to the result
        (parallel executions only — a sequential run is one long claim,
        so there is nothing to record); see
        :class:`~repro.engine.results.ChunkSpan`.
        """
        self._check_degree(degree)
        if degree == 1:
            return execute_sequential(trace, self.config.termination)
        return execute_parallel(
            trace, self.config.termination, degree, collect_spans=collect_spans
        )

    def execute_threaded(self, query: Query, degree: int) -> ExecutionResult:
        """Execute on real threads (validation mode; see
        :mod:`repro.engine.threads`)."""
        self._check_degree(degree)
        return execute_threaded(
            self.trace(query), self.config.termination, degree
        )

    def batch_executor(
        self, initial_wave: int = 4, max_wave: int = 64
    ) -> BatchExecutor:
        """Build a :class:`~repro.engine.batch.BatchExecutor` sharing this
        engine's index and configuration."""
        return BatchExecutor(
            self.index,
            weights=self.config.weights,
            cost_model=self.config.cost_model,
            termination=self.config.termination,
            initial_wave=initial_wave,
            max_wave=max_wave,
        )

    def execute_batch(self, queries: Sequence[Query]) -> List[ExecutionResult]:
        """Execute many queries through the batched multi-chunk kernel.

        Per-query results are bit-identical to ``execute(query, degree=1)``;
        throughput is substantially higher because numpy dispatch is
        amortized over chunk waves (see :mod:`repro.engine.batch`).
        """
        return self.batch_executor().execute(queries)

    def execute_threaded_batch(
        self, queries: Sequence[Query], degree: int
    ) -> List[ExecutionResult]:
        """Execute a query batch on ``degree`` real threads (validation
        mode; inter-query parallelism — see
        :func:`repro.engine.threads.execute_threaded_batch`)."""
        self._check_degree(degree)
        return execute_threaded_batch(self.batch_executor(), queries, degree)

    def __repr__(self) -> str:
        return f"Engine(index={self.index!r}, max_degree={self.config.max_degree})"

"""Bounded top-k result heap with deterministic tie-breaking.

Ordering: higher score wins; on exact score ties the *lower document id*
wins. Because the index is laid out in descending static-rank order,
preferring the lower doc id means preferring the higher static-rank
document, matching production behaviour — and it makes execution results
deterministic regardless of chunk merge order, which the parallel/
sequential equivalence tests rely on.

Internally a min-heap of ``(score, -doc_id)`` keys keeps the *worst*
retained result at the root, so the admission threshold is O(1).
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np

from repro.errors import ExecutionError


class TopK:
    """Maintains the k best (score, doc_id) pairs seen so far."""

    __slots__ = ("k", "_heap")

    def __init__(self, k: int) -> None:
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ExecutionError(f"k must be a positive integer, got {k!r}")
        self.k = k
        # Min-heap of (score, -doc_id): the root is the weakest entry
        # under "higher score, then lower doc id, is better".
        self._heap: List[Tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """Score a new document must *strictly beat* to enter (ties lose
        unless the new doc id is lower; see :meth:`offer`). ``-inf`` until
        the heap is full."""
        if len(self._heap) < self.k:
            return float("-inf")
        return self._heap[0][0]

    def offer(self, score: float, doc_id: int) -> bool:
        """Offer one candidate; returns True if it was admitted."""
        key = (float(score), -int(doc_id))
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, key)
            return True
        if key > self._heap[0]:
            heapq.heapreplace(self._heap, key)
            return True
        return False

    def offer_many(self, scores: np.ndarray, doc_ids: np.ndarray) -> int:
        """Offer a batch of candidates; returns how many were admitted.

        Vectorized pre-filter: candidates at or below the current
        threshold that cannot win a tie are skipped without touching the
        heap.
        """
        if scores.shape[0] != doc_ids.shape[0]:
            raise ExecutionError("scores and doc_ids must be parallel arrays")
        if scores.shape[0] == 0:
            return 0
        admitted = 0
        if self.full:
            # Only candidates with score >= root score can possibly enter.
            mask = scores >= self._heap[0][0]
            scores = scores[mask]
            doc_ids = doc_ids[mask]
        for score, doc_id in zip(scores.tolist(), doc_ids.tolist()):
            if self.offer(score, doc_id):
                admitted += 1
        return admitted

    def results(self) -> List[Tuple[int, float]]:
        """Ranked results, best first, as (doc_id, score) pairs."""
        ordered = sorted(self._heap, reverse=True)
        return [(-neg_doc, score) for score, neg_doc in ordered]

    def doc_ids(self) -> List[int]:
        return [doc_id for doc_id, _ in self.results()]

    def scores(self) -> List[float]:
        return [score for _, score in self.results()]

    def copy(self) -> "TopK":
        clone = TopK(self.k)
        clone._heap = list(self._heap)
        return clone

    def __repr__(self) -> str:
        return f"TopK(k={self.k}, size={len(self)}, threshold={self.threshold:.4f})"

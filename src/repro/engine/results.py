"""Execution results and work accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.query import Query


@dataclass(frozen=True)
class RankedDocument:
    """One ranked search result."""

    doc_id: int
    score: float
    rank: int  # 1-based position in the result list


@dataclass(frozen=True)
class ChunkSpan:
    """One worker's evaluation of one chunk, in phase-relative time.

    ``start_s`` / ``end_s`` are virtual seconds from the start of the
    *parallel phase* (serial prologue excluded), so spans from one
    execution tile the per-worker busy timelines exactly.
    """

    worker: int
    position: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class ExecutionResult:
    """Outcome of executing one query at one parallelism degree.

    Timing fields are *virtual seconds* from the engine's cost model:

    * ``latency`` — wall-clock (makespan) of the execution: what a client
      would observe on an otherwise idle machine;
    * ``cpu_time`` — total processor time consumed across all workers,
      including fork/join/merge overheads. For sequential execution
      ``cpu_time == latency``; for parallel execution ``cpu_time >
      latency`` and the ratio captures the efficiency loss the adaptive
      policy reasons about.

    Work counters:

    * ``chunks_evaluated`` — candidate chunks actually scored;
    * ``chunks_skipped`` — candidate chunks bypassed by the safe
      per-chunk score-bound skip (no postings touched);
    * ``postings_scanned`` / ``docs_matched`` — low-level work units;
    * ``terminated_early`` / ``termination_rule`` — why execution stopped;
    * ``worker_busy`` — per-worker busy time (parallel only), whose spread
      measures load imbalance.

    Observability (opt-in via ``collect_spans=True``, otherwise None so
    the default path allocates nothing):

    * ``chunk_spans`` — one :class:`ChunkSpan` per evaluated chunk;
    * ``termination_s`` — phase-relative instant at which the first
      worker observed the stop condition (None unless terminated early).
    """

    query: Query
    degree: int
    results: Tuple[RankedDocument, ...]
    latency: float
    cpu_time: float
    chunks_evaluated: int
    postings_scanned: int
    docs_matched: int
    terminated_early: bool
    termination_rule: Optional[str]
    worker_busy: Tuple[float, ...] = field(default_factory=tuple)
    chunks_skipped: int = 0
    chunk_spans: Optional[Tuple[ChunkSpan, ...]] = None
    termination_s: Optional[float] = None

    @property
    def n_results(self) -> int:
        return len(self.results)

    @property
    def doc_ids(self) -> List[int]:
        return [r.doc_id for r in self.results]

    @property
    def scores(self) -> List[float]:
        return [r.score for r in self.results]

    @property
    def efficiency_vs(self) -> float:
        """CPU inflation factor: cpu_time / latency (>= 1 when parallel)."""
        return self.cpu_time / self.latency if self.latency > 0 else 1.0

    def speedup_over(self, sequential: "ExecutionResult") -> float:
        """Latency speedup relative to a sequential execution."""
        if self.latency <= 0:
            return float("inf")
        return sequential.latency / self.latency


def make_ranked(pairs: List[Tuple[int, float]]) -> Tuple[RankedDocument, ...]:
    """Wrap (doc_id, score) pairs (already best-first) as ranked results."""
    return tuple(
        RankedDocument(doc_id=doc_id, score=score, rank=i + 1)
        for i, (doc_id, score) in enumerate(pairs)
    )

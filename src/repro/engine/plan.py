"""Query planning: posting-list selection, candidate chunks, score bounds.

A :class:`QueryPlan` is built once per (query, index) pair and captures
everything both the sequential and the parallel executor need:

* the posting lists of the query's terms;
* the **candidate chunk list** — for conjunctive queries, only chunks in
  which *every* term occurs can contain a match, so the executor walks
  that (often short) list instead of the whole document space. Chunk
  skipping is metadata-only in a real ISN, and is modeled as free here;
* **suffix score bounds** — for each position in the candidate list, an
  upper bound on the composite score of any document in the remaining
  chunks. Bounds combine per-term per-chunk max impacts (suffix maxima)
  with the static-rank prior at the chunk boundary, which is
  non-increasing in doc id by index construction;
* the per-chunk scorer used to produce :class:`ChunkOutcome` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import List, Optional, Tuple

import numpy as np

from repro.engine.query import MatchMode, Query
from repro.errors import ExecutionError
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingList
from repro.ranking.composite import ScoreWeights


@dataclass(frozen=True)
class ChunkOutcome:
    """Result of evaluating one chunk: matches, scores, work counters."""

    chunk_id: int
    doc_ids: np.ndarray  # matched documents (ascending)
    scores: np.ndarray  # composite scores, parallel to doc_ids
    postings_scanned: int
    n_matched: int

    @property
    def empty(self) -> bool:
        return self.n_matched == 0


class QueryPlan:
    """Planned execution state for one query over one index."""

    def __init__(
        self,
        query: Query,
        index: InvertedIndex,
        weights: Optional[ScoreWeights] = None,
    ) -> None:
        self.query = query
        self.index = index
        self.weights = weights or ScoreWeights()

        found = index.lexicon.posting_lists(list(query.term_ids))
        missing = len(query.term_ids) - len(found)
        if query.mode is MatchMode.ALL and missing > 0:
            # A conjunctive query with an unindexed term matches nothing.
            self.posting_lists: List[PostingList] = []
        else:
            self.posting_lists = found

        self.candidate_chunks = self._candidate_chunks()
        self.bounds_from = self._suffix_bounds()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the query can match no document at all."""
        return self.candidate_chunks.shape[0] == 0

    @property
    def n_candidate_chunks(self) -> int:
        return int(self.candidate_chunks.shape[0])

    def _candidate_chunks(self) -> np.ndarray:
        """Chunks that can contain a match, in document order."""
        if not self.posting_lists:
            return np.empty(0, dtype=np.int64)
        chunk_sets = [plist.chunk_ids for plist in self.posting_lists]
        if self.query.mode is MatchMode.ALL:
            combined = reduce(np.intersect1d, chunk_sets)
        else:
            combined = reduce(np.union1d, chunk_sets)
        return combined.astype(np.int64)

    def _suffix_bounds(self) -> np.ndarray:
        """``bounds_from[i]``: max composite score achievable by any doc in
        candidate chunks ``i..end``. Length ``n_candidate_chunks + 1``; the
        final entry is ``-inf`` (nothing remains)."""
        n = self.n_candidate_chunks
        bounds = np.full(n + 1, -np.inf, dtype=np.float64)
        if n == 0:
            return bounds
        relevance = np.zeros(n, dtype=np.float64)
        # Shared all-zeros row for terms with no chunks at all (ANY mode
        # only); read-only below, so one allocation serves every term.
        absent = np.zeros(n, dtype=np.float64)
        for plist in self.posting_lists:
            # Max impact of this term within each candidate chunk (0 when
            # the term is absent — possible in ANY mode only).
            idx = np.searchsorted(plist.chunk_ids, self.candidate_chunks)
            idx_clipped = np.minimum(idx, max(plist.chunk_ids.shape[0] - 1, 0))
            if plist.chunk_ids.shape[0]:
                present = plist.chunk_ids[idx_clipped] == self.candidate_chunks
                per_chunk = np.where(present, plist.chunk_max_impact[idx_clipped], 0.0)
            else:
                per_chunk = absent
            # Suffix max over the candidate list, then sum across terms:
            # any remaining doc scores at most the sum of the remaining
            # per-term maxima.
            relevance += np.maximum.accumulate(per_chunk[::-1])[::-1]
        chunk_starts = self.index.chunk_map.bounds[self.candidate_chunks]
        prior = self.index.static_ranks[chunk_starts]
        bounds[:n] = (
            self.weights.relevance_weight * relevance
            + self.weights.static_weight * prior
        )
        return bounds

    def bound_from_position(self, position: int) -> float:
        """Upper bound on scores in candidate chunks ``position..end``."""
        if not 0 <= position <= self.n_candidate_chunks:
            raise ExecutionError(
                f"position {position} outside [0, {self.n_candidate_chunks}]"
            )
        return float(self.bounds_from[position])

    # ------------------------------------------------------------------
    # Chunk evaluation
    # ------------------------------------------------------------------

    def score_chunk(self, position: int) -> ChunkOutcome:
        """Evaluate the candidate chunk at ``position`` in the plan."""
        if not 0 <= position < self.n_candidate_chunks:
            raise ExecutionError(
                f"position {position} outside [0, {self.n_candidate_chunks})"
            )
        chunk_id = int(self.candidate_chunks[position])
        slices = [plist.chunk_slice(chunk_id) for plist in self.posting_lists]
        postings_scanned = int(sum(ids.shape[0] for ids, _ in slices))

        if self.query.mode is MatchMode.ALL:
            doc_ids, relevance = self._intersect(slices)
        else:
            doc_ids, relevance = self._accumulate(slices, chunk_id)

        scores = (
            self.weights.relevance_weight * relevance
            + self.weights.static_weight * self.index.static_ranks[doc_ids]
            if doc_ids.shape[0]
            else np.empty(0, dtype=np.float64)
        )
        return ChunkOutcome(
            chunk_id=chunk_id,
            doc_ids=doc_ids,
            scores=scores,
            postings_scanned=postings_scanned,
            n_matched=int(doc_ids.shape[0]),
        )

    @staticmethod
    def _intersect(
        slices: List[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Conjunctive match: intersect doc ids, summing impacts."""
        # Start from the shortest slice to keep the working set small.
        order = sorted(range(len(slices)), key=lambda i: slices[i][0].shape[0])
        base_ids, base_impacts = slices[order[0]]
        doc_ids = base_ids
        relevance = base_impacts.astype(np.float64, copy=True)
        for i in order[1:]:
            other_ids, other_impacts = slices[i]
            if doc_ids.shape[0] == 0 or other_ids.shape[0] == 0:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
            pos = np.searchsorted(other_ids, doc_ids)
            pos_clipped = np.minimum(pos, other_ids.shape[0] - 1)
            present = other_ids[pos_clipped] == doc_ids
            doc_ids = doc_ids[present]
            relevance = relevance[present] + other_impacts[pos_clipped[present]]
        return doc_ids, relevance

    def _accumulate(
        self, slices: List[Tuple[np.ndarray, np.ndarray]], chunk_id: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Disjunctive match: dense accumulator over the chunk's doc range."""
        start, end = self.index.chunk_map.chunk_range(chunk_id)
        accumulator = np.zeros(end - start, dtype=np.float64)
        for ids, impacts in slices:
            if ids.shape[0]:
                accumulator[ids - start] += impacts
        local = np.nonzero(accumulator > 0.0)[0]
        return (local + start).astype(np.int64), accumulator[local]

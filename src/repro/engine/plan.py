"""Query planning: posting-list selection, candidate chunks, score bounds.

A :class:`QueryPlan` is built once per (query, index) pair and captures
everything both the sequential and the parallel executor need:

* the posting lists of the query's terms;
* the **candidate chunk list** — for conjunctive queries, only chunks in
  which *every* term occurs can contain a match, so the executor walks
  that (often short) list instead of the whole document space. Chunk
  skipping is metadata-only in a real ISN, and is modeled as free here;
* **suffix score bounds** — for each position in the candidate list, an
  upper bound on the composite score of any document in the remaining
  chunks. Bounds combine per-term per-chunk max impacts (suffix maxima)
  with the static-rank prior at the chunk boundary, which is
  non-increasing in doc id by index construction;
* **per-chunk score bounds** — for each individual candidate chunk, an
  upper bound on the composite score of any document *inside that one
  chunk* (per-term maxima summed, no suffix max). Unlike the suffix
  bounds these are not monotone, which is exactly why they are useful:
  a weak chunk sitting before a strong one can be skipped on its own
  without stopping the scan (see ``TerminationState.should_skip``);
* the per-chunk scorer used to produce :class:`ChunkOutcome` values,
  plus a batched multi-chunk kernel (:meth:`QueryPlan.score_chunks`)
  that evaluates many candidate chunks in one set of numpy dispatches
  and is bit-identical to scoring each chunk on its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.query import MatchMode, Query
from repro.errors import ExecutionError
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingList
from repro.ranking.composite import ScoreWeights


@dataclass(frozen=True)
class ChunkOutcome:
    """Result of evaluating one chunk: matches, scores, work counters."""

    chunk_id: int
    doc_ids: np.ndarray  # matched documents (ascending)
    scores: np.ndarray  # composite scores, parallel to doc_ids
    postings_scanned: int
    n_matched: int

    @property
    def empty(self) -> bool:
        return self.n_matched == 0


def _take_ranges(values: np.ndarray, starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Gather ``values[starts[i] : starts[i] + sizes[i]]`` for all ``i``,
    concatenated, in one vectorized fancy-index (no per-range Python loop)."""
    offsets = np.empty(sizes.shape[0] + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(sizes, out=offsets[1:])
    total = int(offsets[-1])
    indices = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets[:-1], sizes)
    return values[indices]


class QueryPlan:
    """Planned execution state for one query over one index."""

    def __init__(
        self,
        query: Query,
        index: InvertedIndex,
        weights: Optional[ScoreWeights] = None,
    ) -> None:
        self.query = query
        self.index = index
        self.weights = weights or ScoreWeights()

        found = index.lexicon.posting_lists(list(query.term_ids))
        missing = len(query.term_ids) - len(found)
        if query.mode is MatchMode.ALL and missing > 0:
            # A conjunctive query with an unindexed term matches nothing.
            self.posting_lists: List[PostingList] = []
        else:
            self.posting_lists = found

        self.candidate_chunks = self._candidate_chunks()
        self.chunk_bounds: np.ndarray
        self.bounds_from = self._suffix_bounds()  # also sets chunk_bounds
        # Per-(term, position) posting-slice table, built lazily by the
        # first score_chunks call; per-chunk execution never pays for it.
        self._slice_table: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when the query can match no document at all."""
        return self.candidate_chunks.shape[0] == 0

    @property
    def n_candidate_chunks(self) -> int:
        return int(self.candidate_chunks.shape[0])

    def _candidate_chunks(self) -> np.ndarray:
        """Chunks that can contain a match, in document order.

        ``PostingList.chunk_ids`` arrays are sorted-unique by
        construction (``np.nonzero`` output over chunk sizes), so the
        intersection runs with ``assume_unique=True`` — skipping the
        per-operand ``np.unique`` sort — and the union is one
        ``np.unique`` over the concatenation instead of a pairwise
        reduce.
        """
        if not self.posting_lists:
            return np.empty(0, dtype=np.int64)
        chunk_sets = [plist.chunk_ids for plist in self.posting_lists]
        if self.query.mode is MatchMode.ALL:
            combined = reduce(
                lambda a, b: np.intersect1d(a, b, assume_unique=True), chunk_sets
            )
        else:
            combined = np.unique(np.concatenate(chunk_sets))
        return combined.astype(np.int64)

    def _suffix_bounds(self) -> np.ndarray:
        """``bounds_from[i]``: max composite score achievable by any doc in
        candidate chunks ``i..end``. Length ``n_candidate_chunks + 1``; the
        final entry is ``-inf`` (nothing remains)."""
        n = self.n_candidate_chunks
        bounds = np.full(n + 1, -np.inf, dtype=np.float64)
        if n == 0:
            self.chunk_bounds = np.empty(0, dtype=np.float64)
            return bounds
        relevance = np.zeros(n, dtype=np.float64)
        chunk_relevance = np.zeros(n, dtype=np.float64)
        # Shared all-zeros row for terms with no chunks at all (ANY mode
        # only); read-only below, so one allocation serves every term.
        absent = np.zeros(n, dtype=np.float64)
        for plist in self.posting_lists:
            # Max impact of this term within each candidate chunk (0 when
            # the term is absent — possible in ANY mode only).
            idx = np.searchsorted(plist.chunk_ids, self.candidate_chunks)
            idx_clipped = np.minimum(idx, max(plist.chunk_ids.shape[0] - 1, 0))
            if plist.chunk_ids.shape[0]:
                present = plist.chunk_ids[idx_clipped] == self.candidate_chunks
                per_chunk = np.where(present, plist.chunk_max_impact[idx_clipped], 0.0)
            else:
                per_chunk = absent
            # Suffix max over the candidate list, then sum across terms:
            # any remaining doc scores at most the sum of the remaining
            # per-term maxima.
            relevance += np.maximum.accumulate(per_chunk[::-1])[::-1]
            # Per-chunk sum (no suffix max): the best any doc *inside*
            # candidate chunk i can score from this term.
            chunk_relevance += per_chunk
        chunk_starts = self.index.chunk_map.bounds[self.candidate_chunks]
        prior = self.index.static_ranks[chunk_starts]
        bounds[:n] = (
            self.weights.relevance_weight * relevance
            + self.weights.static_weight * prior
        )
        # Individual-chunk upper bounds, used by safe per-chunk skipping.
        self.chunk_bounds = (
            self.weights.relevance_weight * chunk_relevance
            + self.weights.static_weight * prior
        )
        return bounds

    def bound_from_position(self, position: int) -> float:
        """Upper bound on scores in candidate chunks ``position..end``."""
        if not 0 <= position <= self.n_candidate_chunks:
            raise ExecutionError(
                f"position {position} outside [0, {self.n_candidate_chunks}]"
            )
        return float(self.bounds_from[position])

    def chunk_bound(self, position: int) -> float:
        """Upper bound on scores *inside* the candidate chunk at ``position``.

        Tighter than :meth:`bound_from_position` for one chunk because no
        suffix maximum is taken; a chunk whose bound cannot beat the
        current top-k threshold can be skipped individually even when
        later chunks remain promising.
        """
        if not 0 <= position < self.n_candidate_chunks:
            raise ExecutionError(
                f"position {position} outside [0, {self.n_candidate_chunks})"
            )
        return float(self.chunk_bounds[position])

    # ------------------------------------------------------------------
    # Chunk evaluation
    # ------------------------------------------------------------------

    def score_chunk(self, position: int) -> ChunkOutcome:
        """Evaluate the candidate chunk at ``position`` in the plan."""
        if not 0 <= position < self.n_candidate_chunks:
            raise ExecutionError(
                f"position {position} outside [0, {self.n_candidate_chunks})"
            )
        chunk_id = int(self.candidate_chunks[position])
        slices = [plist.chunk_slice(chunk_id) for plist in self.posting_lists]
        postings_scanned = int(sum(ids.shape[0] for ids, _ in slices))

        if self.query.mode is MatchMode.ALL:
            doc_ids, relevance = self._intersect(slices)
        else:
            doc_ids, relevance = self._accumulate(slices, chunk_id)

        scores = (
            self.weights.relevance_weight * relevance
            + self.weights.static_weight * self.index.static_ranks[doc_ids]
            if doc_ids.shape[0]
            else np.empty(0, dtype=np.float64)
        )
        return ChunkOutcome(
            chunk_id=chunk_id,
            doc_ids=doc_ids,
            scores=scores,
            postings_scanned=postings_scanned,
            n_matched=int(doc_ids.shape[0]),
        )

    def score_chunks(self, positions: Sequence[int]) -> List[ChunkOutcome]:
        """Evaluate several candidate chunks in one batch of numpy calls.

        ``positions`` must be strictly ascending plan positions. Returns
        one :class:`ChunkOutcome` per position, **bit-identical** to
        ``[self.score_chunk(p) for p in positions]``: the matched doc-id
        sets are recovered exactly (chunks partition the doc space, so
        intersecting/accumulating the concatenated slices equals doing so
        chunk by chunk), and relevance is accumulated per document in the
        same term order and left-to-right grouping the per-chunk scorer
        uses, so the float64 sums agree to the last bit.

        The point is dispatch amortization: the per-chunk scorer pays
        ~O(terms) numpy calls on tiny arrays *per chunk*; this kernel
        pays one set of numpy calls on arrays the size of the whole
        batch, which is what makes the batched executor several-fold
        faster than per-chunk execution (see :mod:`repro.engine.batch`).
        """
        pos = np.asarray(positions, dtype=np.int64)
        n_sel = int(pos.shape[0])
        if n_sel == 0:
            return []
        if n_sel == 1:
            return [self.score_chunk(int(pos[0]))]
        if (
            int(pos[0]) < 0
            or int(pos[-1]) >= self.n_candidate_chunks
            or bool(np.any(pos[:-1] >= pos[1:]))
        ):
            raise ExecutionError(
                f"positions must be strictly ascending within "
                f"[0, {self.n_candidate_chunks}), got {pos.tolist()}"
            )

        chunk_ids = self.candidate_chunks[pos]
        table_starts, table_sizes = self._chunk_slices()
        starts = table_starts[:, pos]
        sizes = table_sizes[:, pos]
        postings_scanned = sizes.sum(axis=0)

        doc_starts = self.index.chunk_map.bounds[chunk_ids]
        doc_ends = self.index.chunk_map.bounds[chunk_ids + 1]
        if self.query.mode is MatchMode.ALL:
            doc_ids, relevance = self._intersect_many(starts, sizes, doc_starts)
        else:
            doc_ids, relevance = self._accumulate_many(
                starts, sizes, doc_starts, doc_ends
            )

        if doc_ids.shape[0]:
            scores = (
                self.weights.relevance_weight * relevance
                + self.weights.static_weight * self.index.static_ranks[doc_ids]
            )
        else:
            scores = np.empty(0, dtype=np.float64)

        # Split the batch-wide match arrays back into per-chunk outcomes:
        # matched ids are ascending, chunks are disjoint doc-id ranges.
        cuts_lo = np.searchsorted(doc_ids, doc_starts)
        cuts_hi = np.searchsorted(doc_ids, doc_ends)
        outcomes = []
        for i in range(n_sel):
            lo = int(cuts_lo[i])
            hi = int(cuts_hi[i])
            outcomes.append(
                ChunkOutcome(
                    chunk_id=int(chunk_ids[i]),
                    doc_ids=doc_ids[lo:hi],
                    scores=scores[lo:hi],
                    postings_scanned=int(postings_scanned[i]),
                    n_matched=hi - lo,
                )
            )
        return outcomes

    def _chunk_slices(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-(term, plan position) posting-slice starts and sizes.

        Row ``t``, column ``i`` locates term ``t``'s postings for the
        candidate chunk at position ``i`` (0-length when the term misses
        the chunk — possible in ANY mode only). Built once per plan, on
        the first batched call; every wave then selects its columns with
        one fancy index instead of per-term binary searches.
        """
        cached = self._slice_table
        if cached is not None:
            return cached
        n = self.n_candidate_chunks
        n_terms = len(self.posting_lists)
        starts = np.zeros((n_terms, n), dtype=np.int64)
        sizes = np.zeros((n_terms, n), dtype=np.int64)
        for t, plist in enumerate(self.posting_lists):
            if plist.chunk_ids.shape[0] == 0:
                continue
            idx = np.searchsorted(plist.chunk_ids, self.candidate_chunks)
            idx_clipped = np.minimum(idx, plist.chunk_ids.shape[0] - 1)
            present = plist.chunk_ids[idx_clipped] == self.candidate_chunks
            offsets = plist.chunk_offsets[idx_clipped]
            starts[t] = np.where(present, offsets[:, 0], 0)
            sizes[t] = np.where(present, offsets[:, 1] - offsets[:, 0], 0)
        self._slice_table = (starts, sizes)
        return starts, sizes

    def _intersect_many(
        self, starts: np.ndarray, sizes: np.ndarray, doc_starts: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched conjunctive match over the selected chunks.

        The matched doc-id *set* is order-independent, so membership is
        narrowed starting from the term with the fewest gathered
        postings. Relevance is then re-accumulated per document in each
        chunk's own slice-length term order (stable ascending — exactly
        ``_intersect``'s ordering) as a left-to-right fold, which makes
        the float64 sums bit-identical to per-chunk scoring.
        """
        totals = sizes.sum(axis=1)
        order = np.argsort(totals, kind="stable")
        base = int(order[0])
        base_plist = self.posting_lists[base]
        doc_ids = _take_ranges(base_plist.doc_ids, starts[base], sizes[base])
        for t in order[1:].tolist():
            if doc_ids.shape[0] == 0:
                break
            other_ids = self.posting_lists[t].doc_ids
            if other_ids.shape[0] == 0:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
            at = np.searchsorted(other_ids, doc_ids)
            at_clipped = np.minimum(at, other_ids.shape[0] - 1)
            doc_ids = doc_ids[other_ids[at_clipped] == doc_ids]
        if doc_ids.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)

        # impacts[t, d]: impact of term t for matched doc d (every term
        # matches every doc in ALL mode).
        n_docs = doc_ids.shape[0]
        impacts = np.empty((len(self.posting_lists), n_docs), dtype=np.float64)
        for t, plist in enumerate(self.posting_lists):
            at = np.searchsorted(plist.doc_ids, doc_ids)
            impacts[t] = plist.impacts[at]
        # Each doc folds its terms in its own chunk's slice-length order.
        term_order = np.argsort(sizes, axis=0, kind="stable")
        row = np.searchsorted(doc_starts, doc_ids, side="right") - 1
        ordered = term_order[:, row]
        columns = np.arange(n_docs)
        relevance = impacts[ordered[0], columns]
        for j in range(1, len(self.posting_lists)):
            relevance += impacts[ordered[j], columns]
        return doc_ids, relevance

    def _accumulate_many(
        self,
        starts: np.ndarray,
        sizes: np.ndarray,
        doc_starts: np.ndarray,
        doc_ends: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched disjunctive match: one dense accumulator covering the
        selected chunks' concatenated doc ranges, filled per term in
        posting-list order — the same per-document addition order as the
        per-chunk accumulator, hence bit-identical sums."""
        lengths = doc_ends - doc_starts
        acc_offsets = np.empty(lengths.shape[0] + 1, dtype=np.int64)
        acc_offsets[0] = 0
        np.cumsum(lengths, out=acc_offsets[1:])
        accumulator = np.zeros(int(acc_offsets[-1]), dtype=np.float64)
        n_sel = doc_starts.shape[0]
        for t, plist in enumerate(self.posting_lists):
            ids_t = _take_ranges(plist.doc_ids, starts[t], sizes[t])
            if ids_t.shape[0] == 0:
                continue
            impacts_t = _take_ranges(plist.impacts, starts[t], sizes[t])
            rows_t = np.repeat(np.arange(n_sel), sizes[t])
            local = ids_t - doc_starts[rows_t] + acc_offsets[rows_t]
            accumulator[local] += impacts_t
        local_nz = np.nonzero(accumulator > 0.0)[0]
        row = np.searchsorted(acc_offsets, local_nz, side="right") - 1
        doc_ids = (local_nz - acc_offsets[row] + doc_starts[row]).astype(np.int64)
        return doc_ids, accumulator[local_nz]

    @staticmethod
    def _intersect(
        slices: List[Tuple[np.ndarray, np.ndarray]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Conjunctive match: intersect doc ids, summing impacts."""
        # Start from the shortest slice to keep the working set small.
        order = sorted(range(len(slices)), key=lambda i: slices[i][0].shape[0])
        base_ids, base_impacts = slices[order[0]]
        doc_ids = base_ids
        relevance = base_impacts.astype(np.float64, copy=True)
        for i in order[1:]:
            other_ids, other_impacts = slices[i]
            if doc_ids.shape[0] == 0 or other_ids.shape[0] == 0:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
            pos = np.searchsorted(other_ids, doc_ids)
            pos_clipped = np.minimum(pos, other_ids.shape[0] - 1)
            present = other_ids[pos_clipped] == doc_ids
            doc_ids = doc_ids[present]
            relevance = relevance[present] + other_impacts[pos_clipped[present]]
        return doc_ids, relevance

    def _accumulate(
        self, slices: List[Tuple[np.ndarray, np.ndarray]], chunk_id: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Disjunctive match: dense accumulator over the chunk's doc range."""
        start, end = self.index.chunk_map.chunk_range(chunk_id)
        accumulator = np.zeros(end - start, dtype=np.float64)
        for ids, impacts in slices:
            if ids.shape[0]:
                accumulator[ids - start] += impacts
        local = np.nonzero(accumulator > 0.0)[0]
        return (local + start).astype(np.int64), accumulator[local]

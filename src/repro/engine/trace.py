"""Cached per-chunk evaluation trace.

Evaluating a chunk is deterministic given (query, index), independent of
execution order, degree, or termination state. :class:`ChunkTrace`
memoizes chunk outcomes and their virtual costs so that running the same
query at several parallelism degrees (as the speedup-profile measurement
does) evaluates each chunk at most once.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.engine.cost import CostModel
from repro.engine.plan import ChunkOutcome, QueryPlan


class ChunkTrace:
    """Lazy, memoizing view of a plan's chunk outcomes and costs."""

    def __init__(self, plan: QueryPlan, cost_model: CostModel) -> None:
        self.plan = plan
        self.cost_model = cost_model
        self._cache: Dict[int, Tuple[ChunkOutcome, float]] = {}
        # Memoization statistics. Approximate under execute_threaded
        # (increments may race), exact for the virtual-time executors;
        # never used for control flow.
        self.n_lookups = 0
        self.n_hits = 0

    @property
    def n_positions(self) -> int:
        return self.plan.n_candidate_chunks

    def get(self, position: int) -> Tuple[ChunkOutcome, float]:
        """Outcome and virtual cost of the candidate chunk at ``position``."""
        self.n_lookups += 1  # reprolint: disable=R012 -- stats only, monotone; racy increments under threads lose counts, never corrupt
        cached = self._cache.get(position)
        if cached is not None:
            self.n_hits += 1  # reprolint: disable=R012 -- stats only, monotone; racy increments under threads lose counts, never corrupt
            return cached
        outcome = self.plan.score_chunk(position)
        cost = self.cost_model.chunk_time(outcome)
        entry = (outcome, cost)
        # Benign race: score_chunk is deterministic in `position`, so two
        # threads can only store an equal value, and a dict store is a
        # single GIL-atomic bytecode — no torn state is observable.
        self._cache[position] = entry  # reprolint: disable=R012 -- idempotent memo write; value is deterministic per position and dict stores are GIL-atomic
        return entry

    @property
    def n_evaluated(self) -> int:
        """How many distinct chunks have been materialized so far."""
        return len(self._cache)

"""Batched multi-query execution: the throughput hot path.

The per-query executors (:mod:`repro.engine.sequential`,
:mod:`repro.engine.parallel`) pay numpy dispatch overhead per
(query, chunk): every chunk is a fresh round of ~O(terms) numpy calls on
arrays of a few dozen elements, so the interpreter — not the hardware —
sets the throughput ceiling. :class:`BatchExecutor` removes that ceiling
along two axes:

* **multi-chunk waves** — each active query nominates a *wave* of
  upcoming candidate chunks, scored in one call to
  :meth:`~repro.engine.plan.QueryPlan.score_chunks`, so dispatch cost is
  amortized over the wave instead of paid per chunk. Waves start small
  and double per survived wave, so short queries speculate little and
  long scans quickly reach large, cheap batches;
* **many queries in flight** — the executor plans the whole batch up
  front and round-robins waves across active queries, the scheduling
  shape of a real ISN serving concurrent traffic (and of the
  real-thread validation mode in :mod:`repro.engine.threads`).

Results are **bit-identical** to ``engine.execute(query, degree=1)`` for
every query in the batch: the scoring kernel reproduces per-chunk
arithmetic exactly, and the merge replay applies the termination and
skip rules chunk-by-chunk in sequential order — chunks scored beyond a
mid-wave stop are *discarded*, never merged (they are speculative waste,
tracked in :class:`BatchStats` but invisible in the per-query results,
exactly like the speculative chunks of the parallel executor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.engine.cost import CostModel
from repro.engine.plan import QueryPlan
from repro.engine.query import Query
from repro.engine.results import ExecutionResult, make_ranked
from repro.engine.termination import TerminationConfig, TerminationState
from repro.engine.topk import TopK
from repro.errors import ExecutionError
from repro.index.inverted import InvertedIndex
from repro.ranking.composite import ScoreWeights
from repro.util.validation import require_int_in_range


@dataclass
class BatchStats:
    """Work accounting for one :meth:`BatchExecutor.execute` call."""

    queries: int = 0
    waves: int = 0
    chunks_evaluated: int = 0
    chunks_skipped: int = 0
    #: chunks scored speculatively but discarded because a stop or skip
    #: decision overtook them mid-wave (wasted compute, zero result skew).
    chunks_speculative: int = 0


class _QueryRun:
    """Mutable per-query execution state inside a batch.

    Mirrors the sequential executor's loop variables; the invariants that
    make wave replay exact are documented on :meth:`merge_wave`.
    """

    __slots__ = (
        "plan",
        "cost_model",
        "topk",
        "state",
        "elapsed",
        "chunks_evaluated",
        "chunks_skipped",
        "postings_scanned",
        "docs_matched",
        "position",
        "wave",
        "done",
    )

    def __init__(
        self, plan: QueryPlan, cost_model: CostModel,
        termination: TerminationConfig, initial_wave: int,
    ) -> None:
        self.plan = plan
        self.cost_model = cost_model
        self.topk = TopK(plan.query.k)
        self.state = TerminationState(termination, plan, self.topk)
        self.elapsed = cost_model.query_fixed_cost
        self.chunks_evaluated = 0
        self.chunks_skipped = 0
        self.postings_scanned = 0
        self.docs_matched = 0
        self.position = 0
        self.wave = initial_wave
        self.done = False

    def select_wave(self) -> List[int]:
        """Nominate up to ``wave`` upcoming positions for batched scoring.

        A pure lookahead from the cursor: skippable chunks are passed
        over, and the scan stops where a termination rule *would* fire
        right now. Both decisions are monotone in the top-k threshold and
        in ``matches_seen`` — merging can only confirm them, never revert
        them — so selection commits nothing (see :meth:`merge_wave`).
        """
        selected: List[int] = []
        position = self.position
        state = self.state
        while len(selected) < self.wave and state.would_stop(position) is None:
            if not state.should_skip(position):
                selected.append(position)
            position += 1
        return selected

    def merge_wave(self, selected: List[int], outcomes: Sequence, stats: BatchStats) -> None:
        """Replay the scored wave with exact sequential semantics.

        Before merging each scored chunk, the stop and skip rules are
        re-consulted at every intervening position in order — identical
        to the sequential executor's control flow. Positions selection
        passed over re-skip deterministically (thresholds only rise);
        chunks overtaken by a stop or a newly-valid skip are discarded as
        speculative waste. The resulting per-query state is therefore
        bit-identical to having never batched at all.
        """
        for target, outcome in zip(selected, outcomes):
            if self.done:
                stats.chunks_speculative += 1
                continue
            while self.position < target and not self.done:
                if self.state.should_stop(self.position):
                    self.done = True
                elif self.state.should_skip(self.position):
                    self.elapsed += self.cost_model.skip_time()
                    self.chunks_skipped += 1
                    self.position += 1
                else:  # pragma: no cover - selection invariant violated
                    raise ExecutionError(
                        f"batch replay reached unscored position {self.position}"
                    )
            if self.done:
                stats.chunks_speculative += 1
                continue
            if self.state.should_stop(target):
                self.done = True
                stats.chunks_speculative += 1
                continue
            if self.state.should_skip(target):
                self.elapsed += self.cost_model.skip_time()
                self.chunks_skipped += 1
                self.position = target + 1
                stats.chunks_speculative += 1
                continue
            self.elapsed += self.cost_model.chunk_time(outcome)
            self.chunks_evaluated += 1
            self.postings_scanned += outcome.postings_scanned
            self.docs_matched += outcome.n_matched
            self.topk.offer_many(outcome.scores, outcome.doc_ids)
            self.state.record_matches(outcome.n_matched)
            self.position = target + 1

    def finalize_tail(self) -> None:
        """Drain the cursor to the stop point when no chunk needs scoring
        (everything remaining is skippable or a rule fires at the front)."""
        while not self.done:
            if self.state.should_stop(self.position):
                self.done = True
            elif self.state.should_skip(self.position):
                self.elapsed += self.cost_model.skip_time()
                self.chunks_skipped += 1
                self.position += 1
            else:  # pragma: no cover - selection invariant violated
                raise ExecutionError(
                    f"batch finalize reached unscored position {self.position}"
                )

    def result(self) -> ExecutionResult:
        self.elapsed += self.cost_model.rerank_time(self.docs_matched)
        return ExecutionResult(
            query=self.plan.query,
            degree=1,
            results=make_ranked(self.topk.results()),
            latency=self.elapsed,
            cpu_time=self.elapsed,
            chunks_evaluated=self.chunks_evaluated,
            postings_scanned=self.postings_scanned,
            docs_matched=self.docs_matched,
            terminated_early=self.state.terminated_early,
            termination_rule=self.state.fired_rule,
            worker_busy=(self.elapsed - self.cost_model.query_fixed_cost,),
            chunks_skipped=self.chunks_skipped,
        )


class BatchExecutor:
    """Executes batches of queries through the multi-chunk kernel.

    Stateless between calls except for ``last_stats``; one instance can
    be shared by concurrent threads (see
    :func:`repro.engine.threads.execute_threaded_batch`) because all
    mutable execution state lives in per-call ``_QueryRun`` objects.
    """

    def __init__(
        self,
        index: InvertedIndex,
        weights: Optional[ScoreWeights] = None,
        cost_model: Optional[CostModel] = None,
        termination: Optional[TerminationConfig] = None,
        initial_wave: int = 4,
        max_wave: int = 64,
    ) -> None:
        require_int_in_range(initial_wave, "initial_wave", low=1)
        require_int_in_range(max_wave, "max_wave", low=initial_wave)
        self.index = index
        self.weights = weights or ScoreWeights()
        self.cost_model = cost_model or CostModel()
        self.termination = termination or TerminationConfig()
        self.initial_wave = initial_wave
        self.max_wave = max_wave
        self.last_stats = BatchStats()

    def _start(self, query: Query) -> _QueryRun:
        plan = QueryPlan(query, self.index, self.weights)
        return _QueryRun(plan, self.cost_model, self.termination, self.initial_wave)

    def _advance(self, run: _QueryRun, stats: BatchStats) -> None:
        """Run one scheduling step for ``run``: select, score, merge."""
        selected = run.select_wave()
        if not selected:
            run.finalize_tail()
            return
        outcomes = run.plan.score_chunks(selected)
        stats.waves += 1
        run.merge_wave(selected, outcomes, stats)
        if not run.done and len(selected) < run.wave:
            # The lookahead hit a stop rule before filling the wave;
            # merging only strengthened it, so the tail drains now.
            run.finalize_tail()
        run.wave = min(run.wave * 2, self.max_wave)

    def execute(self, queries: Sequence[Query]) -> List[ExecutionResult]:
        """Execute ``queries`` as one batch, returning per-query results
        in input order — each bit-identical to sequential execution."""
        stats = BatchStats(queries=len(queries))
        runs = [self._start(query) for query in queries]
        active = [run for run in runs if not run.done]
        while active:
            for run in active:
                self._advance(run, stats)
            active = [run for run in active if not run.done]
        results = [run.result() for run in runs]
        for run in runs:
            stats.chunks_evaluated += run.chunks_evaluated
            stats.chunks_skipped += run.chunks_skipped
        self.last_stats = stats
        return results

    def execute_one(self, query: Query) -> ExecutionResult:
        """Execute a single query through the batched kernel (the unit of
        work the real-thread batch validation mode claims per thread)."""
        stats = BatchStats(queries=1)
        run = self._start(query)
        while not run.done:
            self._advance(run, stats)
        return run.result()

    def __repr__(self) -> str:
        return (
            f"BatchExecutor(index={self.index!r}, "
            f"initial_wave={self.initial_wave}, max_wave={self.max_wave})"
        )

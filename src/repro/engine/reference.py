"""Brute-force reference search: the engine's differential-testing oracle.

Scores *every* document against the query straight from the index's
posting data (no chunking, no bounds, no termination, no planning) and
sorts. Quadratically slower than the engine, used only by tests and
debugging: any divergence between :func:`brute_force_search` and the
engine under exhaustive settings is an engine bug by definition.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.engine.query import MatchMode, Query
from repro.index.inverted import InvertedIndex
from repro.ranking.composite import ScoreWeights


def brute_force_search(
    index: InvertedIndex,
    query: Query,
    weights: ScoreWeights = None,
) -> List[Tuple[int, float]]:
    """Exhaustively rank documents for ``query``.

    Returns the top-``query.k`` (doc_id, score) pairs under the same
    composite score and tie rule as the engine (score desc, doc id asc).
    """
    weights = weights or ScoreWeights()
    n_docs = index.n_docs
    relevance = np.zeros(n_docs, dtype=np.float64)
    match_count = np.zeros(n_docs, dtype=np.int64)

    present_terms = 0
    for term_id in query.term_ids:
        plist = index.lexicon.postings_or_none(term_id)
        if plist is None:
            continue
        present_terms += 1
        relevance[plist.doc_ids] += plist.impacts
        match_count[plist.doc_ids] += 1

    if query.mode is MatchMode.ALL:
        if present_terms < query.n_terms or present_terms == 0:
            return []
        matched = match_count == present_terms
    else:
        matched = match_count > 0
    doc_ids = np.nonzero(matched)[0]
    if doc_ids.size == 0:
        return []

    scores = (
        weights.relevance_weight * relevance[doc_ids]
        + weights.static_weight * index.static_ranks[doc_ids]
    )
    # Sort by (score desc, doc id asc); doc_ids is ascending, and a
    # stable sort on descending score preserves ascending ids for ties.
    order = np.argsort(-scores, kind="stable")[: query.k]
    return [(int(doc_ids[i]), float(scores[i])) for i in order]

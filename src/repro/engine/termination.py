"""Early-termination and chunk-skipping rules.

An ISN evaluates documents in static-rank order, so it can stop long
before exhausting the index. Two *stop* rules are implemented; both may
be active at once and the executor stops at the first that fires:

* **Match budget** (production-style, approximate): stop once at least
  ``match_budget`` matching documents have been evaluated. Because
  earlier documents have higher static rank, the unevaluated matches are
  unlikely to displace the top-k; this is the dominant termination rule
  in rank-ordered production indexes and the source of the paper's
  short-query/long-query cost asymmetry (common term combinations fill
  the budget within a few chunks; rare combinations scan everything).
* **Score bound** (safe): stop when no remaining document can strictly
  beat the current k-th score, using the plan's suffix bounds. With this
  rule alone, early-terminated results are bit-identical to exhaustive
  evaluation.

Orthogonally, **per-chunk skipping** (``skip_chunks``, safe) skips an
*individual* candidate chunk whose own score bound cannot beat the
current k-th score and keeps scanning — the suffix rule can only cut
the tail of the scan, skipping also removes weak chunks in the middle.
Skipping never changes the top-k: the skipped chunk provably contains
no admissible document (a tie at the threshold loses because every doc
in an unmerged chunk has a higher doc id than everything in the heap).

Setting ``match_budget=None`` disables the approximate rule (used by the
equivalence tests); ``use_score_bound=False`` disables the safe stop
rule. All-rules-off is a legitimate configuration — the exhaustive
reference mode equivalence tests execute against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine.plan import QueryPlan
from repro.engine.topk import TopK
from repro.util.validation import require, require_int_in_range


@dataclass(frozen=True)
class TerminationConfig:
    """Which termination/skipping rules are active, and their parameters."""

    match_budget: Optional[int] = 256
    use_score_bound: bool = True
    skip_chunks: bool = False

    def __post_init__(self) -> None:
        if self.match_budget is not None:
            require_int_in_range(self.match_budget, "match_budget", low=1)
        # The real invariant is on field domains, not on rule presence:
        # disabling every rule is valid (exhaustive reference mode), but
        # the flags must be actual booleans — a stray positional int
        # (e.g. a budget landing in use_score_bound) would silently
        # enable rules with a truthy garbage value.
        require(
            isinstance(self.use_score_bound, bool),
            f"use_score_bound must be a bool, got {self.use_score_bound!r}",
        )
        require(
            isinstance(self.skip_chunks, bool),
            f"skip_chunks must be a bool, got {self.skip_chunks!r}",
        )

    @property
    def is_exhaustive(self) -> bool:
        """True when no rule can reduce work: every chunk gets evaluated."""
        return (
            self.match_budget is None
            and not self.use_score_bound
            and not self.skip_chunks
        )


class TerminationState:
    """Mutable per-execution termination tracker.

    The executor reports merged chunk outcomes through
    :meth:`record_matches` and asks :meth:`should_stop` before claiming
    the candidate chunk at ``next_position``.
    """

    def __init__(self, config: TerminationConfig, plan: QueryPlan, topk: TopK) -> None:
        self.config = config
        self.plan = plan
        self.topk = topk
        self.matches_seen = 0
        self.fired_rule: Optional[str] = None
        # Bound arrays mirrored as plain float lists, built lazily: the
        # rules probe one scalar per position (twice per position on the
        # batch path — lookahead then replay), and list indexing avoids
        # the numpy scalar-extraction cost on every probe. ``tolist()``
        # preserves the exact float64 values, so decisions are identical.
        self._suffix_bounds: Optional[List[float]] = None
        self._chunk_bounds: Optional[List[float]] = None

    def record_matches(self, n_matched: int) -> None:
        self.matches_seen += int(n_matched)

    def would_stop(self, next_position: int) -> Optional[str]:
        """The rule that would fire before evaluating ``next_position``,
        or None — **pure**: no state is recorded. The batch executor's
        wave lookahead probes stop rules ahead of the merge replay and
        must not commit ``fired_rule`` early (an intermediate merge can
        change *which* rule fires first at a position)."""
        if next_position >= self.plan.n_candidate_chunks:
            return "exhausted"
        budget = self.config.match_budget
        if budget is not None and self.matches_seen >= max(budget, self.topk.k):
            return "match_budget"
        if self.config.use_score_bound and self.topk.full:
            bounds = self._suffix_bounds
            if bounds is None:
                bounds = self._suffix_bounds = self.plan.bounds_from.tolist()
            # Remaining docs all have higher ids than any doc already in
            # the heap, so a tie at the threshold would lose anyway:
            # stopping at bound <= threshold is safe.
            if bounds[next_position] <= self.topk.threshold:
                return "score_bound"
        return None

    def should_stop(self, next_position: int) -> bool:
        """True if execution may stop before evaluating ``next_position``."""
        if self.fired_rule is not None:
            return True
        rule = self.would_stop(next_position)
        if rule is not None:
            self.fired_rule = rule
            return True
        return False

    def should_skip(self, position: int) -> bool:
        """True if the candidate chunk at ``position`` may be skipped.

        Safe by the same argument as the score-bound stop rule, applied
        to one chunk: once the heap is full, a chunk whose individual
        upper bound is at or below the threshold contains no document
        that could enter the top-k (ties lose — any doc in a chunk at or
        past the claim cursor has a higher doc id than every doc already
        merged). Thresholds only rise, so a skip decision never needs
        revisiting.
        """
        if not (self.config.skip_chunks and self.topk.full):
            return False
        bounds = self._chunk_bounds
        if bounds is None:
            bounds = self._chunk_bounds = self.plan.chunk_bounds.tolist()
        return bounds[position] <= self.topk.threshold

    @property
    def terminated_early(self) -> bool:
        return self.fired_rule in ("match_budget", "score_bound")

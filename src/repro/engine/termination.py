"""Early-termination rules.

An ISN evaluates documents in static-rank order, so it can stop long
before exhausting the index. Two rules are implemented; both may be
active at once and the executor stops at the first that fires:

* **Match budget** (production-style, approximate): stop once at least
  ``match_budget`` matching documents have been evaluated. Because
  earlier documents have higher static rank, the unevaluated matches are
  unlikely to displace the top-k; this is the dominant termination rule
  in rank-ordered production indexes and the source of the paper's
  short-query/long-query cost asymmetry (common term combinations fill
  the budget within a few chunks; rare combinations scan everything).
* **Score bound** (safe): stop when no remaining document can strictly
  beat the current k-th score, using the plan's suffix bounds. With this
  rule alone, early-terminated results are bit-identical to exhaustive
  evaluation.

Setting ``match_budget=None`` disables the approximate rule (used by the
equivalence tests); ``use_score_bound=False`` disables the safe rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.plan import QueryPlan
from repro.engine.topk import TopK
from repro.util.validation import require, require_int_in_range


@dataclass(frozen=True)
class TerminationConfig:
    """Which termination rules are active, and their parameters."""

    match_budget: Optional[int] = 256
    use_score_bound: bool = True

    def __post_init__(self) -> None:
        if self.match_budget is not None:
            require_int_in_range(self.match_budget, "match_budget", low=1)
        require(
            self.match_budget is not None or self.use_score_bound or True,
            "at least one rule should usually be enabled",
        )


class TerminationState:
    """Mutable per-execution termination tracker.

    The executor reports merged chunk outcomes through
    :meth:`record_matches` and asks :meth:`should_stop` before claiming
    the candidate chunk at ``next_position``.
    """

    def __init__(self, config: TerminationConfig, plan: QueryPlan, topk: TopK) -> None:
        self.config = config
        self.plan = plan
        self.topk = topk
        self.matches_seen = 0
        self.fired_rule: Optional[str] = None

    def record_matches(self, n_matched: int) -> None:
        self.matches_seen += int(n_matched)

    def should_stop(self, next_position: int) -> bool:
        """True if execution may stop before evaluating ``next_position``."""
        if self.fired_rule is not None:
            return True
        if next_position >= self.plan.n_candidate_chunks:
            self.fired_rule = "exhausted"
            return True
        budget = self.config.match_budget
        if budget is not None and self.matches_seen >= max(budget, self.topk.k):
            self.fired_rule = "match_budget"
            return True
        if self.config.use_score_bound and self.topk.full:
            # Remaining docs all have higher ids than any doc already in
            # the heap, so a tie at the threshold would lose anyway:
            # stopping at bound <= threshold is safe.
            if self.plan.bound_from_position(next_position) <= self.topk.threshold:
                self.fired_rule = "score_bound"
                return True
        return False

    @property
    def terminated_early(self) -> bool:
        return self.fired_rule in ("match_budget", "score_bound")

"""Sequential (degree-1) query execution.

Walks the plan's candidate chunks in document order, merging each chunk's
matches into the top-k heap and consulting the termination rules before
claiming the next chunk. This is both the production baseline the paper
compares against and the reference semantics the parallel executor's
results are validated against.
"""

from __future__ import annotations

from repro.engine.query import Query
from repro.engine.results import ExecutionResult, make_ranked
from repro.engine.termination import TerminationConfig, TerminationState
from repro.engine.topk import TopK
from repro.engine.trace import ChunkTrace


def execute_sequential(
    trace: ChunkTrace, termination: TerminationConfig
) -> ExecutionResult:
    """Run the traced query sequentially and return its result."""
    plan = trace.plan
    query: Query = plan.query
    cost_model = trace.cost_model

    topk = TopK(query.k)
    state = TerminationState(termination, plan, topk)

    elapsed = cost_model.query_fixed_cost
    chunks_evaluated = 0
    chunks_skipped = 0
    postings_scanned = 0
    docs_matched = 0

    position = 0
    while not state.should_stop(position):
        if state.should_skip(position):
            # Safe per-chunk skip: the chunk's own bound cannot beat the
            # current threshold, so it is bypassed without touching its
            # postings — the scan continues at the next candidate.
            elapsed += cost_model.skip_time()
            chunks_skipped += 1
            position += 1
            continue
        outcome, cost = trace.get(position)
        elapsed += cost
        chunks_evaluated += 1
        postings_scanned += outcome.postings_scanned
        docs_matched += outcome.n_matched
        topk.offer_many(outcome.scores, outcome.doc_ids)
        state.record_matches(outcome.n_matched)
        position += 1

    elapsed += cost_model.rerank_time(docs_matched)

    return ExecutionResult(
        query=query,
        degree=1,
        results=make_ranked(topk.results()),
        latency=elapsed,
        cpu_time=elapsed,
        chunks_evaluated=chunks_evaluated,
        postings_scanned=postings_scanned,
        docs_matched=docs_matched,
        terminated_early=state.terminated_early,
        termination_rule=state.fired_rule,
        worker_busy=(elapsed - cost_model.query_fixed_cost,),
        chunks_skipped=chunks_skipped,
    )

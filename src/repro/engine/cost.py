"""Virtual-time cost model.

The paper measures query execution on a real 12-core Xeon; this
reproduction replaces wall-clock measurement with a deterministic cost
model applied to the engine's *actual* work counters. Crucially, the
sublinear speedups, the waste from speculative chunks, and the
short-vs-long query asymmetry all come from the engine's real dynamics —
the cost model only converts work units into seconds.

Default coefficients are calibrated so a mid-size synthetic shard yields
the service-time scale reported for production ISNs (median a few
milliseconds, long tail tens of milliseconds):

* ``posting_cost`` — per posting scanned (decode + score accumulate);
* ``match_cost`` — per matched document (scoring + heap bookkeeping);
* ``chunk_cost`` — per chunk claimed (work-queue claim, cursor setup);
* ``chunk_skip_cost`` — per candidate chunk *skipped* on its per-chunk
  score bound (a metadata compare; 0 by default, i.e. modeled as free
  exactly like candidate-chunk selection);
* ``query_fixed_cost`` — per query (parse, plan, result assembly);
  *sequential*, paid once regardless of parallelism degree (Amdahl term);
* ``fork_cost`` / ``join_cost`` — per *extra* worker when running with
  intra-query parallelism (thread dispatch and final merge barrier);
* ``merge_cost`` — per chunk-result merge into the shared top-k
  (synchronization), paid only by parallel execution;
* ``rerank_doc_cost`` / ``rerank_depth`` — optional second-phase (L2)
  ranking: production ISNs run an expensive ranker over the best
  candidates from the matching phase. Modeled as a *serial* epilogue of
  ``rerank_doc_cost`` per candidate (up to ``rerank_depth``, bounded by
  the matches actually found); being serial, it deepens the Amdahl
  fraction and flattens parallel speedup. Disabled (0 cost) by default
  so the headline experiments model a single-phase ISN.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.plan import ChunkOutcome
from repro.util.validation import require_in_range, require_int_in_range


@dataclass(frozen=True)
class CostModel:
    """Coefficients mapping work counters to virtual seconds."""

    posting_cost: float = 120e-9
    match_cost: float = 300e-9
    chunk_cost: float = 2.5e-6
    chunk_skip_cost: float = 0.0
    query_fixed_cost: float = 60e-6
    fork_cost: float = 12e-6
    join_cost: float = 8e-6
    merge_cost: float = 3e-6
    rerank_doc_cost: float = 0.0
    rerank_depth: int = 0

    def __post_init__(self) -> None:
        for name in (
            "posting_cost",
            "match_cost",
            "chunk_cost",
            "chunk_skip_cost",
            "query_fixed_cost",
            "fork_cost",
            "join_cost",
            "merge_cost",
            "rerank_doc_cost",
        ):
            require_in_range(getattr(self, name), name, low=0.0)
        require_int_in_range(self.rerank_depth, "rerank_depth", low=0)

    def chunk_time(self, outcome: ChunkOutcome) -> float:
        """Virtual seconds to evaluate one chunk (excluding merge)."""
        return (
            self.chunk_cost
            + self.posting_cost * outcome.postings_scanned
            + self.match_cost * outcome.n_matched
        )

    def skip_time(self) -> float:
        """Virtual seconds to *skip* one chunk on its score bound.

        The bound check is a metadata compare (no postings touched), so
        it is modeled as free by default — like candidate-chunk
        selection; set ``chunk_skip_cost`` to charge for it.
        """
        return self.chunk_skip_cost

    def fork_time(self, degree: int) -> float:
        """One-time cost to spin up ``degree`` workers (0 for sequential)."""
        return self.fork_cost * (degree - 1) if degree > 1 else 0.0

    def join_time(self, degree: int) -> float:
        """One-time cost to join ``degree`` workers (0 for sequential)."""
        return self.join_cost * (degree - 1) if degree > 1 else 0.0

    def merge_time(self, degree: int) -> float:
        """Per-chunk merge/synchronization cost under parallel execution."""
        return self.merge_cost if degree > 1 else 0.0

    def rerank_time(self, docs_matched: int) -> float:
        """Serial second-phase ranking epilogue (0 when disabled)."""
        if self.rerank_doc_cost <= 0.0 or self.rerank_depth <= 0:
            return 0.0
        return self.rerank_doc_cost * min(self.rerank_depth, docs_matched)

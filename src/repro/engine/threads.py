"""Real thread-pool parallel execution (validation mode).

The virtual-time executor in :mod:`repro.engine.parallel` is the one the
experiments use — it is deterministic and measures virtual seconds. This
module runs the *same* chunk-claim / shared-top-k protocol on an actual
``ThreadPoolExecutor`` with a real lock, which serves two purposes:

* it demonstrates the engine's parallel protocol is a working concurrent
  algorithm, not only a model;
* tests use it to check that concurrent merging produces results
  equivalent to sequential execution (identical when termination is
  exhaustive or score-bound-only; a superset-quality result when the
  approximate match budget is active, because real thread timing may
  claim extra chunks — exactly the speculative waste the paper
  describes).

Timing from this executor is *not* meaningful for experiments (Python
threads serialize on the GIL); use the virtual executor for measurements.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from repro.engine.batch import BatchExecutor
from repro.engine.query import Query
from repro.engine.results import ExecutionResult, make_ranked
from repro.engine.termination import TerminationConfig, TerminationState
from repro.engine.topk import TopK
from repro.engine.trace import ChunkTrace
from repro.errors import ExecutionError


class _SharedState:
    """Claim cursor + top-k + termination, guarded by one lock."""

    def __init__(self, trace: ChunkTrace, termination: TerminationConfig) -> None:
        self.lock = threading.Lock()
        self.trace = trace
        self.topk = TopK(trace.plan.query.k)
        self.state = TerminationState(termination, trace.plan, self.topk)
        self.next_position = 0
        self.chunks_evaluated = 0
        self.chunks_skipped = 0
        self.postings_scanned = 0
        self.docs_matched = 0

    def claim(self) -> int:
        """Claim the next chunk position, or -1 when execution should stop."""
        with self.lock:
            # Advance past individually skippable chunks (safe per-chunk
            # score bound) before handing out work.
            while not self.state.should_stop(
                self.next_position
            ) and self.state.should_skip(self.next_position):
                self.next_position += 1
                self.chunks_skipped += 1
            if self.state.should_stop(self.next_position):
                return -1
            position = self.next_position
            self.next_position += 1
            return position

    def merge(self, position: int) -> None:
        outcome, _ = self.trace.get(position)
        with self.lock:
            self.chunks_evaluated += 1
            self.postings_scanned += outcome.postings_scanned
            self.docs_matched += outcome.n_matched
            self.topk.offer_many(outcome.scores, outcome.doc_ids)
            self.state.record_matches(outcome.n_matched)


def execute_threaded(
    trace: ChunkTrace, termination: TerminationConfig, degree: int
) -> ExecutionResult:
    """Run the traced query on ``degree`` real threads."""
    if not isinstance(degree, int) or isinstance(degree, bool) or degree < 1:
        raise ExecutionError(f"degree must be a positive integer, got {degree!r}")

    shared = _SharedState(trace, termination)

    def worker() -> None:
        while True:
            position = shared.claim()
            if position < 0:
                return
            # Chunk evaluation happens outside the lock, as in the real
            # engine; only claim and merge synchronize.
            trace.get(position)
            shared.merge(position)

    if degree == 1:
        worker()
    else:
        with ThreadPoolExecutor(max_workers=degree) as pool:
            futures = [pool.submit(worker) for _ in range(degree)]
            for future in futures:
                future.result()

    return ExecutionResult(
        query=trace.plan.query,
        degree=degree,
        results=make_ranked(shared.topk.results()),
        latency=float("nan"),  # wall-clock timing is not meaningful here
        cpu_time=float("nan"),
        chunks_evaluated=shared.chunks_evaluated,
        postings_scanned=shared.postings_scanned,
        docs_matched=shared.docs_matched,
        terminated_early=shared.state.terminated_early,
        termination_rule=shared.state.fired_rule,
        worker_busy=(),
        chunks_skipped=shared.chunks_skipped,
    )


def execute_threaded_batch(
    executor: BatchExecutor, queries: Sequence[Query], degree: int
) -> List[ExecutionResult]:
    """Run a batch of queries on ``degree`` real threads.

    Inter-query parallelism counterpart to :func:`execute_threaded`:
    each thread claims whole queries from a shared cursor and runs them
    through the batched kernel (:meth:`BatchExecutor.execute_one`), the
    concurrency shape of an ISN draining a request queue. Per-query
    results are fully independent, so — unlike the intra-query threaded
    mode — results are bit-identical to sequential execution for *any*
    termination configuration. Returned in input order.
    """
    if not isinstance(degree, int) or isinstance(degree, bool) or degree < 1:
        raise ExecutionError(f"degree must be a positive integer, got {degree!r}")

    results: List[Optional[ExecutionResult]] = [None] * len(queries)
    cursor = {"next": 0}
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                slot = cursor["next"]
                if slot >= len(queries):
                    return
                cursor["next"] = slot + 1
            # Query execution happens outside the lock; only the claim
            # cursor synchronizes (results slots are disjoint per claim).
            results[slot] = executor.execute_one(queries[slot])

    if degree == 1:
        worker()
    else:
        with ThreadPoolExecutor(max_workers=degree) as pool:
            futures = [pool.submit(worker) for _ in range(degree)]
            for future in futures:
                future.result()

    missing = [i for i, result in enumerate(results) if result is None]
    if missing:  # pragma: no cover - claim protocol invariant violated
        raise ExecutionError(f"queries {missing} were never executed")
    return [result for result in results if result is not None]

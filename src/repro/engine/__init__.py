"""Query-execution engine of the index-serving node.

Public surface:

* :class:`Query` / :class:`QueryPlan` — a parsed query and its planned
  posting lists, bounds and chunk trace;
* :class:`EngineConfig` — matching semantics, termination, cost model;
* :class:`Engine` — the facade: ``engine.execute(query, degree=p)``
  runs a query sequentially (``p == 1``) or with intra-query parallelism
  (``p > 1``) in deterministic virtual time, returning an
  :class:`ExecutionResult` with ranked documents and work accounting;
* :class:`BatchExecutor` — the throughput path:
  ``engine.execute_batch(queries)`` runs many queries through the
  vectorized multi-chunk kernel with bit-identical per-query results.
"""

from repro.engine.batch import BatchExecutor, BatchStats
from repro.engine.cost import CostModel
from repro.engine.executor import Engine, EngineConfig
from repro.engine.query import Query, MatchMode
from repro.engine.results import ExecutionResult, RankedDocument
from repro.engine.termination import TerminationConfig
from repro.engine.topk import TopK

__all__ = [
    "BatchExecutor",
    "BatchStats",
    "CostModel",
    "Engine",
    "EngineConfig",
    "Query",
    "MatchMode",
    "ExecutionResult",
    "RankedDocument",
    "TerminationConfig",
    "TopK",
]

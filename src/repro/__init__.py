"""repro — Reproduction of "Adaptive Parallelism for Web Search" (EuroSys 2013).

The library builds, from scratch, everything the paper's evaluation
stands on:

* a synthetic web corpus and an in-memory inverted index laid out in
  static-rank order (:mod:`repro.corpus`, :mod:`repro.index`);
* a query-execution engine with conjunctive matching, BM25+static-rank
  scoring, early termination, and chunk-level intra-query parallelism
  measured in deterministic virtual time (:mod:`repro.engine`);
* speedup/service-time profiling (:mod:`repro.profiles`);
* the paper's adaptive parallelism policy, its baselines, and extensions
  (:mod:`repro.policies`);
* a discrete-event multicore ISN simulator (:mod:`repro.sim`);
* analysis and queueing-theory validation (:mod:`repro.analysis`);
* the experiment harness regenerating every table/figure
  (:mod:`repro.harness`).

Quickstart::

    from repro import quickstart_workbench
    wb = quickstart_workbench()
    result = wb.engine.execute(wb.query_generator().sample(), degree=4)
"""

from repro.core import AdaptiveSearchSystem, SystemConfig
from repro.corpus import CorpusConfig, generate_corpus
from repro.engine import Engine, EngineConfig, ExecutionResult, Query
from repro.index import IndexConfig, build_index
from repro.policies import (
    AdaptivePolicy,
    FixedPolicy,
    SequentialPolicy,
    ThresholdTable,
    derive_threshold_table,
)
from repro.profiles import (
    MeasurementConfig,
    QueryCostTable,
    ServiceTimeDistribution,
    SpeedupProfile,
    measure_cost_table,
)
from repro.sim import LoadPointConfig, ServiceOracle, run_load_point
from repro.workloads import (
    QueryGenerator,
    QueryWorkloadConfig,
    Workbench,
    WorkbenchConfig,
    build_workbench,
)

__version__ = "1.0.0"


def quickstart_workbench(seed: int = 0) -> Workbench:
    """A small, fast workbench for experimentation and docs examples."""
    return build_workbench(WorkbenchConfig.small(seed))


__all__ = [
    "AdaptiveSearchSystem",
    "SystemConfig",
    "CorpusConfig",
    "generate_corpus",
    "Engine",
    "EngineConfig",
    "ExecutionResult",
    "Query",
    "IndexConfig",
    "build_index",
    "AdaptivePolicy",
    "FixedPolicy",
    "SequentialPolicy",
    "ThresholdTable",
    "derive_threshold_table",
    "MeasurementConfig",
    "QueryCostTable",
    "ServiceTimeDistribution",
    "SpeedupProfile",
    "measure_cost_table",
    "LoadPointConfig",
    "ServiceOracle",
    "run_load_point",
    "QueryGenerator",
    "QueryWorkloadConfig",
    "Workbench",
    "WorkbenchConfig",
    "build_workbench",
    "quickstart_workbench",
    "__version__",
]

"""Command-line entry point: ``python -m repro <experiment-id> [...]``.

Examples::

    python -m repro e06                 # run the headline experiment
    python -m repro --all               # run every experiment
    python -m repro e05 --scale small   # quick run at unit-test scale
    python -m repro --list              # list experiment ids
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.harness.context import ExperimentContext, Scale
from repro.harness.registry import EXPERIMENTS, TITLES, run_experiment
from repro.util.serde import dump_json


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation of 'Adaptive Parallelism for Web "
            "Search' (EuroSys 2013)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (e01..e19)",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'reference')",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI pass: force the small scale (overrides --scale and "
        "REPRO_SCALE)",
    )
    parser.add_argument(
        "--json-dir",
        type=Path,
        default=None,
        help="directory to write per-experiment JSON results",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write a consolidated markdown report (requires --json-dir)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            print(f"{experiment_id}  {TITLES[experiment_id]}")
        return 0

    ids = sorted(EXPERIMENTS) if args.all else [e.lower() for e in args.experiments]
    if not ids:
        print("nothing to run; pass experiment ids, --all, or --list",
              file=sys.stderr)
        return 2
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.smoke:
        scale = Scale.SMALL
    else:
        scale = Scale(args.scale) if args.scale else None
    ctx = ExperimentContext(scale=scale, seed=args.seed)
    print(f"context: {ctx}\n")

    failed_checks = 0
    for experiment_id in ids:
        start = time.time()
        result = run_experiment(experiment_id, ctx)
        elapsed = time.time() - start
        print(result.render())
        print(f"({experiment_id} took {elapsed:.1f}s)\n")
        if args.json_dir is not None:
            dump_json(result.to_json(), args.json_dir / f"{experiment_id}.json")
        failed_checks += sum(1 for check in result.checks if not check.passed)

    if args.report is not None:
        if args.json_dir is None:
            print("--report requires --json-dir", file=sys.stderr)
            return 2
        from repro.harness.report import generate_report

        generate_report(args.json_dir, args.report)
        print(f"report written to {args.report}")

    if failed_checks:
        print(f"{failed_checks} shape check(s) FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

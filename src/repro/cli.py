"""Command-line entry point: ``python -m repro <experiment-id> [...]``.

Examples::

    python -m repro e06                 # run the headline experiment
    python -m repro --all               # run every experiment
    python -m repro e05 --scale small   # quick run at unit-test scale
    python -m repro --list              # list experiment ids
    python -m repro e05 --trace --json-dir out/   # + span/timeline JSONL
    python -m repro trace e05           # waterfall + timeline for one point
    python -m repro serve --port 8642   # live asyncio serving node (TCP)
    python -m repro loadgen --port 8642 --rate 500 --duration 2
    python -m repro livesmoke --output live_parity.json   # sim-vs-live
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.harness.context import ExperimentContext, Scale
from repro.harness.registry import EXPERIMENTS, TITLES, run_experiment
from repro.obs.export import (
    export_timeline_jsonl,
    export_traces_jsonl,
    run_manifest,
    write_manifest,
)
from repro.obs.render import render_trace_report
from repro.obs.spans import RecordingTracer
from repro.util.serde import dump_json


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation of 'Adaptive Parallelism for Web "
            "Search' (EuroSys 2013)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (e01..e20)",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'reference')",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI pass: force the small scale (overrides --scale and "
        "REPRO_SCALE)",
    )
    parser.add_argument(
        "--json-dir",
        type=Path,
        default=None,
        help="directory to write per-experiment JSON results",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write a consolidated markdown report (requires --json-dir)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record query-lifecycle spans and metric timelines; writes "
        "<id>.traces.jsonl / <id>.timeline.jsonl (requires --json-dir)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "loadgen":
        return _loadgen_main(argv[1:])
    if argv and argv[0] == "livesmoke":
        return _livesmoke_main(argv[1:])
    args = _build_parser().parse_args(argv)

    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            print(f"{experiment_id}  {TITLES[experiment_id]}")
        return 0

    ids = sorted(EXPERIMENTS) if args.all else [e.lower() for e in args.experiments]
    if not ids:
        print("nothing to run; pass experiment ids, --all, or --list",
              file=sys.stderr)
        return 2
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.trace and args.json_dir is None:
        print("--trace requires --json-dir", file=sys.stderr)
        return 2

    if args.smoke:
        scale = Scale.SMALL
    else:
        scale = Scale(args.scale) if args.scale else None
    tracer = RecordingTracer() if args.trace else None
    ctx = ExperimentContext(scale=scale, seed=args.seed, tracer=tracer)
    print(f"context: {ctx}\n")

    failed_checks = 0
    for experiment_id in ids:
        start = time.time()
        result = run_experiment(experiment_id, ctx)
        elapsed = time.time() - start
        print(result.render())
        print(f"({experiment_id} took {elapsed:.1f}s)\n")
        if args.json_dir is not None:
            dump_json(result.to_json(), args.json_dir / f"{experiment_id}.json")
            if tracer is not None:
                export_traces_jsonl(
                    tracer.traces,
                    args.json_dir / f"{experiment_id}.traces.jsonl",
                )
                rows = [
                    {"run": run_index, **row}
                    for run_index, run in enumerate(tracer.runs)
                    for row in run.timeline
                ]
                export_timeline_jsonl(
                    rows, args.json_dir / f"{experiment_id}.timeline.jsonl"
                )
                tracer.clear()
        failed_checks += sum(1 for check in result.checks if not check.passed)

    if args.json_dir is not None:
        manifest = run_manifest(
            seed=args.seed,
            scale=ctx.scale.value,
            config=ctx.params,
            experiments=ids,
            extra={"traced": bool(args.trace)},
        )
        write_manifest(manifest, args.json_dir / "manifest.json")

    if args.report is not None:
        if args.json_dir is None:
            print("--report requires --json-dir", file=sys.stderr)
            return 2
        from repro.harness.report import generate_report

        generate_report(args.json_dir, args.report)
        print(f"report written to {args.report}")

    if failed_checks:
        print(f"{failed_checks} shape check(s) FAILED", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------
# ``python -m repro trace <id>`` — one traced load point, rendered.
# ---------------------------------------------------------------------


def _trace_e05(ctx: ExperimentContext, seed: int) -> str:
    system = ctx.system
    system.run_point(
        "fixed-4",
        system.rate_for_utilization(0.3),
        duration=ctx.sim_duration,
        warmup=ctx.sim_warmup,
        seed=seed,
    )
    return "fixed-4 at u=0.3 (E5 operating point)"


def _trace_e09(ctx: ExperimentContext, seed: int) -> str:
    from repro.sim.arrivals import MMPP2Arrivals
    from repro.util.rng import RngFactory

    system = ctx.system
    mean_rate = system.rate_for_utilization(0.3)
    arrivals = MMPP2Arrivals.with_mean_rate(
        mean_rate=mean_rate,
        burst_ratio=4.0,
        mean_dwell_s=0.05,
        rng=RngFactory(1234).stream("trace", "mmpp"),
    )
    system.run_point(
        "adaptive",
        mean_rate,
        duration=ctx.sim_duration,
        warmup=ctx.sim_warmup,
        seed=seed,
        arrivals=arrivals,
    )
    return "adaptive under MMPP2 bursts (ratio 4) at mean u=0.3 (E9)"


def _trace_e12(ctx: ExperimentContext, seed: int) -> str:
    from repro.sim.cluster import ClusterConfig, run_cluster_point

    system = ctx.system
    duration = max(ctx.sim_duration * 0.75, 4.0)
    config = ClusterConfig(
        n_shards=4,
        n_cores_per_shard=system.n_cores,
        rate=system.rate_for_utilization(0.3),
        duration=duration,
        warmup=duration / 4.0,
        seed=seed + 7,
    )
    run_cluster_point(
        system.oracle, lambda: system.policy("adaptive"), config,
        tracer=ctx.tracer,
    )
    return "4-shard cluster fan-out, adaptive, per-shard u=0.3 (E12)"


def _trace_e19(ctx: ExperimentContext, seed: int) -> str:
    system = ctx.system
    slo = 2.5 * float(system.service_distribution.percentile(99))
    system.run_point(
        "adaptive",
        system.rate_for_utilization(1.2),
        duration=ctx.sim_duration,
        warmup=ctx.sim_warmup,
        seed=seed,
        deadline=slo,
        max_queue_length=32 * system.n_cores,
    )
    return (
        f"adaptive at u=1.2 with deadline {slo * 1e3:.1f}ms and an "
        "admission cap (E19 overload point)"
    )


def _trace_e20(ctx: ExperimentContext, seed: int) -> str:
    from repro.policies.online import (
        OnlineAdaptivePolicy,
        OnlineControllerConfig,
        OnlineDegreeController,
    )
    from repro.sim.anomaly import AnomalyGuard, AnomalyGuardConfig
    from repro.sim.traffic import (
        FLASH_CROWD,
        Burst,
        ClassAwareQuerySampler,
        DiurnalProfile,
        RegimeTraffic,
        TrafficConfig,
    )
    from repro.util.rng import RngFactory

    system = ctx.system
    slo = 2.5 * float(system.service_distribution.percentile(99))
    horizon = 5.0 * ctx.sim_duration
    saturation = system.saturation_rate
    streams = RngFactory(seed + 20)
    scenario = TrafficConfig(
        background=DiurnalProfile(base_rate=0.5 * saturation, amplitude=0.15,
                                  period_s=horizon),
        bursts=(
            Burst(kind=FLASH_CROWD, start_s=0.3 * horizon,
                  duration_s=0.25 * horizon, peak_rate=0.55 * saturation),
        ),
    )
    traffic = RegimeTraffic(scenario, streams, horizon_s=horizon)
    sampler = ClassAwareQuerySampler(
        system.cost_table.sequential_latencies(), streams
    )
    policy = OnlineAdaptivePolicy(system.threshold_table)
    window = horizon / 40.0
    controller = OnlineDegreeController(
        policy,
        OnlineControllerConfig(target_p99_s=slo, window_s=window,
                               max_scale=1.0),
        tracer=ctx.tracer,
    )
    guard = AnomalyGuard(
        AnomalyGuardConfig(slo_s=slo, window_s=window),
        policy=policy,
        tracer=ctx.tracer,
    )
    system.run_point(
        policy,
        scenario.background.base_rate,
        duration=horizon,
        warmup=horizon / 10.0,
        seed=seed,
        arrivals=traffic,
        deadline=slo,
        max_queue_length=32 * system.n_cores,
        slo=slo,
        controllers=(controller, guard),
        query_sampler=sampler,
    )
    return (
        "online-adaptive through a flash crowd with tail-feedback control "
        "and the anomaly guard (E20 regime-shift point)"
    )


#: id -> (runner, one-line description shown by --help).
_TRACE_PRESETS: Dict[str, Tuple[Callable[[ExperimentContext, int], str], str]] = {
    "e05": (_trace_e05, "fixed-degree load point at u=0.3"),
    "e09": (_trace_e09, "adaptive under MMPP2 bursty arrivals"),
    "e12": (_trace_e12, "cluster fan-out with per-shard spans"),
    "e19": (_trace_e19, "adaptive overload point with shedding"),
    "e20": (_trace_e20, "online control + anomaly guard through a flash crowd"),
}


def _trace_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Run one traced load point and render per-query span "
            "waterfalls plus the sampled metric timeline. Presets: "
            + "; ".join(
                f"{key} = {hint}" for key, (_, hint) in sorted(_TRACE_PRESETS.items())
            )
        ),
    )
    parser.add_argument("experiment", choices=sorted(_TRACE_PRESETS))
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'reference')",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="force the small scale"
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for traces/timeline JSONL and the run manifest",
    )
    parser.add_argument(
        "--waterfalls", type=int, default=3, help="waterfalls to render"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = Scale.SMALL
    else:
        scale = Scale(args.scale) if args.scale else None
    tracer = RecordingTracer()
    ctx = ExperimentContext(scale=scale, seed=args.seed, tracer=tracer)
    runner, _ = _TRACE_PRESETS[args.experiment]
    description = runner(ctx, args.seed)

    traces = tracer.traces
    timeline = [row for run in tracer.runs for row in run.timeline]
    print(f"{args.experiment}: {description} [{ctx.scale.value} scale]\n")
    print(render_trace_report(traces, timeline, n_waterfalls=args.waterfalls))

    if args.out is not None:
        export_traces_jsonl(traces, args.out / f"{args.experiment}.traces.jsonl")
        export_timeline_jsonl(
            timeline, args.out / f"{args.experiment}.timeline.jsonl"
        )
        write_manifest(
            run_manifest(
                seed=args.seed,
                scale=ctx.scale.value,
                config=ctx.params,
                experiments=[args.experiment],
                extra={"mode": "trace"},
            ),
            args.out / "manifest.json",
        )
        print(f"wrote traces, timeline, and manifest to {args.out}")
    return 0


# --------------------------------------------------------------------
# Live serving mode: `repro serve`, `repro loadgen`, `repro livesmoke`
# --------------------------------------------------------------------


def _serve_main(argv: List[str]) -> int:
    """Host the live asyncio serving node (see repro.runtime.serve)."""
    import asyncio

    from repro.harness.live import engine_search_for
    from repro.runtime.node import ServingConfig, ServingNode
    from repro.runtime.serve import AsyncioScheduler, LiveServer

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve the profiled engine over TCP (newline-delimited JSON): "
            "the same scheduling kernel and policies as the simulator, on "
            "wall-clock time."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 = ephemeral)")
    parser.add_argument(
        "--scale", choices=[s.value for s in Scale], default=None,
        help="system scale (default: REPRO_SCALE env var or 'reference')",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument("--policy", default="adaptive",
                        help="parallelism policy name (default: adaptive)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-query SLO budget in model seconds")
    parser.add_argument("--max-queue", type=int, default=None,
                        help="admission cap on the dispatch queue")
    parser.add_argument(
        "--dilation", type=float, default=1.0,
        help="wall seconds per model second (default 1.0 = real time)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="stop after this many wall seconds (default: run until the "
        "shutdown op or Ctrl-C)",
    )
    parser.add_argument(
        "--horizon", type=float, default=3600.0,
        help="metrics measurement window in model seconds",
    )
    parser.add_argument(
        "--budget", type=float, default=60.0,
        help="default per-search completion budget in model seconds",
    )
    parser.add_argument(
        "--no-engine", action="store_true",
        help="skip real engine execution (timing-only service)",
    )
    args = parser.parse_args(argv)

    scale = Scale(args.scale) if args.scale else None
    ctx = ExperimentContext(scale=scale, seed=args.seed)
    system = ctx.system
    policy = system.policy(args.policy)
    search = None if args.no_engine else engine_search_for(system)
    print(f"context: {ctx}")

    async def _amain() -> None:
        scheduler = AsyncioScheduler(dilation=args.dilation)
        node = ServingNode(
            scheduler,
            system.oracle,
            policy,
            ServingConfig(
                n_cores=system.n_cores,
                horizon_s=args.horizon,
                deadline_s=args.deadline,
                max_queue_length=args.max_queue,
            ),
            engine_search=search,
        )
        service = LiveServer(
            node, dilation=args.dilation, request_budget_s=args.budget
        )
        serve_task = asyncio.get_running_loop().create_task(
            service.serve(args.host, args.port, duration_s=args.duration)
        )
        port = await service.wait_ready()
        print(
            f"serving policy={policy.name} n_cores={system.n_cores} "
            f"n_queries={system.oracle.n_queries} on {args.host}:{port} "
            f"(dilation {args.dilation}x)",
            flush=True,
        )
        await serve_task
        print(
            f"served {node.n_answered} queries, shed {node.server.n_shed}"
        )

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted")
    return 0


def _loadgen_main(argv: List[str]) -> int:
    """Replay a seeded arrival script against a live server."""
    import asyncio
    import json

    from repro.runtime.loadgen import (
        ReplayOptions,
        replay_open_loop,
        run_closed_loop,
    )
    from repro.sim.experiment import LoadPointConfig
    from repro.sim.script import build_arrival_script

    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description=(
            "Open- or closed-loop load generator for `repro serve`: replays "
            "the same seeded arrival streams the simulator uses."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--rate", type=float, required=True,
                        help="mean arrival rate (model QPS)")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="workload horizon in model seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dilation", type=float, default=1.0,
                        help="must match the server's dilation")
    parser.add_argument("--budget", type=float, default=None,
                        help="per-request completion budget (model seconds)")
    parser.add_argument("--closed", type=int, default=None, metavar="N",
                        help="closed loop with N clients (default: open loop)")
    parser.add_argument("--think", type=float, default=0.0,
                        help="closed-loop mean think time (model seconds)")
    args = parser.parse_args(argv)

    async def _amain() -> Dict[str, object]:
        reader, writer = await asyncio.open_connection(args.host, args.port)

        async def ask(payload: Dict[str, object]) -> Dict[str, object]:
            writer.write((json.dumps(payload) + "\n").encode("utf-8"))
            await writer.drain()
            return json.loads(await reader.readline())

        stats = await ask({"id": "probe", "op": "stats"})
        n_queries = int(stats["n_queries"])
        config = LoadPointConfig(
            rate=args.rate, duration=args.duration, warmup=0.0,
            n_cores=int(stats["n_cores"]), seed=args.seed,
        )
        script = build_arrival_script(n_queries, config)
        options = ReplayOptions(dilation=args.dilation, budget_s=args.budget)
        if args.closed is None:
            replies = await replay_open_loop(
                args.host, args.port, script, options
            )
        else:
            per_client = await run_closed_loop(
                args.host, args.port, script, args.closed,
                think_time_s=args.think, options=options,
            )
            replies = [reply for chunk in per_client for reply in chunk]
        final = await ask({"id": "final", "op": "stats", "rate": args.rate})
        writer.close()
        await writer.wait_closed()
        answered = sum(
            1 for r in replies if r and r.get("status") == "completed"
        )
        shed = sum(1 for r in replies if r and r.get("status") == "shed")
        return {
            "n_requests": len(script),
            "n_completed": answered,
            "n_shed": shed,
            "n_lost": len(script) - answered - shed,
            "server_summary": final.get("summary"),
        }

    outcome = asyncio.run(_amain())
    print(json.dumps(outcome, indent=2, sort_keys=True))
    return 0


def _livesmoke_main(argv: List[str]) -> int:
    """Sim-vs-live tolerance validation at matched load points."""
    from repro.harness.live import run_live_smoke

    parser = argparse.ArgumentParser(
        prog="repro livesmoke",
        description=(
            "Boot the live server in-process, replay identical seeded "
            "scripts through it and the simulator, and check the live "
            "latency/shed curves against the sim predictions."
        ),
    )
    parser.add_argument(
        "--scale", choices=[s.value for s in Scale], default=None,
        help="system scale (default: REPRO_SCALE env var or 'reference')",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="force the small scale")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--duration", type=float, default=2.0,
                        help="per-point horizon in model seconds")
    parser.add_argument("--dilation", type=float, default=10.0,
                        help="wall seconds per model second")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--engine-results", action="store_true",
                        help="run the real engine per completed query")
    args = parser.parse_args(argv)

    if args.smoke:
        scale = Scale.SMALL
    else:
        scale = Scale(args.scale) if args.scale else None
    ctx = ExperimentContext(scale=scale, seed=args.seed)
    print(f"context: {ctx}")
    report, ok = run_live_smoke(
        context=ctx,
        duration_s=args.duration,
        dilation=args.dilation,
        seed=args.seed,
        output=None if args.output is None else str(args.output),
        engine_results=args.engine_results,
    )
    for entry in report["points"]:
        status = "ok" if entry["ok"] else "FAIL"
        print(f"\n[{status}] {entry['point']} "
              f"rate={entry['rate']:.1f} arrivals={entry['n_arrivals']}")
        for metric, row in sorted(entry["metrics"].items()):
            if row["kind"] == "skipped-nan":
                continue
            flag = "ok " if row["ok"] else "OUT"
            print(
                f"  {flag} {metric:>15}: sim={row['sim']:.6g} "
                f"live={row['live']:.6g} dev={row['deviation']:.3f} "
                f"band={row['band']:.2f}"
            )
    if args.output is not None:
        print(f"\nreport written to {args.output}")
    print(f"\nlive smoke: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

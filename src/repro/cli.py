"""Command-line entry point: ``python -m repro <experiment-id> [...]``.

Examples::

    python -m repro e06                 # run the headline experiment
    python -m repro --all               # run every experiment
    python -m repro e05 --scale small   # quick run at unit-test scale
    python -m repro --list              # list experiment ids
    python -m repro e05 --trace --json-dir out/   # + span/timeline JSONL
    python -m repro trace e05           # waterfall + timeline for one point
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.harness.context import ExperimentContext, Scale
from repro.harness.registry import EXPERIMENTS, TITLES, run_experiment
from repro.obs.export import (
    export_timeline_jsonl,
    export_traces_jsonl,
    run_manifest,
    write_manifest,
)
from repro.obs.render import render_trace_report
from repro.obs.spans import RecordingTracer
from repro.util.serde import dump_json


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation of 'Adaptive Parallelism for Web "
            "Search' (EuroSys 2013)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (e01..e20)",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'reference')",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI pass: force the small scale (overrides --scale and "
        "REPRO_SCALE)",
    )
    parser.add_argument(
        "--json-dir",
        type=Path,
        default=None,
        help="directory to write per-experiment JSON results",
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write a consolidated markdown report (requires --json-dir)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record query-lifecycle spans and metric timelines; writes "
        "<id>.traces.jsonl / <id>.timeline.jsonl (requires --json-dir)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    args = _build_parser().parse_args(argv)

    if args.list:
        for experiment_id in sorted(EXPERIMENTS):
            print(f"{experiment_id}  {TITLES[experiment_id]}")
        return 0

    ids = sorted(EXPERIMENTS) if args.all else [e.lower() for e in args.experiments]
    if not ids:
        print("nothing to run; pass experiment ids, --all, or --list",
              file=sys.stderr)
        return 2
    unknown = [e for e in ids if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.trace and args.json_dir is None:
        print("--trace requires --json-dir", file=sys.stderr)
        return 2

    if args.smoke:
        scale = Scale.SMALL
    else:
        scale = Scale(args.scale) if args.scale else None
    tracer = RecordingTracer() if args.trace else None
    ctx = ExperimentContext(scale=scale, seed=args.seed, tracer=tracer)
    print(f"context: {ctx}\n")

    failed_checks = 0
    for experiment_id in ids:
        start = time.time()
        result = run_experiment(experiment_id, ctx)
        elapsed = time.time() - start
        print(result.render())
        print(f"({experiment_id} took {elapsed:.1f}s)\n")
        if args.json_dir is not None:
            dump_json(result.to_json(), args.json_dir / f"{experiment_id}.json")
            if tracer is not None:
                export_traces_jsonl(
                    tracer.traces,
                    args.json_dir / f"{experiment_id}.traces.jsonl",
                )
                rows = [
                    {"run": run_index, **row}
                    for run_index, run in enumerate(tracer.runs)
                    for row in run.timeline
                ]
                export_timeline_jsonl(
                    rows, args.json_dir / f"{experiment_id}.timeline.jsonl"
                )
                tracer.clear()
        failed_checks += sum(1 for check in result.checks if not check.passed)

    if args.json_dir is not None:
        manifest = run_manifest(
            seed=args.seed,
            scale=ctx.scale.value,
            config=ctx.params,
            experiments=ids,
            extra={"traced": bool(args.trace)},
        )
        write_manifest(manifest, args.json_dir / "manifest.json")

    if args.report is not None:
        if args.json_dir is None:
            print("--report requires --json-dir", file=sys.stderr)
            return 2
        from repro.harness.report import generate_report

        generate_report(args.json_dir, args.report)
        print(f"report written to {args.report}")

    if failed_checks:
        print(f"{failed_checks} shape check(s) FAILED", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------
# ``python -m repro trace <id>`` — one traced load point, rendered.
# ---------------------------------------------------------------------


def _trace_e05(ctx: ExperimentContext, seed: int) -> str:
    system = ctx.system
    system.run_point(
        "fixed-4",
        system.rate_for_utilization(0.3),
        duration=ctx.sim_duration,
        warmup=ctx.sim_warmup,
        seed=seed,
    )
    return "fixed-4 at u=0.3 (E5 operating point)"


def _trace_e09(ctx: ExperimentContext, seed: int) -> str:
    from repro.sim.arrivals import MMPP2Arrivals
    from repro.util.rng import RngFactory

    system = ctx.system
    mean_rate = system.rate_for_utilization(0.3)
    arrivals = MMPP2Arrivals.with_mean_rate(
        mean_rate=mean_rate,
        burst_ratio=4.0,
        mean_dwell_s=0.05,
        rng=RngFactory(1234).stream("trace", "mmpp"),
    )
    system.run_point(
        "adaptive",
        mean_rate,
        duration=ctx.sim_duration,
        warmup=ctx.sim_warmup,
        seed=seed,
        arrivals=arrivals,
    )
    return "adaptive under MMPP2 bursts (ratio 4) at mean u=0.3 (E9)"


def _trace_e12(ctx: ExperimentContext, seed: int) -> str:
    from repro.sim.cluster import ClusterConfig, run_cluster_point

    system = ctx.system
    duration = max(ctx.sim_duration * 0.75, 4.0)
    config = ClusterConfig(
        n_shards=4,
        n_cores_per_shard=system.n_cores,
        rate=system.rate_for_utilization(0.3),
        duration=duration,
        warmup=duration / 4.0,
        seed=seed + 7,
    )
    run_cluster_point(
        system.oracle, lambda: system.policy("adaptive"), config,
        tracer=ctx.tracer,
    )
    return "4-shard cluster fan-out, adaptive, per-shard u=0.3 (E12)"


def _trace_e19(ctx: ExperimentContext, seed: int) -> str:
    system = ctx.system
    slo = 2.5 * float(system.service_distribution.percentile(99))
    system.run_point(
        "adaptive",
        system.rate_for_utilization(1.2),
        duration=ctx.sim_duration,
        warmup=ctx.sim_warmup,
        seed=seed,
        deadline=slo,
        max_queue_length=32 * system.n_cores,
    )
    return (
        f"adaptive at u=1.2 with deadline {slo * 1e3:.1f}ms and an "
        "admission cap (E19 overload point)"
    )


def _trace_e20(ctx: ExperimentContext, seed: int) -> str:
    from repro.policies.online import (
        OnlineAdaptivePolicy,
        OnlineControllerConfig,
        OnlineDegreeController,
    )
    from repro.sim.anomaly import AnomalyGuard, AnomalyGuardConfig
    from repro.sim.traffic import (
        FLASH_CROWD,
        Burst,
        ClassAwareQuerySampler,
        DiurnalProfile,
        RegimeTraffic,
        TrafficConfig,
    )
    from repro.util.rng import RngFactory

    system = ctx.system
    slo = 2.5 * float(system.service_distribution.percentile(99))
    horizon = 5.0 * ctx.sim_duration
    saturation = system.saturation_rate
    streams = RngFactory(seed + 20)
    scenario = TrafficConfig(
        background=DiurnalProfile(base_rate=0.5 * saturation, amplitude=0.15,
                                  period_s=horizon),
        bursts=(
            Burst(kind=FLASH_CROWD, start_s=0.3 * horizon,
                  duration_s=0.25 * horizon, peak_rate=0.55 * saturation),
        ),
    )
    traffic = RegimeTraffic(scenario, streams, horizon_s=horizon)
    sampler = ClassAwareQuerySampler(
        system.cost_table.sequential_latencies(), streams
    )
    policy = OnlineAdaptivePolicy(system.threshold_table)
    window = horizon / 40.0
    controller = OnlineDegreeController(
        policy,
        OnlineControllerConfig(target_p99_s=slo, window_s=window,
                               max_scale=1.0),
        tracer=ctx.tracer,
    )
    guard = AnomalyGuard(
        AnomalyGuardConfig(slo_s=slo, window_s=window),
        policy=policy,
        tracer=ctx.tracer,
    )
    system.run_point(
        policy,
        scenario.background.base_rate,
        duration=horizon,
        warmup=horizon / 10.0,
        seed=seed,
        arrivals=traffic,
        deadline=slo,
        max_queue_length=32 * system.n_cores,
        slo=slo,
        controllers=(controller, guard),
        query_sampler=sampler,
    )
    return (
        "online-adaptive through a flash crowd with tail-feedback control "
        "and the anomaly guard (E20 regime-shift point)"
    )


#: id -> (runner, one-line description shown by --help).
_TRACE_PRESETS: Dict[str, Tuple[Callable[[ExperimentContext, int], str], str]] = {
    "e05": (_trace_e05, "fixed-degree load point at u=0.3"),
    "e09": (_trace_e09, "adaptive under MMPP2 bursty arrivals"),
    "e12": (_trace_e12, "cluster fan-out with per-shard spans"),
    "e19": (_trace_e19, "adaptive overload point with shedding"),
    "e20": (_trace_e20, "online control + anomaly guard through a flash crowd"),
}


def _trace_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Run one traced load point and render per-query span "
            "waterfalls plus the sampled metric timeline. Presets: "
            + "; ".join(
                f"{key} = {hint}" for key, (_, hint) in sorted(_TRACE_PRESETS.items())
            )
        ),
    )
    parser.add_argument("experiment", choices=sorted(_TRACE_PRESETS))
    parser.add_argument(
        "--scale",
        choices=[s.value for s in Scale],
        default=None,
        help="experiment scale (default: REPRO_SCALE env var or 'reference')",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="force the small scale"
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory for traces/timeline JSONL and the run manifest",
    )
    parser.add_argument(
        "--waterfalls", type=int, default=3, help="waterfalls to render"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        scale = Scale.SMALL
    else:
        scale = Scale(args.scale) if args.scale else None
    tracer = RecordingTracer()
    ctx = ExperimentContext(scale=scale, seed=args.seed, tracer=tracer)
    runner, _ = _TRACE_PRESETS[args.experiment]
    description = runner(ctx, args.seed)

    traces = tracer.traces
    timeline = [row for run in tracer.runs for row in run.timeline]
    print(f"{args.experiment}: {description} [{ctx.scale.value} scale]\n")
    print(render_trace_report(traces, timeline, n_waterfalls=args.waterfalls))

    if args.out is not None:
        export_traces_jsonl(traces, args.out / f"{args.experiment}.traces.jsonl")
        export_timeline_jsonl(
            timeline, args.out / f"{args.experiment}.timeline.jsonl"
        )
        write_manifest(
            run_manifest(
                seed=args.seed,
                scale=ctx.scale.value,
                config=ctx.params,
                experiments=[args.experiment],
                extra={"mode": "trace"},
            ),
            args.out / "manifest.json",
        )
        print(f"wrote traces, timeline, and manifest to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

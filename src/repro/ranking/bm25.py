"""Okapi BM25 relevance model.

The reproduction's index precomputes, for every posting, the term's BM25
*impact* in that document: ``idf(t) * tf_saturation(f_td, |d|)``. A
query's relevance score is then the sum of impacts over its terms, and
score upper bounds (for early termination) are maxima of impacts —
exactly the decomposition production engines use for MaxScore/WAND-style
pruning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require_in_range, require_positive


@dataclass(frozen=True)
class BM25Params:
    """BM25 hyperparameters.

    ``k1`` controls term-frequency saturation, ``b`` the strength of
    document-length normalization. Defaults are the standard 1.2 / 0.75.
    """

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        require_positive(self.k1, "k1")
        require_in_range(self.b, "b", low=0.0, high=1.0)


def bm25_idf(doc_frequency: np.ndarray, n_docs: int) -> np.ndarray:
    """Robertson–Sparck-Jones idf, floored at 0 via the +1 smoothing.

    ``idf(t) = ln(1 + (N - df + 0.5) / (df + 0.5))``
    """
    df = np.asarray(doc_frequency, dtype=np.float64)
    return np.log1p((n_docs - df + 0.5) / (df + 0.5))


def bm25_tf_component(
    term_freq: np.ndarray, doc_length: np.ndarray, avg_doc_length: float, params: BM25Params
) -> np.ndarray:
    """Saturated term-frequency component of BM25.

    ``tf * (k1 + 1) / (tf + k1 * (1 - b + b * |d| / avgdl))``
    """
    tf = np.asarray(term_freq, dtype=np.float64)
    dl = np.asarray(doc_length, dtype=np.float64)
    norm = params.k1 * (1.0 - params.b + params.b * dl / avg_doc_length)
    return tf * (params.k1 + 1.0) / (tf + norm)


def bm25_impacts(
    term_freq: np.ndarray,
    doc_length: np.ndarray,
    doc_frequency: int,
    n_docs: int,
    avg_doc_length: float,
    params: BM25Params,
) -> np.ndarray:
    """Full per-posting impact: ``idf(t) * tf_component``.

    ``term_freq`` and ``doc_length`` are parallel arrays over the postings
    of a single term (so ``doc_frequency`` is a scalar).
    """
    idf = float(bm25_idf(np.asarray([doc_frequency]), n_docs)[0])
    return idf * bm25_tf_component(term_freq, doc_length, avg_doc_length, params)


def bm25_score_document(
    term_freqs: np.ndarray,
    doc_freqs: np.ndarray,
    doc_length: int,
    n_docs: int,
    avg_doc_length: float,
    params: BM25Params,
) -> float:
    """Reference scorer: BM25 score of one document for a bag of terms.

    Used by tests to cross-check the precomputed impact arrays in the
    index; not on the query hot path.
    """
    idf = bm25_idf(np.asarray(doc_freqs, dtype=np.float64), n_docs)
    tf = bm25_tf_component(
        np.asarray(term_freqs, dtype=np.float64),
        np.full(len(term_freqs), doc_length, dtype=np.float64),
        avg_doc_length,
        params,
    )
    return float(np.dot(idf, tf))

"""Ranking substrate: BM25, static-rank prior, composite scoring."""

from repro.ranking.bm25 import BM25Params, bm25_idf, bm25_impacts, bm25_tf_component
from repro.ranking.composite import CompositeScorer, ScoreWeights

__all__ = [
    "BM25Params",
    "bm25_idf",
    "bm25_impacts",
    "bm25_tf_component",
    "CompositeScorer",
    "ScoreWeights",
]

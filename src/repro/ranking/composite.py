"""Composite document scoring: BM25 relevance blended with static rank.

Production web rankers combine query-dependent relevance with a
query-independent document prior (PageRank-style "static rank"). Because
the index lays documents out in descending static rank, the prior term of
the composite score is *non-increasing in doc id* — that monotone
structure is what gives early termination its power: after processing a
prefix of the document space, the best achievable composite score of any
unseen document is bounded by (remaining max relevance impact) +
(static-rank prior at the current position).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.util.validation import require_in_range, require_positive


@dataclass(frozen=True)
class ScoreWeights:
    """Blend weights for the composite score.

    ``score(q, d) = relevance_weight * BM25(q, d)
                  + static_weight * static_rank(d)``

    The default static weight is sized so the prior meaningfully reorders
    documents with similar relevance without drowning out relevance.
    """

    relevance_weight: float = 1.0
    static_weight: float = 3.0

    def __post_init__(self) -> None:
        require_positive(self.relevance_weight, "relevance_weight")
        require_in_range(self.static_weight, "static_weight", low=0.0)


class CompositeScorer:
    """Vectorized composite scorer over candidate documents."""

    def __init__(self, static_ranks: np.ndarray, weights: ScoreWeights) -> None:
        self.static_ranks = np.asarray(static_ranks, dtype=np.float64)
        self.weights = weights

    def combine(self, doc_ids: np.ndarray, relevance: np.ndarray) -> np.ndarray:
        """Blend relevance scores with the static prior for ``doc_ids``."""
        return (
            self.weights.relevance_weight * np.asarray(relevance, dtype=np.float64)
            + self.weights.static_weight * self.static_ranks[doc_ids]
        )

    def static_prior(self, doc_id: int) -> float:
        return float(self.weights.static_weight * self.static_ranks[doc_id])

    def max_prior_from(self, doc_id: int) -> float:
        """Upper bound of the prior over documents >= ``doc_id``.

        Static ranks are non-increasing in doc id, so the bound is simply
        the prior at ``doc_id`` (or 0 past the end).
        """
        if doc_id >= self.static_ranks.shape[0]:
            return 0.0
        return self.static_prior(doc_id)

    def relevance_bound(self, max_impacts: List[float]) -> float:
        """Upper bound on relevance: sum of per-term max impacts."""
        return self.weights.relevance_weight * float(sum(max_impacts))

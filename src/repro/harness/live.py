"""Harness for the live serving mode: smoke points, reports, assembly.

Everything that needs both a profiled
:class:`~repro.core.controller.AdaptiveSearchSystem` *and* the
wall-clock runtime lives here, on the harness layer, so the runtime
package itself stays free of system/harness imports (reprolint R014):

* :func:`engine_search_for` — adapt a system's engine + profiled query
  pool into the :class:`~repro.runtime.node.ServingNode` search hook;
* :func:`smoke_points` — the matched load points for sim-vs-live
  validation: two E05-shaped points (below and near saturation, no
  shedding) and one E19-shaped overload point (deadline + admission
  cap at 1.2× saturation, the same knobs as the e19 experiment);
* :func:`run_live_smoke` — for each point, build the seeded arrival
  script once, run it through the simulator
  (:func:`~repro.sim.script.run_scripted_point`) and through the real
  asyncio server over localhost TCP
  (:func:`~repro.runtime.smoke.run_live_point`), and compare with
  :func:`~repro.runtime.parity.tolerance_report`. The combined
  machine-readable report is written with the provenance-grade JSON
  writer and uploaded as a CI artifact.

Validation methodology (also in EXPERIMENTS.md): dilation stretches
each model second over ``dilation`` wall seconds, so event-loop jitter
shrinks by that factor in model units; the arrival script is
*identical* on both sides, so tolerance-band misses indicate hosting
divergence, not workload noise. The smoke additionally runs on a
*time-scaled* system (:func:`scaled_smoke_system`): the test-scale
engine finishes queries in fractions of a millisecond, which would put
matched-utilization rates in the tens of thousands of QPS — beyond
what one TCP load generator can pace, and small enough that scheduler
jitter rivals the latencies being compared. Multiplying every cost
table entry by a common factor (service ~tens of ms) preserves every
speedup ratio and utilization level while moving the workload into a
regime a real server can carry; sim and live both run the scaled
system, so the comparison stays exact.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.controller import AdaptiveSearchSystem
from repro.engine.results import ExecutionResult
from repro.harness.context import ExperimentContext
from repro.profiles.measurement import QueryCostTable
from repro.runtime.node import RankedResults
from repro.runtime.parity import DEFAULT_TOLERANCES, tolerance_report
from repro.runtime.smoke import run_live_point
from repro.sim.experiment import LoadPointConfig
from repro.sim.script import build_arrival_script, run_scripted_point
from repro.util.serde import dump_json, to_jsonable

__all__ = [
    "SmokePoint",
    "engine_search_for",
    "scaled_smoke_system",
    "smoke_points",
    "run_live_smoke",
]

#: Mean sequential service time the smoke scales the system up to.
#: Tens of milliseconds ≫ event-loop jitter (~0.1 ms), yet short
#: enough that a 1–2 model-second horizon observes hundreds of
#: queries.
_TARGET_MEAN_SERVICE_S = 0.025


def scaled_smoke_system(
    system: AdaptiveSearchSystem,
    target_mean_service_s: float = _TARGET_MEAN_SERVICE_S,
) -> Tuple[AdaptiveSearchSystem, float]:
    """Rebuild ``system`` with all cost-table times scaled by a common
    factor so mean sequential service hits ``target_mean_service_s``.

    Returns ``(scaled_system, factor)``. Rebuilding (rather than
    patching the oracle) re-derives the threshold table, percentile
    cutoffs, and latency predictor on the scaled table, so policy
    decisions are self-consistent at the new time scale. Systems
    already at or above the target are returned unchanged (factor 1.0):
    scaling only ever slows queries down.
    """
    table = system.cost_table
    mean_t1 = float(np.mean(table.sequential_latencies()))
    factor = target_mean_service_s / mean_t1
    if factor <= 1.0:
        return system, 1.0
    scaled = QueryCostTable(
        table.queries,
        table.degrees,
        table.latency * factor,
        table.cpu * factor,
        table.chunks,
        chunks_skipped=table.chunks_skipped,
    )
    return AdaptiveSearchSystem(system.workbench, scaled, system.config), factor


def engine_search_for(system: AdaptiveSearchSystem, k: int = 10):
    """Search hook over the system's engine and profiled query pool.

    The granted degree is honored up to the engine's configured
    ``max_degree``; results are ``(doc_id, score)`` pairs, best first.
    """
    engine = system.workbench.engine
    queries = system.cost_table.queries
    max_degree = engine.config.max_degree

    def search(query_index: int, degree: int) -> RankedResults:
        result: ExecutionResult = engine.execute(
            queries[query_index], degree=max(1, min(degree, max_degree))
        )
        return tuple(
            (doc.doc_id, doc.score) for doc in result.results[:k]
        )

    return search


@dataclass(frozen=True)
class SmokePoint:
    """One matched sim-vs-live load point."""

    name: str
    policy: str
    config: LoadPointConfig


def smoke_points(
    system: AdaptiveSearchSystem,
    duration_s: float,
    warmup_s: float,
    seed: int = 0,
) -> List[SmokePoint]:
    """The validation points: E05-shaped light/heavy load plus the
    E19-shaped overload point (same SLO and admission-cap recipe as
    the e19 experiment: deadline 2.5× the p99 sequential service time,
    queue capped at 32 cores' worth)."""
    slo = 2.5 * float(system.service_distribution.percentile(99))
    points = []
    for name, utilization in (("e05-light", 0.3), ("e05-heavy", 0.7)):
        points.append(
            SmokePoint(
                name=name,
                policy="adaptive",
                config=LoadPointConfig(
                    rate=system.rate_for_utilization(utilization),
                    duration=duration_s,
                    warmup=warmup_s,
                    n_cores=system.n_cores,
                    seed=seed,
                ),
            )
        )
    points.append(
        SmokePoint(
            name="e19-overload",
            policy="adaptive",
            config=LoadPointConfig(
                rate=system.rate_for_utilization(1.2),
                duration=duration_s,
                warmup=warmup_s,
                n_cores=system.n_cores,
                seed=seed,
                deadline=slo,
                max_queue_length=32 * system.n_cores,
            ),
        )
    )
    return points


def run_live_smoke(
    context: Optional[ExperimentContext] = None,
    duration_s: float = 2.0,
    dilation: float = 10.0,
    seed: int = 0,
    tolerances: Optional[Mapping[str, float]] = None,
    output: Optional[str] = None,
    engine_results: bool = False,
) -> Tuple[Dict[str, Any], bool]:
    """Run the sim-vs-live validation suite; returns (report, ok).

    Wall cost is about ``len(points) × duration_s × dilation`` seconds.
    ``engine_results`` additionally runs the real engine per completed
    query (off by default: the smoke validates *timing* parity, and
    engine execution is outside the timing model — see
    :mod:`repro.runtime.node`).
    """
    context = context if context is not None else ExperimentContext()
    system, time_scale = scaled_smoke_system(context.system)
    warmup_s = min(duration_s / 4.0, 0.5)
    bands = dict(DEFAULT_TOLERANCES if tolerances is None else tolerances)
    search = engine_search_for(system) if engine_results else None

    entries: List[Dict[str, Any]] = []
    ok = True
    for point in smoke_points(system, duration_s, warmup_s, seed=seed):
        policy_sim = system.policy(point.policy)
        policy_live = system.policy(point.policy)
        script = build_arrival_script(
            system.oracle.n_queries, point.config
        )
        sim_summary, _ = run_scripted_point(
            system.oracle, policy_sim, point.config, script
        )
        live_summary, _ = asyncio.run(
            run_live_point(
                system.oracle,
                policy_live,
                point.config,
                script,
                dilation=dilation,
                engine_search=search,
            )
        )
        entry = tolerance_report(sim_summary, live_summary, bands)
        entry["point"] = point.name
        entry["n_arrivals"] = len(script)
        entry["sim_summary"] = to_jsonable(sim_summary)
        entry["live_summary"] = to_jsonable(live_summary)
        ok = ok and entry["ok"]
        entries.append(entry)

    report: Dict[str, Any] = {
        "ok": ok,
        "scale": context.scale.value,
        "duration_s": duration_s,
        "dilation": dilation,
        "time_scale": time_scale,
        "seed": seed,
        "tolerances": bands,
        "points": entries,
    }
    if output is not None:
        dump_json(report, output)
    return report, ok

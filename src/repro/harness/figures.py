"""Export experiment result data as CSV series for external plotting.

The harness stores each experiment's figure-ready series in the
``data`` field of its JSON result. :func:`export_csv` turns those into
plain CSV files (one per experiment) that any plotting tool can consume
— the reproduction itself stays dependency-free of matplotlib.

The exporter is schema-light: it looks for an *axis* entry (a list named
``utilizations``, ``rates``, ``burst_ratios``, or ``shard_counts``) and
emits every other list of the same length as a column; scalar entries
and nested dicts of scalars go to a ``<id>_scalars.csv`` companion.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.harness.report import load_results_dir

AXIS_NAMES = ("utilizations", "rates", "burst_ratios", "shard_counts")


def _find_axis(data: Dict) -> Optional[Tuple[str, List]]:
    for name in AXIS_NAMES:
        axis = data.get(name)
        if isinstance(axis, list) and axis:
            return name, axis
    return None


def _series_columns(data: Dict, axis_len: int) -> Dict[str, List]:
    """Collect every equal-length numeric list, flattening one dict level."""
    columns: Dict[str, List] = {}

    def consider(name: str, value) -> None:
        if (
            isinstance(value, list)
            and len(value) == axis_len
            and all(isinstance(x, (int, float)) or x is None for x in value)
        ):
            columns[name] = value

    for key, value in data.items():
        if key in AXIS_NAMES:
            continue
        consider(key, value)
        if isinstance(value, dict):
            for sub_key, sub_value in value.items():
                consider(f"{key}/{sub_key}", sub_value)
    return columns


def _scalar_rows(data: Dict) -> List[Tuple[str, Union[int, float, str]]]:
    rows: List[Tuple[str, Union[int, float, str]]] = []

    def walk(prefix: str, value) -> None:
        if isinstance(value, (int, float, str, bool)) or value is None:
            rows.append((prefix, value))
        elif isinstance(value, dict):
            for key, sub_value in value.items():
                walk(f"{prefix}/{key}" if prefix else str(key), sub_value)

    for key, value in data.items():
        if key in AXIS_NAMES or isinstance(value, list):
            continue
        walk(str(key), value)
    return rows


def export_csv(
    results_dir: Union[str, Path], output_dir: Union[str, Path]
) -> List[Path]:
    """Export every experiment result in ``results_dir`` to CSV.

    Returns the list of files written. Experiments whose ``data`` holds
    an axis get a ``<id>_series.csv`` (axis + aligned series); any scalar
    content goes to ``<id>_scalars.csv``.
    """
    payloads = load_results_dir(results_dir)
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []

    for payload in payloads:
        experiment_id = payload["experiment_id"]
        data = payload.get("data") or {}
        if not isinstance(data, dict):
            continue

        axis = _find_axis(data)
        if axis is not None:
            axis_name, axis_values = axis
            columns = _series_columns(data, len(axis_values))
            if columns:
                path = output_dir / f"{experiment_id}_series.csv"
                with path.open("w", newline="", encoding="utf-8") as handle:
                    writer = csv.writer(handle)
                    names = sorted(columns)
                    writer.writerow([axis_name] + names)
                    for i, x in enumerate(axis_values):
                        writer.writerow([x] + [columns[n][i] for n in names])
                written.append(path)

        scalars = _scalar_rows(data)
        if scalars:
            path = output_dir / f"{experiment_id}_scalars.csv"
            with path.open("w", newline="", encoding="utf-8") as handle:
                writer = csv.writer(handle)
                writer.writerow(["key", "value"])
                writer.writerows(scalars)
            written.append(path)

    if not written:
        raise ConfigurationError(f"nothing exportable found in {results_dir}")
    return written

"""Experiment result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.util.serde import to_jsonable
from repro.util.tables import Table


@dataclass(frozen=True)
class CheckOutcome:
    """One shape assertion about an experiment's output.

    Checks encode the paper's qualitative claims ("adaptive tracks the
    fixed-policy envelope", "long queries speed up more than short
    ones"); EXPERIMENTS.md reports their pass/fail status.
    """

    name: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{status}] {self.name}{suffix}"


@dataclass
class ExperimentResult:
    """Everything an experiment produces."""

    experiment_id: str
    title: str
    description: str
    tables: List[Table] = field(default_factory=list)
    charts: List[str] = field(default_factory=list)
    checks: List[CheckOutcome] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def all_checks_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def add_table(self, table: Table) -> None:
        self.tables.append(table)

    def add_chart(self, chart: str) -> None:
        """Attach a preformatted ASCII chart (see repro.util.ascii_chart)."""
        self.charts.append(chart)

    def add_check(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(CheckOutcome(name=name, passed=bool(passed), detail=detail))

    def render(self) -> str:
        lines = [f"=== {self.experiment_id.upper()}: {self.title} ===", ""]
        if self.description:
            lines.append(self.description)
            lines.append("")
        for table in self.tables:
            lines.append(table.render())
            lines.append("")
        for chart in self.charts:
            lines.append(chart)
            lines.append("")
        if self.checks:
            lines.append("Shape checks:")
            lines.extend("  " + check.render() for check in self.checks)
            lines.append("")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "description": self.description,
            "tables": [
                {"title": t.title, "columns": t.columns, "rows": t.as_records()}
                for t in self.tables
            ],
            "charts": list(self.charts),
            "checks": [to_jsonable(c) for c in self.checks],
            "data": to_jsonable(self.data),
        }

"""E19 (extension) — Overload and graceful degradation.

The fault-free experiments let queues grow without bound and make the
aggregator wait for the slowest shard no matter what. Real ISNs enforce
per-query deadlines, shed load past saturation, and return partial
answers rather than miss the SLO. This experiment turns those knobs on
and asks what adaptive parallelism buys when the system is allowed to
*fail gracefully*:

* **Node overload** — a load sweep through and past saturation with a
  deadline and an admission cap. Adaptive execution reverts to
  sequential under load, so it saturates later than a fixed-wide
  policy and sheds less at the same offered rate; goodput (in-SLO
  completions/sec) plateaus at capacity instead of collapsing the way
  the no-shedding baseline's does.
* **Cluster faults** — a fan-out cluster with one injected slow shard:
  hedged requests to fault-free replicas cut the end-to-end P99; a
  crashed shard with K-of-N quorum aggregation degrades to partial
  answers (coverage < 1) instead of stalling the aggregator.
"""

from __future__ import annotations

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.sim.cluster import ClusterConfig, run_cluster_point
from repro.sim.faults import ClusterFaultPlan, FaultSchedule
from repro.util.tables import Table

EXPERIMENT_ID = "e19"
TITLE = "Overload & graceful degradation (deadlines, shedding, faults, hedging)"

#: Sequential-work utilizations swept through saturation (1.0 = the
#: sequential capacity of the ISN; beyond it, demand exceeds the machine).
OVERLOAD_UTILIZATIONS = (0.7, 1.0, 1.2, 1.5)
#: The over-saturation point where shed rates are compared head-to-head.
OVER_SATURATION = 1.2
#: SLO budget as a multiple of the idle sequential P99 (same convention
#: as E8's capacity SLA).
SLO_MULTIPLE = 2.5
#: Admission cap per core — generous, so the deadline does most of the
#: shedding and the cap only bounds the queue under deep overload.
QUEUE_CAP_PER_CORE = 32

#: Cluster scenario parameters.
N_SHARDS = 4
CLUSTER_UTILIZATION = 0.3
SLOW_SHARD = 0
SLOW_MULTIPLIER = 4.0
QUORUM = 3


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "Robustness layer end to end: deadline shedding and goodput "
            f"through a load sweep ({OVERLOAD_UTILIZATIONS} x sequential "
            "saturation) on one ISN, then fault injection (one shard "
            f"slowed {SLOW_MULTIPLIER}x, one crash window) on a "
            f"{N_SHARDS}-shard cluster with hedged and K-of-N partial "
            "aggregation."
        ),
    )

    slo = SLO_MULTIPLE * float(system.service_distribution.percentile(99))
    cap = QUEUE_CAP_PER_CORE * system.n_cores

    # ---------------------------------------------------------------
    # Part A: node-level overload sweep with deadline + admission cap.
    # ---------------------------------------------------------------
    shed_rates = {}
    goodputs = {}
    node_table = Table(
        ["policy", "load (x saturation)", "shed rate", "goodput (qps)",
         "SLO attainment", "P99 (ms)"],
        title=f"Node overload sweep (SLO = {slo*1e3:.1f} ms, shedding on)",
    )
    for policy_name in ("fixed-8", "adaptive"):
        for i, u in enumerate(OVERLOAD_UTILIZATIONS):
            summary = system.run_point(
                policy_name,
                system.rate_for_utilization(u),
                duration=ctx.sim_duration,
                warmup=ctx.sim_warmup,
                seed=190 + i,
                deadline=slo,
                max_queue_length=cap,
            )
            shed_rates[(policy_name, u)] = summary.shed_rate
            goodputs[(policy_name, u)] = summary.goodput
            node_table.add_row(
                [policy_name, u, summary.shed_rate, summary.goodput,
                 summary.slo_attainment, summary.p99_latency * 1e3]
            )
    # No-shedding baseline: same sweep, deadline off, scored against the
    # same SLO bar — shows what "just queue forever" does to goodput.
    noshed_goodputs = []
    for i, u in enumerate(OVERLOAD_UTILIZATIONS):
        summary = system.run_point(
            "adaptive",
            system.rate_for_utilization(u),
            duration=ctx.sim_duration,
            warmup=ctx.sim_warmup,
            seed=190 + i,
            slo=slo,
        )
        noshed_goodputs.append(summary.goodput)
        node_table.add_row(
            ["adaptive (no shed)", u, summary.shed_rate, summary.goodput,
             summary.slo_attainment, summary.p99_latency * 1e3]
        )
    result.add_table(node_table)

    # ---------------------------------------------------------------
    # Part B: cluster fault injection, hedging, partial aggregation.
    # ---------------------------------------------------------------
    rate = system.rate_for_utilization(CLUSTER_UTILIZATION)
    duration = max(ctx.sim_duration * 0.75, 4.0)
    warmup = duration / 4.0
    base = dict(
        n_shards=N_SHARDS,
        n_cores_per_shard=system.n_cores,
        rate=rate,
        duration=duration,
        warmup=warmup,
        seed=191,
    )
    hedge_delay = 2.0 * float(system.service_distribution.percentile(95))
    slow_plan = ClusterFaultPlan.slow_shard(
        SLOW_SHARD, 0.0, duration, SLOW_MULTIPLIER
    )
    crash_plan = ClusterFaultPlan(
        {SLOW_SHARD: FaultSchedule.crash(warmup, warmup + (duration - warmup) / 2)}
    )
    scenarios = {
        "fault-free": (ClusterConfig(**base), None),
        "slow shard": (ClusterConfig(**base), slow_plan),
        "slow shard + hedging": (
            ClusterConfig(hedge_delay=hedge_delay, **base),
            slow_plan,
        ),
        "crash + quorum 3/4 + timeout": (
            ClusterConfig(
                quorum=QUORUM,
                shard_timeout=max(8.0 * hedge_delay, 2.0 * slo),
                **base,
            ),
            crash_plan,
        ),
    }
    cluster = {}
    cluster_table = Table(
        ["scenario", "cluster P99 (ms)", "coverage", "partial", "failed",
         "shed", "hedges (wins)", "unfinished"],
        title=f"Cluster degradation ({N_SHARDS} shards, adaptive, "
              f"per-shard u={CLUSTER_UTILIZATION})",
    )
    for label, (config, plan) in scenarios.items():
        summary = run_cluster_point(
            system.oracle, lambda: system.policy("adaptive"), config,
            faults=plan,
        )
        cluster[label] = summary
        cluster_table.add_row(
            [label, summary.p99_latency * 1e3, summary.mean_coverage,
             summary.n_partial, summary.n_failed, summary.n_shed,
             f"{summary.n_hedges} ({summary.n_hedge_wins})",
             summary.unfinished]
        )
    result.add_table(cluster_table)

    # ---------------------------------------------------------------
    # Shape checks.
    # ---------------------------------------------------------------
    adaptive_shed = shed_rates[("adaptive", OVER_SATURATION)]
    fixed_shed = shed_rates[("fixed-8", OVER_SATURATION)]
    result.add_check(
        f"adaptive sheds less than fixed-8 at {OVER_SATURATION}x saturation",
        adaptive_shed < fixed_shed,
        f"{adaptive_shed*100:.1f}% vs {fixed_shed*100:.1f}%",
    )

    adaptive_goodput = [goodputs[("adaptive", u)] for u in OVERLOAD_UTILIZATIONS]
    peak = max(adaptive_goodput)
    past_peak = adaptive_goodput[adaptive_goodput.index(peak):]
    result.add_check(
        "goodput degrades gracefully past saturation (no cliff: every "
        "post-peak point >= 60% of peak)",
        peak > 0 and all(g >= 0.6 * peak for g in past_peak),
        " -> ".join(f"{g:.0f}" for g in adaptive_goodput) + " qps",
    )
    result.add_check(
        "shedding beats queueing-forever on goodput at the deepest "
        "overload point",
        adaptive_goodput[-1] > noshed_goodputs[-1],
        f"{adaptive_goodput[-1]:.0f} vs {noshed_goodputs[-1]:.0f} qps at "
        f"{OVERLOAD_UTILIZATIONS[-1]}x",
    )

    hedged = cluster["slow shard + hedging"]
    unhedged = cluster["slow shard"]
    result.add_check(
        "hedging cuts cluster P99 under a slow-shard fault",
        hedged.p99_latency < unhedged.p99_latency,
        f"{hedged.p99_latency*1e3:.1f} vs {unhedged.p99_latency*1e3:.1f} ms "
        f"({hedged.n_hedges} hedges, {hedged.n_hedge_wins} wins)",
    )

    degraded = cluster["crash + quorum 3/4 + timeout"]
    result.add_check(
        "quorum aggregation degrades to partial answers under a crash "
        "(0 < coverage < 1, no failures)",
        degraded.n_partial > 0
        and 0.0 < degraded.mean_coverage < 1.0
        and degraded.n_failed == 0,
        f"coverage {degraded.mean_coverage:.3f}, "
        f"{degraded.n_partial} partial / {degraded.n_failed} failed",
    )
    clean = cluster["fault-free"]
    result.add_check(
        "fault-free cluster run is undegraded (no sheds, no partials, "
        "full coverage)",
        clean.n_shed == 0 and clean.n_partial == 0
        and clean.mean_coverage == 1.0 and clean.unfinished == 0,
        f"coverage {clean.mean_coverage:.3f}",
    )

    result.data = {
        "slo_ms": slo * 1e3,
        "utilizations": list(OVERLOAD_UTILIZATIONS),
        "shed_rates": {f"{p}/{u}": v for (p, u), v in shed_rates.items()},
        "goodput_qps": {f"{p}/{u}": v for (p, u), v in goodputs.items()},
        "noshed_goodput_qps": noshed_goodputs,
        "cluster_p99_ms": {k: v.p99_latency * 1e3 for k, v in cluster.items()},
        "cluster_coverage": {k: v.mean_coverage for k, v in cluster.items()},
        "hedges": hedged.n_hedges,
        "hedge_wins": hedged.n_hedge_wins,
    }
    return result

"""One module per reproduced table/figure (see DESIGN.md §3)."""

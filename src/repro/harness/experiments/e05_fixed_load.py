"""E5 — Latency vs load for fixed parallelism degrees.

Reconstructs the paper's fixed-degree comparison: higher degrees win at
low load (parallelism cuts the tail using idle cores) but saturate
earlier (each query inflates total work by V(p)), so the curves cross.
No single fixed degree is best across the operating range — the gap the
adaptive policy closes in E6.
"""

from __future__ import annotations

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.util.tables import Table

EXPERIMENT_ID = "e05"
TITLE = "Mean and P99 latency vs load, fixed degrees"

FIXED_POLICIES = ("sequential", "fixed-2", "fixed-4", "fixed-8")


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    utilizations = list(ctx.utilization_grid)
    comparison = system.sweep(
        FIXED_POLICIES,
        utilizations,
        duration=ctx.sim_duration,
        warmup=ctx.sim_warmup,
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "Open-loop Poisson arrivals; load expressed as sequential-work "
            "utilization (rate × E[t1] / cores). Latencies in ms."
        ),
    )

    names = [system.policy(p).name for p in FIXED_POLICIES]
    for metric, label in (("p99_latency", "P99 latency (ms)"),
                          ("mean_latency", "Mean latency (ms)")):
        table = Table(["utilization"] + names, title=label)
        for i, u in enumerate(utilizations):
            row = [u]
            for name in names:
                row.append(comparison.summaries[name][i].__getattribute__(metric) * 1e3)
            table.add_row(row)
        result.add_table(table)

    # Crossovers between neighbouring degrees on P99.
    crossing = Table(["pair", "crossover utilization"], title="P99 crossovers")
    crossovers = {}
    rates = comparison.rates
    for wide, narrow in (("fixed-8", "fixed-4"), ("fixed-4", "fixed-2"),
                         ("fixed-2", "sequential")):
        rate = comparison.crossover(wide, narrow)
        utilization = None if rate is None else rate / system.saturation_rate
        crossing.add_row([f"{wide} vs {narrow}",
                          "none" if utilization is None else utilization])
        crossovers[f"{wide}_vs_{narrow}"] = utilization
    result.add_table(crossing)

    low, high = 0, len(utilizations) - 1
    p99 = {name: comparison.p99(name) for name in names}
    result.add_check(
        "at the lowest load, moderate parallelism strictly improves P99 "
        "(fixed-4 < fixed-2 < sequential)",
        p99["fixed-4"][low] < p99["fixed-2"][low] < p99["sequential"][low],
        f"p99@u={utilizations[low]}: "
        + ", ".join(f"{n}={p99[n][low]*1e3:.2f}ms" for n in names),
    )
    result.add_check(
        "at the lowest load, the best fixed configuration is parallel",
        min(p99[n][low] for n in names if n != "sequential")
        < p99["sequential"][low],
    )
    result.add_check(
        "at the highest load, sequential beats wide parallelism",
        p99["sequential"][high] < p99["fixed-4"][high]
        and p99["sequential"][high] < p99["fixed-8"][high],
        f"p99@u={utilizations[high]}: "
        + ", ".join(f"{n}={p99[n][high]*1e3:.1f}ms" for n in names),
    )
    result.add_check(
        "the curves cross: fixed-8 loses to sequential somewhere in-sweep",
        crossovers.get("fixed-8_vs_fixed-4") is not None
        or p99["fixed-8"][high] > p99["fixed-4"][high],
    )
    result.data = {
        "utilizations": utilizations,
        "rates": rates,
        "p99_ms": {n: (p99[n] * 1e3).tolist() for n in names},
        "crossover_utilizations": crossovers,
    }
    return result

"""E11 — Simulator validation against queueing theory.

Feeds the discrete-event ISN model exponential service times at degree 1
(making it an M/M/c queue) and checks the measured mean queueing delay
against the exact Erlang-C formula at several utilizations. This is the
evidence that latency numbers from E5–E10 come from a correct queueing
simulation rather than an artifact.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.queueing_theory import mmc_mean_queue_delay
from repro.engine.query import Query
from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.policies.fixed import SequentialPolicy
from repro.profiles.measurement import QueryCostTable
from repro.sim.experiment import LoadPointConfig, run_load_point
from repro.sim.oracle import ServiceOracle
from repro.util.rng import make_rng
from repro.util.tables import Table

EXPERIMENT_ID = "e11"
TITLE = "Simulator vs Erlang-C (M/M/c validation)"

UTILIZATIONS = (0.6, 0.75, 0.85)
N_CORES = 12
MEAN_SERVICE = 2e-3  # 2 ms


def _exponential_cost_table(n: int, seed: int) -> QueryCostTable:
    """A degree-1-only cost table with exponential service times.

    The sample is renormalized to the exact nominal mean: near
    saturation the Erlang-C wait is hyper-sensitive to the offered load,
    so a 1% sampling error in the mean would swamp the comparison.
    """
    rng = make_rng(seed)
    latencies = rng.exponential(MEAN_SERVICE, size=n).reshape(n, 1)
    latencies *= MEAN_SERVICE / latencies.mean()
    queries = [Query.of([0], query_id=i) for i in range(n)]
    return QueryCostTable(
        queries=queries,
        degrees=(1,),
        latency=latencies,
        cpu=latencies.copy(),
        chunks=np.ones((n, 1), dtype=np.int64),
    )


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            f"M/M/{N_CORES} with mean service {MEAN_SERVICE*1e3:.0f} ms: "
            "measured mean queue delay vs Erlang-C."
        ),
    )
    oracle = ServiceOracle(_exponential_cost_table(4_000, seed=5))
    policy = SequentialPolicy()
    service_rate = 1.0 / MEAN_SERVICE

    # Longer horizons at high utilization: queueing variance grows
    # as 1/(1-rho), so keep confidence roughly constant.
    table = Table(
        ["utilization", "measured wait (ms)", "Erlang-C wait (ms)", "relative error"],
        title="Mean queueing delay",
    )
    errors = []
    for i, rho in enumerate(UTILIZATIONS):
        rate = rho * N_CORES * service_rate
        duration = (30.0 if ctx.sim_duration >= 10 else 12.0) / (1.0 - rho)
        config = LoadPointConfig(
            rate=rate,
            duration=duration,
            warmup=duration * 0.2,
            n_cores=N_CORES,
            seed=17 + i,
        )
        summary = run_load_point(oracle, policy, config)
        theory = mmc_mean_queue_delay(rate, service_rate, N_CORES)
        measured = summary.mean_queue_delay
        error = abs(measured - theory) / theory if theory > 0 else 0.0
        errors.append(error)
        table.add_row([rho, measured * 1e3, theory * 1e3, error])
    result.add_table(table)

    result.add_check(
        "measured mean queue delay within 15% of Erlang-C at every load",
        all(e <= 0.15 for e in errors),
        " ".join(f"{e*100:.1f}%" for e in errors),
    )
    result.data = {
        "utilizations": list(UTILIZATIONS),
        "relative_errors": errors,
    }
    return result

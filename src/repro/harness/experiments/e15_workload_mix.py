"""E15 (extension) — Sensitivity to the workload mix.

How robust are the paper's conclusions to the query stream? This
experiment re-profiles the same shard under three named mixes
(navigational / standard / informational) and compares, per mix, the
service-time skew, the long-query speedup, and the adaptive policy's
low-load P99 cut. The expected gradient: the heavier the tail, the more
adaptive parallelism pays.
"""

from __future__ import annotations

from repro.core.controller import AdaptiveSearchSystem, SystemConfig
from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.util.tables import Table
from repro.workloads.mixes import get_mix
from repro.workloads.queries import QueryGenerator

EXPERIMENT_ID = "e15"
TITLE = "Workload-mix sensitivity (navigational / standard / informational)"

MIX_NAMES = ("navigational", "standard", "informational")
LOW_UTILIZATION = 0.15


def run(ctx: ExperimentContext) -> ExperimentResult:
    base_system = ctx.system
    workbench = base_system.workbench
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "The same shard profiled under three query mixes; adaptive "
            f"gain measured at u={LOW_UTILIZATION}."
        ),
    )

    n_queries = max(200, ctx.params.n_profile_queries // 3)
    rows = {}
    table = Table(
        ["mix", "mean t1 (ms)", "p99/p50", "long S(widest)",
         "adaptive P99 cut @ low load", "thresholds"],
        title="Per-mix profile and adaptive gain",
    )
    for mix_name in MIX_NAMES:
        mix = get_mix(
            mix_name,
            vocab_size=workbench.corpus.vocab_size,
            seed=base_system.config.seed,
        )
        generator = QueryGenerator(
            mix, workbench.rng_factory.stream("mix-queries", mix_name)
        )
        system = AdaptiveSearchSystem.from_workbench(
            workbench,
            SystemConfig(
                n_queries=n_queries,
                degrees=base_system.config.degrees,
                n_cores=base_system.config.n_cores,
                seed=base_system.config.seed,
            ),
            queries=generator.sample_many(n_queries),
        )
        dist = system.service_distribution
        profile = system.profile
        widest = profile.degrees[-1]
        rate = system.rate_for_utilization(LOW_UTILIZATION)
        sequential = system.run_point(
            "sequential", rate, duration=ctx.sim_duration / 2,
            warmup=ctx.sim_warmup / 2,
        )
        adaptive = system.run_point(
            "adaptive", rate, duration=ctx.sim_duration / 2,
            warmup=ctx.sim_warmup / 2,
        )
        gain = 1.0 - adaptive.p99_latency / sequential.p99_latency
        rows[mix_name] = {
            "mean_t1_ms": dist.mean * 1e3,
            "tail_ratio": dist.tail_ratio(),
            "long_speedup": profile.speedup(widest, profile.n_classes - 1),
            "adaptive_gain": gain,
        }
        table.add_row(
            [
                mix_name,
                rows[mix_name]["mean_t1_ms"],
                rows[mix_name]["tail_ratio"],
                rows[mix_name]["long_speedup"],
                gain,
                system.threshold_table.describe(),
            ]
        )
    result.add_table(table)

    result.add_check(
        "informational (long-tail) traffic is slower on average than "
        "navigational",
        rows["informational"]["mean_t1_ms"] > rows["navigational"]["mean_t1_ms"],
        f"{rows['navigational']['mean_t1_ms']:.3f} vs "
        f"{rows['informational']['mean_t1_ms']:.3f} ms",
    )
    # On head-heavy (navigational) traffic even the longest queries may
    # not parallelize; the threshold derivation then correctly refuses
    # parallelism and adaptive degenerates to sequential (gain ~0). The
    # checks encode that: adaptive must never *hurt*, and must help
    # wherever long queries actually speed up.
    result.add_check(
        "adaptive never hurts on any mix (P99 cut >= -5%)",
        all(r["adaptive_gain"] >= -0.05 for r in rows.values()),
        ", ".join(f"{m}: {r['adaptive_gain']*100:.0f}%" for m, r in rows.items()),
    )
    helped = all(
        r["adaptive_gain"] > 0.15
        for r in rows.values()
        if r["long_speedup"] >= 1.5
    )
    result.add_check(
        "adaptive helps wherever long queries parallelize (S >= 1.5)",
        helped,
        ", ".join(
            f"{m}: S={r['long_speedup']:.2f}, gain {r['adaptive_gain']*100:.0f}%"
            for m, r in rows.items()
        ),
    )
    result.add_check(
        "heavier-tailed mixes parallelize long queries better",
        rows["informational"]["long_speedup"]
        > rows["navigational"]["long_speedup"],
        f"nav {rows['navigational']['long_speedup']:.2f} vs "
        f"info {rows['informational']['long_speedup']:.2f}",
    )
    result.data = {"mixes": rows}
    return result

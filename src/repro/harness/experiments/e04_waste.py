"""E4 — Parallelization waste and efficiency vs degree.

Reconstructs the paper's efficiency analysis: parallel execution of an
early-terminating query does speculative extra work (chunks claimed by
workers before the shared termination state catches up), so total CPU
inflates with degree. The work-inflation factor V(p) is what scales down
the ISN's saturation throughput when every query runs at degree p.
"""

from __future__ import annotations

import numpy as np

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.util.tables import Table

EXPERIMENT_ID = "e04"
TITLE = "Parallelization waste and CPU efficiency vs degree"


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    table = system.cost_table
    profile = system.profile
    degrees = list(table.degrees)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "Chunk waste (extra chunks evaluated vs sequential), aggregate "
            "CPU inflation V(p), and the implied capacity efficiency 1/V(p)."
        ),
    )

    seq_col = table.degree_column(1)
    seq_chunks = table.chunks[:, seq_col].astype(np.float64)
    waste_table = Table(
        ["degree", "mean extra chunks", "waste fraction", "V(p) cpu inflation",
         "capacity efficiency"],
        title="Waste and efficiency",
    )
    waste_rows = {}
    for p in degrees:
        col = table.degree_column(p)
        extra = table.chunks[:, col].astype(np.float64) - seq_chunks
        waste_fraction = float(extra.sum() / max(seq_chunks.sum(), 1.0))
        inflation = profile.work_inflation(p)
        waste_table.add_row(
            [p, float(extra.mean()), waste_fraction, inflation, 1.0 / inflation]
        )
        waste_rows[p] = {
            "mean_extra_chunks": float(extra.mean()),
            "waste_fraction": waste_fraction,
            "inflation": inflation,
        }
    result.add_table(waste_table)

    parallel_degrees = [p for p in degrees if p > 1]
    result.add_check(
        "parallel execution never evaluates fewer chunks than sequential",
        bool(
            np.all(
                table.chunks[:, [table.degree_column(p) for p in parallel_degrees]]
                >= seq_chunks[:, None]
            )
        ),
    )
    inflations = [profile.work_inflation(p) for p in degrees]
    result.add_check(
        "CPU inflation V(p) is non-decreasing in degree",
        all(b >= a - 1e-9 for a, b in zip(inflations, inflations[1:])),
        " ".join(f"{v:.2f}" for v in inflations),
    )
    result.add_check(
        "parallelism costs capacity: V(p) > 1 for p > 1",
        all(profile.work_inflation(p) > 1.0 for p in parallel_degrees),
    )
    result.data = {"degrees": degrees, "waste": waste_rows}
    return result

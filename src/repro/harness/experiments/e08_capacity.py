"""E8 — Peak throughput under a tail-latency SLO.

Reconstructs the paper's capacity comparison: fixed parallelism trades
peak throughput for low-load latency (capacity scales with the inverse
of the CPU-inflation factor), while the adaptive policy keeps nearly all
of sequential execution's capacity because it degrades to degree 1 under
pressure.
"""

from __future__ import annotations

from repro.core.capacity import capacity_at_slo
from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.util.ascii_chart import bar_chart
from repro.util.tables import Table

EXPERIMENT_ID = "e08"
TITLE = "SLO-constrained capacity per policy"

POLICIES = ("sequential", "fixed-2", "fixed-4", "fixed-8", "adaptive")


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    # SLO: 2.5x the idle-system P99 of sequential execution — a typical
    # interactive-service budget relative to the unloaded tail.
    slo = 2.5 * system.service_distribution.percentile(99)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            f"Peak sustainable QPS whose P99 meets the SLO "
            f"({slo * 1e3:.1f} ms = 2.5 x idle sequential P99), found by "
            "bisection on the simulator."
        ),
    )

    duration = ctx.params.capacity_duration
    capacities = {}
    table = Table(
        ["policy", "capacity (QPS)", "fraction of sequential saturation"],
        title="SLO capacity",
    )
    for name in POLICIES:
        outcome = capacity_at_slo(
            system, name, slo, duration=duration, warmup=duration / 4.0
        )
        capacities[name] = outcome
        table.add_row([name, outcome.capacity_qps, outcome.capacity_utilization])
    result.add_table(table)
    result.add_chart(
        bar_chart(
            list(POLICIES),
            [capacities[name].capacity_qps for name in POLICIES],
            title="SLO capacity (QPS)",
            unit=" qps",
        )
    )

    sequential_capacity = capacities["sequential"].capacity_qps
    adaptive_capacity = capacities["adaptive"].capacity_qps
    result.add_check(
        "adaptive retains >= 85% of sequential capacity",
        adaptive_capacity >= 0.85 * sequential_capacity,
        f"adaptive {adaptive_capacity:.0f} vs sequential {sequential_capacity:.0f} QPS",
    )
    result.add_check(
        "wide fixed parallelism sacrifices capacity (fixed-8 < 85% of sequential)",
        capacities["fixed-8"].capacity_qps < 0.85 * sequential_capacity,
        f"fixed-8 {capacities['fixed-8'].capacity_qps:.0f} QPS",
    )
    # The work-inflation model bounds fixed-p capacity from above; the
    # measured value sits below it because gang execution also fragments
    # the cores (a degree-8 job on 12 cores strands 4).
    inflation = system.profile.work_inflation(8)
    predicted = sequential_capacity / inflation
    measured = capacities["fixed-8"].capacity_qps
    result.add_check(
        "fixed-8 capacity bounded by 1/V(8) of sequential (packing losses "
        "push it lower)",
        measured <= predicted * 1.15 and measured >= predicted * 0.15,
        f"measured {measured:.0f}, V-bound {predicted:.0f} QPS",
    )
    result.data = {
        "slo_ms": slo * 1e3,
        "capacity_qps": {n: c.capacity_qps for n, c in capacities.items()},
        "capacity_utilization": {
            n: c.capacity_utilization for n, c in capacities.items()
        },
    }
    return result

"""E16 (extension) — Corpus-structure sensitivity: topical co-occurrence.

The default synthetic corpus draws tokens independently, so conjunctive
match rates are popularity products. Real text is topical — terms
cluster, and users query within topics. This experiment rebuilds the
whole pipeline (corpus → index → profile → policy → simulation) on a
latent-topic corpus with topic-coherent queries and verifies that the
paper's core dynamics survive the change in co-occurrence structure:
a heavy service-time tail, strong long-query speedup, and a large
low-load P99 cut from the adaptive policy with no high-load regression.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.controller import AdaptiveSearchSystem, SystemConfig
from repro.corpus.topical import TopicModelConfig, generate_topical_corpus
from repro.engine.executor import Engine
from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.index.builder import build_index
from repro.util.tables import Table
from repro.workloads.topical import TopicalQueryGenerator
from repro.workloads.workbench import Workbench

EXPERIMENT_ID = "e16"
TITLE = "Corpus-structure sensitivity: topical co-occurrence"


def _build_topical_system(ctx: ExperimentContext) -> AdaptiveSearchSystem:
    base = ctx.system
    base_config = ctx.workbench_config()
    vocab = base_config.corpus.vocab_size
    topic_config = TopicModelConfig(
        n_topics=max(10, vocab // 600),
        topic_vocab=max(50, vocab // 15),
    )
    corpus, model = generate_topical_corpus(
        base_config.corpus,
        topic_config,
        rng=base.workbench.rng_factory.stream("topical-corpus"),
    )
    index = build_index(corpus, base_config.index)
    workbench = Workbench(
        config=base_config,
        corpus=corpus,
        index=index,
        engine=Engine(index, base_config.engine),
        rng_factory=base.workbench.rng_factory.child("topical"),
    )
    generator = TopicalQueryGenerator(
        model,
        replace(base_config.workload, seed=base.config.seed),
        workbench.rng_factory.stream("topical-queries"),
    )
    n_queries = max(250, ctx.params.n_profile_queries // 3)
    return AdaptiveSearchSystem.from_workbench(
        workbench,
        SystemConfig(
            n_queries=n_queries,
            degrees=base.config.degrees,
            n_cores=base.config.n_cores,
            seed=base.config.seed,
        ),
        queries=generator.sample_many(n_queries),
    )


def run(ctx: ExperimentContext) -> ExperimentResult:
    base = ctx.system
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "The full pipeline rebuilt on a latent-topic corpus with "
            "topic-coherent queries, side by side with the independent-"
            "draw baseline corpus."
        ),
    )
    topical = _build_topical_system(ctx)

    rows = {}
    table = Table(
        ["corpus", "mean t1 (ms)", "p99/p50", "long S(widest)",
         "adaptive P99 cut @ low", "adaptive vs seq @ high"],
        title="Independent vs topical corpus",
    )
    for label, system in (("independent", base), ("topical", topical)):
        dist = system.service_distribution
        profile = system.profile
        widest = profile.degrees[-1]
        low_rate = system.rate_for_utilization(0.1)
        high_rate = system.rate_for_utilization(0.85)
        duration, warmup = ctx.sim_duration / 2, ctx.sim_warmup / 2
        seq_low = system.run_point("sequential", low_rate, duration, warmup)
        ada_low = system.run_point("adaptive", low_rate, duration, warmup)
        seq_high = system.run_point("sequential", high_rate, duration, warmup)
        ada_high = system.run_point("adaptive", high_rate, duration, warmup)
        rows[label] = {
            "mean_t1_ms": dist.mean * 1e3,
            "tail_ratio": dist.tail_ratio(),
            "long_speedup": profile.speedup(widest, profile.n_classes - 1),
            "low_gain": 1.0 - ada_low.p99_latency / seq_low.p99_latency,
            "high_ratio": ada_high.p99_latency / seq_high.p99_latency,
        }
        table.add_row([label] + list(rows[label].values()))
    result.add_table(table)

    topical_row = rows["topical"]
    independent_row = rows["independent"]
    result.add_check(
        "the topical corpus keeps a skewed service-time tail "
        "(>= 3x median, and >= 15% of the independent corpus's skew)",
        topical_row["tail_ratio"] >= 3.0
        and topical_row["tail_ratio"] >= 0.15 * independent_row["tail_ratio"],
        f"topical {topical_row['tail_ratio']:.1f} vs independent "
        f"{independent_row['tail_ratio']:.1f}",
    )
    result.add_check(
        "long queries still benefit from parallelism (S > 1.2 and within "
        "40% of the independent corpus)",
        topical_row["long_speedup"] > 1.2
        and topical_row["long_speedup"] >= 0.6 * independent_row["long_speedup"],
        f"topical S {topical_row['long_speedup']:.2f} vs independent "
        f"{independent_row['long_speedup']:.2f}",
    )
    result.add_check(
        "adaptive still cuts low-load P99 by >= 30%",
        topical_row["low_gain"] >= 0.30,
        f"cut {topical_row['low_gain']*100:.0f}%",
    )
    result.add_check(
        "adaptive still tracks sequential at high load (<= 25% above)",
        topical_row["high_ratio"] <= 1.25,
        f"ratio {topical_row['high_ratio']:.2f}",
    )
    result.data = {"corpora": rows}
    return result

"""E12 (extension) — Cluster-level tail amplification.

Web search fans every query out to all index partitions and waits for
the slowest; the aggregate latency is a max over shards, so per-shard
tail improvements compound at the cluster level. This experiment runs a
partitioned cluster at a moderate per-shard load and shows (a) tail
amplification grows with fan-out and (b) the adaptive policy's per-ISN
P99 cut translates into a comparable or larger end-to-end cut.
"""

from __future__ import annotations

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.sim.cluster import ClusterConfig, run_cluster_point
from repro.util.tables import Table

EXPERIMENT_ID = "e12"
TITLE = "Cluster fan-out: tail amplification and adaptive gains"

SHARD_COUNTS = (1, 4, 16)
UTILIZATION = 0.3


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "End-to-end (max-over-shards) latency for a partitioned "
            f"cluster at per-shard utilization {UTILIZATION}; every query "
            "fans out to all shards and independent per-shard work is "
            "drawn from the measured cost table."
        ),
    )

    rate = system.rate_for_utilization(UTILIZATION)
    duration = max(ctx.sim_duration * 0.75, 4.0)
    summaries = {}
    table = Table(
        ["shards", "policy", "cluster P50 (ms)", "cluster P99 (ms)",
         "shard P99 (ms)", "tail amplification"],
        title="Cluster latency",
    )
    for n_shards in SHARD_COUNTS:
        for policy_name in ("sequential", "adaptive"):
            config = ClusterConfig(
                n_shards=n_shards,
                n_cores_per_shard=system.n_cores,
                rate=rate,
                duration=duration,
                warmup=duration / 4.0,
                seed=7 + n_shards,
            )
            summary = run_cluster_point(
                system.oracle, lambda p=policy_name: system.policy(p), config
            )
            summaries[(n_shards, policy_name)] = summary
            table.add_row(
                [
                    n_shards,
                    policy_name,
                    summary.p50_latency * 1e3,
                    summary.p99_latency * 1e3,
                    summary.shard_p99_latency * 1e3,
                    summary.tail_amplification,
                ]
            )
    result.add_table(table)

    gain_table = Table(
        ["shards", "cluster P99 reduction (adaptive vs sequential)"],
        title="End-to-end adaptive gain",
    )
    gains = {}
    for n_shards in SHARD_COUNTS:
        sequential = summaries[(n_shards, "sequential")].p99_latency
        adaptive = summaries[(n_shards, "adaptive")].p99_latency
        gains[n_shards] = 1.0 - adaptive / sequential
        gain_table.add_row([n_shards, gains[n_shards]])
    result.add_table(gain_table)

    seq_p50 = [summaries[(n, "sequential")].p50_latency for n in SHARD_COUNTS]
    result.add_check(
        "fan-out pushes the median toward the shard tail "
        "(cluster P50 grows with shard count)",
        seq_p50[0] < seq_p50[-1],
        " -> ".join(f"{v*1e3:.2f}ms" for v in seq_p50),
    )
    # Gains shrink as fan-out probes deeper per-shard quantiles: the
    # congested outliers that dominate the cluster tail are exactly the
    # moments where the adaptive policy (correctly) reverts to
    # sequential execution. The checks encode that honestly: a solid cut
    # at moderate fan-out, and no regression at the widest.
    result.add_check(
        "adaptive cuts end-to-end P99 by >= 10% up to fan-out 4",
        all(gains[n] >= 0.10 for n in SHARD_COUNTS if n <= 4),
        ", ".join(f"{n}: {g*100:.0f}%" for n, g in gains.items()),
    )
    result.add_check(
        "adaptive never regresses the cluster tail (gain >= -5% everywhere)",
        all(g >= -0.05 for g in gains.values()),
        ", ".join(f"{n}: {g*100:.0f}%" for n, g in gains.items()),
    )
    result.data = {
        "utilization": UTILIZATION,
        "shard_counts": list(SHARD_COUNTS),
        "gains": {str(k): v for k, v in gains.items()},
        "cluster_p99_ms": {
            f"{n}/{p}": summaries[(n, p)].p99_latency * 1e3
            for n in SHARD_COUNTS
            for p in ("sequential", "adaptive")
        },
    }
    return result

"""E13 (extension) — Design-choice ablations: chunk size and match budget.

DESIGN.md calls out two engine design points this experiment justifies:

* **Chunk size** (parallel work granularity): small chunks balance load
  across workers and tighten termination checks but pay per-chunk
  overhead; large chunks amortize overhead but starve wide parallelism
  on short queries and overshoot termination.
* **Match budget** (early-termination aggressiveness): a larger budget
  evaluates more candidates per query — more work per query for better
  result quality, directly scaling the ISN's mean service time.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.engine.executor import Engine
from repro.engine.termination import TerminationConfig
from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.index.builder import IndexConfig, build_index
from repro.profiles.measurement import MeasurementConfig, measure_cost_table
from repro.profiles.speedup import SpeedupProfile
from repro.util.tables import Table

EXPERIMENT_ID = "e13"
TITLE = "Ablations: chunk size and match budget"

CHUNK_SIZES = (32, 128, 512)
MATCH_BUDGETS = (64, 256, 1024)
DEGREES = (1, 2, 4, 8)


def _profile_for_engine(ctx: ExperimentContext, engine: Engine):
    workbench = ctx.system.workbench
    queries = workbench.query_generator("ablation-queries").sample_many(
        max(150, ctx.params.n_profile_queries // 4)
    )
    table = measure_cost_table(
        engine, queries, MeasurementConfig(degrees=DEGREES, n_queries=len(queries))
    )
    return table, SpeedupProfile(table)


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    workbench = system.workbench
    base_engine_config = workbench.engine.config
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "Engine profiles re-measured while varying one design knob at "
            "a time (same corpus, same query stream)."
        ),
    )

    # ---- Chunk-size sweep (rebuilds the index) ----------------------
    chunk_rows = {}
    chunk_table = Table(
        ["chunk size", "mean t1 (ms)", "p99 t1 (ms)", "long S(8)", "V(8)"],
        title="Chunk-size ablation",
    )
    for chunk_size in CHUNK_SIZES:
        index = build_index(
            workbench.corpus,
            IndexConfig(chunk_size=chunk_size, bm25=workbench.index.bm25_params),
        )
        engine = Engine(index, base_engine_config)
        table, profile = _profile_for_engine(ctx, engine)
        t1 = table.sequential_latencies()
        chunk_rows[chunk_size] = {
            "mean_t1_ms": float(t1.mean() * 1e3),
            "p99_t1_ms": float(np.percentile(t1, 99) * 1e3),
            "long_speedup_8": profile.speedup(8, profile.n_classes - 1),
            "inflation_8": profile.work_inflation(8),
        }
        chunk_table.add_row(
            [chunk_size] + list(chunk_rows[chunk_size].values())
        )
    result.add_table(chunk_table)

    # ---- Match-budget sweep (same index, new termination config) ----
    budget_rows = {}
    budget_table = Table(
        ["match budget", "mean t1 (ms)", "p99 t1 (ms)", "early-terminated"],
        title="Match-budget ablation",
    )
    for budget in MATCH_BUDGETS:
        engine = Engine(
            workbench.index,
            replace(
                base_engine_config,
                termination=TerminationConfig(match_budget=budget),
            ),
        )
        queries = workbench.query_generator("ablation-queries").sample_many(
            max(150, ctx.params.n_profile_queries // 4)
        )
        latencies = []
        early = 0
        for query in queries:
            execution = engine.execute(query, 1)
            latencies.append(execution.latency)
            early += int(execution.terminated_early)
        latencies = np.asarray(latencies)
        budget_rows[budget] = {
            "mean_t1_ms": float(latencies.mean() * 1e3),
            "p99_t1_ms": float(np.percentile(latencies, 99) * 1e3),
            "early_fraction": early / len(queries),
        }
        budget_table.add_row([budget] + list(budget_rows[budget].values()))
    result.add_table(budget_table)

    # ---- Shape checks ------------------------------------------------
    speedups = {c: chunk_rows[c]["long_speedup_8"] for c in CHUNK_SIZES}
    best_chunk = max(speedups, key=speedups.get)
    result.add_check(
        "the default chunk size (128) is within 15% of the best long-query "
        "speedup in the sweep",
        speedups[128] >= 0.85 * speedups[best_chunk],
        ", ".join(f"{c}: {s:.2f}" for c, s in speedups.items()),
    )
    mean_t1 = {c: chunk_rows[c]["mean_t1_ms"] for c in CHUNK_SIZES}
    result.add_check(
        "coarser chunks overshoot early termination (mean t1 grows with "
        "chunk size)",
        mean_t1[32] <= mean_t1[128] <= mean_t1[512],
        " -> ".join(f"{c}: {m:.3f}ms" for c, m in mean_t1.items()),
    )
    inflation = {c: chunk_rows[c]["inflation_8"] for c in CHUNK_SIZES}
    result.add_check(
        "coarser chunks inflate speculative waste (V(8) grows from 128 to "
        "512)",
        inflation[512] > inflation[128],
        ", ".join(f"{c}: {v:.2f}" for c, v in inflation.items()),
    )
    means = [budget_rows[b]["mean_t1_ms"] for b in MATCH_BUDGETS]
    result.add_check(
        "mean service time grows monotonically with the match budget",
        means[0] < means[1] < means[2],
        " -> ".join(f"{m:.3f}ms" for m in means),
    )
    early_fractions = [budget_rows[b]["early_fraction"] for b in MATCH_BUDGETS]
    result.add_check(
        "larger budgets terminate fewer queries early",
        early_fractions[0] >= early_fractions[-1],
        " -> ".join(f"{e:.2f}" for e in early_fractions),
    )
    result.data = {
        "chunk_sizes": {str(k): v for k, v in chunk_rows.items()},
        "match_budgets": {str(k): v for k, v in budget_rows.items()},
    }
    return result

"""E1 — Workload and ISN characteristics table.

Reconstructs the paper's experimental-setup table: corpus shard
statistics, index layout, query-stream properties, and the modeled
server. The shape claims: posting lists are Zipf-skewed and query term
counts concentrate on 1–3 terms.
"""

from __future__ import annotations

import numpy as np

from repro.corpus.stats import corpus_stats
from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.util.tables import Table

EXPERIMENT_ID = "e01"
TITLE = "Workload and index-serving-node characteristics"


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    workbench = system.workbench
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "Synthetic substitute for the paper's production shard and "
            "query trace (substitutions documented in DESIGN.md §4)."
        ),
    )

    stats = corpus_stats(workbench.corpus)
    result.add_table(stats.to_table())

    index = workbench.index
    index_table = Table(["metric", "value"], title="Index layout")
    index_table.add_row(["chunk size (docs)", index.chunk_map.chunk_size])
    index_table.add_row(["chunks", index.n_chunks])
    index_table.add_row(["indexed terms", index.n_terms])
    index_table.add_row(["memory footprint (MB)", index.memory_footprint_bytes() / 1e6])
    index_table.add_row(["BM25 k1", index.bm25_params.k1])
    index_table.add_row(["BM25 b", index.bm25_params.b])
    result.add_table(index_table)

    queries = system.cost_table.queries
    term_counts = np.asarray([q.n_terms for q in queries])
    values, counts = np.unique(term_counts, return_counts=True)
    workload_table = Table(["terms/query", "fraction"], title="Query stream")
    for value, count in zip(values, counts):
        workload_table.add_row([int(value), count / term_counts.size])
    result.add_table(workload_table)

    server_table = Table(["metric", "value"], title="Modeled ISN")
    server_table.add_row(["cores", system.n_cores])
    server_table.add_row(["measured degrees", str(list(system.cost_table.degrees))])
    server_table.add_row(["saturation rate (QPS)", system.saturation_rate])
    result.add_table(server_table)

    result.add_check(
        "posting lists are head-skewed (top-10 share > 1%)",
        stats.top10_posting_share > 0.01,
        f"top-10 share {stats.top10_posting_share:.3f}",
    )
    short_queries = float((term_counts <= 3).mean())
    result.add_check(
        "most queries have <= 3 terms",
        short_queries > 0.6,
        f"fraction {short_queries:.2f}",
    )
    result.data = {
        "corpus": stats.__dict__,
        "term_count_distribution": {int(v): int(c) for v, c in zip(values, counts)},
        "saturation_rate": system.saturation_rate,
    }
    return result

"""E9 — Robustness under bursty (MMPP) arrivals.

The adaptive policy keys on instantaneous queue state, so bursts should
push it toward sequential execution *during* the burst and wide
parallelism in the lulls. This experiment checks that its advantage over
both static configurations survives non-Poisson traffic.
"""

from __future__ import annotations

import numpy as np

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.sim.arrivals import MMPP2Arrivals
from repro.util.rng import RngFactory
from repro.util.tables import Table

EXPERIMENT_ID = "e09"
TITLE = "Bursty arrivals (MMPP2) robustness"

POLICIES = ("sequential", "fixed-4", "adaptive")
BURST_RATIOS = (1.0, 2.0, 4.0)
EXTREME_RATIO = 8.0
MEAN_UTILIZATION = 0.3


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "P99 latency at a fixed mean load (u=0.3) while the arrival "
            "process becomes burstier: MMPP2 with rate_high/rate_low in "
            f"{BURST_RATIOS}, 20% of time in the high state (ratio 1.0 "
            "degenerates to Poisson)."
        ),
    )

    mean_rate = system.rate_for_utilization(MEAN_UTILIZATION)
    factory = RngFactory(1234)
    names = [system.policy(p).name for p in POLICIES]
    all_ratios = tuple(BURST_RATIOS) + (EXTREME_RATIO,)
    p99 = {name: [] for name in names}
    for ratio_index, ratio in enumerate(all_ratios):
        for policy_name in POLICIES:
            label = system.policy(policy_name).name
            arrivals = MMPP2Arrivals.with_mean_rate(
                mean_rate=mean_rate,
                burst_ratio=ratio,
                mean_dwell_s=0.05,
                rng=factory.stream("mmpp", ratio_index, policy_name),
            )
            summary = system.run_point(
                policy_name,
                mean_rate,
                duration=ctx.sim_duration,
                warmup=ctx.sim_warmup,
                seed=99 + ratio_index,
                arrivals=arrivals,
            )
            p99[label].append(summary.p99_latency)

    table = Table(
        ["burst ratio"] + names, title="P99 latency (ms) at mean u=0.3"
    )
    for i, ratio in enumerate(all_ratios):
        table.add_row([ratio] + [p99[name][i] * 1e3 for name in names])
    result.add_table(table)

    adaptive = np.asarray(p99["adaptive"])
    sequential = np.asarray(p99["sequential"])
    n_moderate = len(BURST_RATIOS)
    result.add_check(
        "adaptive beats sequential at every moderate burstiness level",
        bool(np.all(adaptive[:n_moderate] < sequential[:n_moderate])),
        " vs ".join(
            f"{a*1e3:.1f}/{s*1e3:.1f}ms"
            for a, s in zip(adaptive[:n_moderate], sequential[:n_moderate])
        ),
    )
    # At the extreme ratio the burst-state rate approaches sequential
    # saturation; adaptive commits some parallelism just before bursts
    # land, so it may trail sequential — but must not collapse.
    result.add_check(
        "adaptive stays within 2.5x of sequential under extreme bursts",
        float(adaptive[-1]) <= 2.5 * float(sequential[-1]),
        f"{adaptive[-1]*1e3:.1f} vs {sequential[-1]*1e3:.1f} ms at ratio "
        f"{EXTREME_RATIO}",
    )
    result.add_check(
        "burstiness inflates everyone's tail (sequential P99 grows with ratio)",
        sequential[-1] > sequential[0],
        f"{sequential[0]*1e3:.1f} -> {sequential[-1]*1e3:.1f}ms",
    )
    result.data = {
        "burst_ratios": list(all_ratios),
        "p99_ms": {name: (np.asarray(v) * 1e3).tolist() for name, v in p99.items()},
    }
    return result

"""E17 (extension) — Threshold-calibration sensitivity.

The adaptive policy's one tunable is its threshold table. The analytic
fair-share derivation is conservative under stochastic load, so the
deployed table stretches its limits by a calibration factor (the paper
tunes thresholds against the live system; `SystemConfig.threshold_scale`
defaults to the equivalent 2.0 here). This experiment sweeps the factor
and shows (a) mid-load P99 improves steadily with the stretch, (b)
high-load behaviour stays pinned to sequential — i.e., the policy is
easy to tune and hard to break, which is part of why it is practical.
"""

from __future__ import annotations

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.policies.adaptive import AdaptivePolicy
from repro.policies.derivation import derive_threshold_table, scale_table
from repro.sim.experiment import LoadPointConfig, run_load_point
from repro.util.tables import Table

EXPERIMENT_ID = "e17"
TITLE = "Threshold-calibration sensitivity"

FACTORS = (0.5, 1.0, 2.0, 3.0)
UTILIZATIONS = (0.1, 0.5, 0.9)


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "P99 latency while the derived threshold limits are stretched "
            "by a calibration factor (1.0 = raw fair-share derivation; "
            "the shipped default is 2.0)."
        ),
    )

    # Re-derive the raw (unscaled) table from the measured profile so
    # the sweep is expressed relative to the analytic baseline.
    raw_table = derive_threshold_table(
        system.profile,
        n_cores=system.n_cores,
        degrees=system.config.degrees,
        min_gain=system.config.min_gain,
    )

    p99 = {}
    table = Table(
        ["factor"] + [f"u={u}" for u in UTILIZATIONS] + ["thresholds"],
        title="P99 latency (ms) vs calibration factor",
    )
    for factor in FACTORS:
        scaled = scale_table(raw_table, factor)
        policy = AdaptivePolicy(scaled)
        row = [factor]
        values = []
        for i, u in enumerate(UTILIZATIONS):
            config = LoadPointConfig(
                rate=system.rate_for_utilization(u),
                duration=ctx.sim_duration,
                warmup=ctx.sim_warmup,
                n_cores=system.n_cores,
                seed=42 + i,
            )
            summary = run_load_point(system.oracle, policy, config)
            values.append(summary.p99_latency)
            row.append(summary.p99_latency * 1e3)
        p99[factor] = values
        row.append(scaled.describe())
        table.add_row(row)
    result.add_table(table)

    mid = UTILIZATIONS.index(0.5)
    high = len(UTILIZATIONS) - 1
    result.add_check(
        "stretching beyond the raw derivation improves mid-load P99 "
        "(factor 2.0 beats 1.0 at u=0.5)",
        p99[2.0][mid] < p99[1.0][mid],
        f"{p99[2.0][mid]*1e3:.2f} vs {p99[1.0][mid]*1e3:.2f} ms",
    )
    result.add_check(
        "over-shrinking hurts (factor 0.5 is worst at u=0.5)",
        p99[0.5][mid] >= max(p99[f][mid] for f in (1.0, 2.0)),
        ", ".join(f"{f}: {p99[f][mid]*1e3:.2f}ms" for f in FACTORS),
    )
    high_values = [p99[f][high] for f in FACTORS]
    result.add_check(
        "high-load behaviour is insensitive to the factor "
        "(max/min P99 at u=0.9 within 35%)",
        max(high_values) <= 1.35 * min(high_values),
        ", ".join(f"{v*1e3:.1f}" for v in high_values),
    )
    result.data = {
        "factors": list(FACTORS),
        "utilizations": list(UTILIZATIONS),
        "p99_ms": {str(f): [v * 1e3 for v in p99[f]] for f in FACTORS},
    }
    return result

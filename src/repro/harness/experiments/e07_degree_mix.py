"""E7 — Degree selection mix vs load (adaptive policy).

Reconstructs the paper's view inside the adaptive policy: at low load
almost every query gets the widest degree; as load rises the mix shifts
toward narrower degrees and finally to sequential execution. This is the
mechanism behind E6's envelope-tracking.
"""

from __future__ import annotations

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.util.tables import Table

EXPERIMENT_ID = "e07"
TITLE = "Adaptive degree-selection mix vs load"


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    utilizations = list(ctx.utilization_grid)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "Fraction of queries granted each parallelism degree by the "
            "adaptive policy, per load level (granted = clamped to free "
            "cores, so it can sit below the policy's request)."
        ),
    )

    summaries = [
        system.run_point(
            "adaptive",
            system.rate_for_utilization(u),
            duration=ctx.sim_duration,
            warmup=ctx.sim_warmup,
            seed=42 + i,
        )
        for i, u in enumerate(utilizations)
    ]

    all_degrees = sorted(
        {degree for summary in summaries for degree in summary.degree_histogram}
    )
    table = Table(
        ["utilization"] + [f"p={p}" for p in all_degrees] + ["mean degree"],
        title="Degree mix",
    )
    for u, summary in zip(utilizations, summaries):
        histogram = summary.degree_histogram
        table.add_row(
            [u]
            + [histogram.get(p, 0.0) for p in all_degrees]
            + [summary.mean_degree]
        )
    result.add_table(table)

    mean_degrees = [s.mean_degree for s in summaries]
    result.add_check(
        "mean granted degree decreases from the lowest to the highest load",
        mean_degrees[0] > mean_degrees[-1],
        f"{mean_degrees[0]:.2f} -> {mean_degrees[-1]:.2f}",
    )
    widest = all_degrees[-1]
    wide_fraction = [s.degree_histogram.get(widest, 0.0) for s in summaries]
    result.add_check(
        "widest-degree usage shrinks with load",
        wide_fraction[0] > wide_fraction[-1],
        f"{wide_fraction[0]:.2f} -> {wide_fraction[-1]:.2f}",
    )
    sequential_fraction = [s.degree_histogram.get(1, 0.0) for s in summaries]
    result.add_check(
        "sequential execution dominates at the highest load (> 50%)",
        sequential_fraction[-1] > 0.5,
        f"fraction {sequential_fraction[-1]:.2f}",
    )
    result.data = {
        "utilizations": utilizations,
        "mean_degree": mean_degrees,
        "degree_histograms": [
            {str(k): v for k, v in s.degree_histogram.items()} for s in summaries
        ],
    }
    return result

"""E10 — Extensions ablation: predictive, incremental, oracle.

Beyond the paper: per-query length awareness. The oracle (true length)
upper-bounds it, the predictor approximates it from pre-execution
features, and incremental (few-to-many) gets most of the benefit with no
prediction at all. The interesting metric is CPU spent per query at
equal tail latency — length-aware policies stop wasting parallelism on
short queries.
"""

from __future__ import annotations

import numpy as np

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.policies.predictor import QueryLatencyPredictor
from repro.util.tables import Table

EXPERIMENT_ID = "e10"
TITLE = "Extensions: predictive / incremental / oracle vs adaptive"

POLICIES = ("adaptive", "predictive", "incremental", "oracle")


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    utilizations = [u for u in ctx.utilization_grid if 0.05 <= u <= 0.7] or list(
        ctx.utilization_grid
    )
    comparison = system.sweep(
        POLICIES, utilizations, duration=ctx.sim_duration, warmup=ctx.sim_warmup
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "P99 latency and mean granted degree across loads for the "
            "length-aware policy variants; plus the latency predictor's "
            "accuracy."
        ),
    )

    names = [system.policy(p).name for p in POLICIES]
    p99 = {name: comparison.p99(name) for name in names}
    table = Table(["utilization"] + names, title="P99 latency (ms)")
    for i, u in enumerate(utilizations):
        table.add_row([u] + [p99[name][i] * 1e3 for name in names])
    result.add_table(table)

    degree_table = Table(["utilization"] + names, title="Mean granted degree")
    for i, u in enumerate(utilizations):
        degree_table.add_row(
            [u]
            + [comparison.summaries[name][i].mean_degree for name in names]
        )
    result.add_table(degree_table)

    # Predictor accuracy on the held-out half of the profiling sample.
    t1 = system.cost_table.sequential_latencies()
    n_train = max(2, int(system.cost_table.n_queries
                         * system.config.predictor_train_fraction))
    holdout_queries = system.cost_table.queries[n_train:]
    holdout_actual = t1[n_train:]
    predicted = system.predictor.predict_many(system.workbench.engine, holdout_queries)
    r2 = QueryLatencyPredictor.r_squared(predicted, holdout_actual)
    cutoff = system.long_query_cutoff
    actual_long = holdout_actual >= cutoff
    predicted_long = predicted >= cutoff
    recall = float(predicted_long[actual_long].mean()) if actual_long.any() else 1.0
    precision = (
        float(actual_long[predicted_long].mean()) if predicted_long.any() else 1.0
    )
    predictor_table = Table(["metric", "value"], title="Latency predictor (holdout)")
    predictor_table.add_row(["R^2 (log space)", r2])
    predictor_table.add_row(["long-query recall", recall])
    predictor_table.add_row(["long-query precision", precision])
    result.add_table(predictor_table)

    mean_deg = {
        name: np.asarray(
            [comparison.summaries[name][i].mean_degree for i in range(len(utilizations))]
        )
        for name in names
    }
    result.add_check(
        "length-aware policies use fewer cores on average than plain adaptive",
        bool(
            np.all(mean_deg["oracle"] <= mean_deg["adaptive"] + 1e-9)
            and np.all(mean_deg["predictive"] <= mean_deg["adaptive"] + 1e-9)
        ),
    )
    result.add_check(
        "oracle's P99 stays in adaptive's band (<= 25% above) while "
        "spending less CPU",
        bool(np.all(p99["oracle"] <= 1.25 * p99["adaptive"])),
    )
    result.add_check(
        "predictor is informative (R^2 >= 0.4, long-query recall >= 0.6)",
        r2 >= 0.4 and recall >= 0.6,
        f"R^2 {r2:.2f}, recall {recall:.2f}",
    )
    result.data = {
        "utilizations": utilizations,
        "p99_ms": {n: (p99[n] * 1e3).tolist() for n in names},
        "mean_degree": {n: mean_deg[n].tolist() for n in names},
        "predictor": {"r2": r2, "recall": recall, "precision": precision},
    }
    return result

"""E3 — Speedup vs parallelism degree, by query length class.

Reconstructs the paper's speedup figure: intra-query parallelism is
sublinear everywhere, and *long* queries (the latency tail, which is
what the SLO cares about) parallelize far better than short ones. This
asymmetry is the paper's central mechanism — parallelism buys tail
latency at low load but costs throughput via the efficiency loss.
"""

from __future__ import annotations

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.profiles.speedup import ParametricSpeedup
from repro.util.tables import Table

EXPERIMENT_ID = "e03"
TITLE = "Speedup vs degree of parallelism by query length class"


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    profile = system.profile
    degrees = list(profile.degrees)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "Mean latency speedup t(1)/t(p) per sequential-time tertile "
            "(short/medium/long), measured on the engine in virtual time."
        ),
    )

    table = Table(["class"] + [f"p={p}" for p in degrees], title="Speedup S(p)")
    for cls in range(profile.n_classes):
        table.add_row(
            [profile.class_name(cls)] + [profile.speedup(p, cls) for p in degrees]
        )
    table.add_row(["overall"] + [profile.speedup(p) for p in degrees])
    result.add_table(table)

    fit = ParametricSpeedup.fit_profile(profile)
    fit_table = Table(["parameter", "value"], title="Amdahl+waste fit (overall)")
    fit_table.add_row(["serial fraction", fit.serial])
    fit_table.add_row(["waste per extra worker", fit.waste])
    fit_table.add_row(
        ["fit S(max degree)", fit.speedup(degrees[-1])]
    )
    result.add_table(fit_table)

    long_cls, short_cls = profile.n_classes - 1, 0
    parallel_degrees = [p for p in degrees if p > 1]
    result.add_check(
        "long queries speed up more than short at every degree > 1",
        all(
            profile.speedup(p, long_cls) > profile.speedup(p, short_cls)
            for p in parallel_degrees
        ),
    )
    result.add_check(
        "speedup is sublinear: S(p) < p for all p > 1",
        all(profile.speedup(p, cls) < p for p in parallel_degrees
            for cls in range(profile.n_classes)),
    )
    # The best degree for long queries depends on scale (a small shard
    # has too few chunks to feed 12 workers), so the claims are phrased
    # against the best measured degree rather than the widest one.
    long_curve = {p: profile.speedup(p, long_cls) for p in degrees}
    best_degree = max(long_curve, key=long_curve.get)
    result.add_check(
        "long queries gain materially (best S >= 1.8)",
        long_curve[best_degree] >= 1.8,
        f"S({best_degree}) long = {long_curve[best_degree]:.2f}",
    )
    result.add_check(
        "long queries benefit from wide parallelism (best degree >= 4)",
        best_degree >= 4,
        f"best degree {best_degree}",
    )
    rising = [p for p in degrees if p <= best_degree]
    result.add_check(
        "long-query speedup grows monotonically up to its best degree",
        all(
            long_curve[b] >= long_curve[a]
            for a, b in zip(rising, rising[1:])
        ),
    )
    result.data = {
        "degrees": degrees,
        "speedup_by_class": {
            profile.class_name(c): [profile.speedup(p, c) for p in degrees]
            for c in range(profile.n_classes)
        },
        "amdahl_fit": {"serial": fit.serial, "waste": fit.waste},
    }
    return result

"""E14 (extension) — Latency decomposition: queueing vs service.

Where does the end-to-end latency go as load rises? Sequential execution
has a flat (long) service time and a queueing component that explodes
only near saturation; the adaptive policy *spends* idle cores to shrink
the service component at low load and gives that back (reverting to
sequential service times) as queueing pressure appears. Decomposing
mean latency into queue delay + service makes that exchange visible.
"""

from __future__ import annotations

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.util.tables import Table

EXPERIMENT_ID = "e14"
TITLE = "Latency decomposition: queue delay vs service time"

POLICIES = ("sequential", "adaptive")


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    utilizations = list(ctx.utilization_grid)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "Mean latency split into queueing delay and service "
            "(execution) time per load level, for sequential vs adaptive."
        ),
    )

    rows = {}
    table = Table(
        ["utilization",
         "seq queue (ms)", "seq service (ms)",
         "ada queue (ms)", "ada service (ms)",
         "ada service cut"],
        title="Mean-latency decomposition",
    )
    for i, u in enumerate(utilizations):
        rate = system.rate_for_utilization(u)
        cells = {}
        for policy in POLICIES:
            summary = system.run_point(
                policy, rate,
                duration=ctx.sim_duration, warmup=ctx.sim_warmup, seed=42 + i,
            )
            cells[policy] = (
                summary.mean_queue_delay,
                summary.mean_latency - summary.mean_queue_delay,
            )
        rows[u] = cells
        service_cut = 1.0 - cells["adaptive"][1] / cells["sequential"][1]
        table.add_row(
            [
                u,
                cells["sequential"][0] * 1e3,
                cells["sequential"][1] * 1e3,
                cells["adaptive"][0] * 1e3,
                cells["adaptive"][1] * 1e3,
                service_cut,
            ]
        )
    result.add_table(table)

    low_u, high_u = utilizations[0], utilizations[-1]
    low_cut = 1.0 - rows[low_u]["adaptive"][1] / rows[low_u]["sequential"][1]
    high_cut = 1.0 - rows[high_u]["adaptive"][1] / rows[high_u]["sequential"][1]
    result.add_check(
        "adaptive shrinks mean service time substantially at low load "
        "(>= 25%)",
        low_cut >= 0.25,
        f"cut {low_cut*100:.0f}% at u={low_u}",
    )
    result.add_check(
        "the service-time cut fades at high load (adaptive reverts to "
        "near-sequential execution)",
        high_cut < low_cut,
        f"{low_cut*100:.0f}% -> {high_cut*100:.0f}%",
    )
    seq_queue = [rows[u]["sequential"][0] for u in utilizations]
    result.add_check(
        "sequential queueing delay grows with load",
        seq_queue[-1] > seq_queue[0],
        f"{seq_queue[0]*1e3:.3f}ms -> {seq_queue[-1]*1e3:.3f}ms",
    )
    result.data = {
        "utilizations": utilizations,
        "decomposition_ms": {
            str(u): {
                policy: [v * 1e3 for v in rows[u][policy]] for policy in POLICIES
            }
            for u in utilizations
        },
    }
    return result

"""E18 (extension) — Plan-size clamping of parallelism grants.

The baseline dispatcher grants a query the load-selected degree even
when the query's plan is tiny: a 3-chunk query granted 12 workers claims
speculative chunks with most of its gang and strands the reserved cores
for its whole (not faster) execution. Clamping the grant at the query's
useful-parallelism bound (its sequential chunk count — in deployment,
predicted from the same pre-execution features as the latency
predictor) recovers the wasted reservations: less CPU burned and lower
mean latency at every load, with equal-or-better tails.

The measured trade-off is instructive: clamping improves the *mean* and
the CPU bill at every load, but can cost some *tail* latency — wide
unclamped gangs effectively batch the machine, creating windows where
all cores free up at once, which is exactly what an arriving long query
wants; clamped traffic fragments core availability, so long queries are
granted narrower gangs. Mechanism ablations like this are why the paper
evaluates policies end-to-end against tail metrics rather than on
per-query efficiency arguments.
"""

from __future__ import annotations

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.sim.experiment import LoadPointConfig, run_load_point
from repro.util.tables import Table

EXPERIMENT_ID = "e18"
TITLE = "Plan-size clamping of parallelism grants"

UTILIZATIONS = (0.15, 0.4, 0.6)


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    policy = system.policy("adaptive")
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "The adaptive policy with and without clamping grants at each "
            "query's useful-parallelism bound (sequential chunk count)."
        ),
    )

    rows = {}
    table = Table(
        ["utilization", "variant", "mean latency (ms)", "P99 (ms)",
         "mean degree", "CPU utilization"],
        title="Grant clamping ablation",
    )
    for i, u in enumerate(UTILIZATIONS):
        for clamp in (False, True):
            config = LoadPointConfig(
                rate=system.rate_for_utilization(u),
                duration=ctx.sim_duration,
                warmup=ctx.sim_warmup,
                n_cores=system.n_cores,
                seed=42 + i,
                clamp_to_plan=clamp,
            )
            summary = run_load_point(system.oracle, policy, config)
            rows[(u, clamp)] = summary
            table.add_row(
                [
                    u,
                    "clamped" if clamp else "plain",
                    summary.mean_latency * 1e3,
                    summary.p99_latency * 1e3,
                    summary.mean_degree,
                    summary.utilization,
                ]
            )
    result.add_table(table)

    result.add_check(
        "clamping reduces mean latency at every load",
        all(
            rows[(u, True)].mean_latency <= rows[(u, False)].mean_latency + 1e-9
            for u in UTILIZATIONS
        ),
        ", ".join(
            f"u={u}: {rows[(u, False)].mean_latency*1e3:.3f}->"
            f"{rows[(u, True)].mean_latency*1e3:.3f}ms"
            for u in UTILIZATIONS
        ),
    )
    result.add_check(
        "clamping burns less CPU (lower utilization at equal offered load)",
        all(
            rows[(u, True)].utilization < rows[(u, False)].utilization
            for u in UTILIZATIONS
        ),
        ", ".join(
            f"u={u}: {rows[(u, False)].utilization:.2f}->"
            f"{rows[(u, True)].utilization:.2f}"
            for u in UTILIZATIONS
        ),
    )
    result.add_check(
        "the tail cost of fragmented core availability stays bounded "
        "(P99 within 20% of the unclamped baseline)",
        all(
            rows[(u, True)].p99_latency <= 1.20 * rows[(u, False)].p99_latency
            for u in UTILIZATIONS
        ),
        ", ".join(
            f"u={u}: {rows[(u, False)].p99_latency*1e3:.2f}->"
            f"{rows[(u, True)].p99_latency*1e3:.2f}ms"
            for u in UTILIZATIONS
        ),
    )
    result.data = {
        "utilizations": list(UTILIZATIONS),
        "mean_latency_ms": {
            f"{'clamped' if clamp else 'plain'}": [
                rows[(u, clamp)].mean_latency * 1e3 for u in UTILIZATIONS
            ]
            for clamp in (False, True)
        },
        "p99_ms": {
            f"{'clamped' if clamp else 'plain'}": [
                rows[(u, clamp)].p99_latency * 1e3 for u in UTILIZATIONS
            ]
            for clamp in (False, True)
        },
    }
    return result

"""E2 — Sequential service-time distribution.

Reconstructs the paper's query execution-time characterization: the
distribution is strongly right-skewed (the motivation for attacking tail
latency with parallelism). Reports moments, a percentile grid (the CDF
figure's data series), and the lognormal fit.
"""

from __future__ import annotations

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.util.tables import Table

EXPERIMENT_ID = "e02"
TITLE = "Sequential service-time distribution"

PERCENTILE_GRID = (1, 5, 10, 25, 50, 75, 90, 95, 99, 99.9)


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    dist = system.service_distribution
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "CDF data series and moments of sequential query execution "
            "time on the modeled ISN (virtual milliseconds)."
        ),
    )

    summary = dist.summary()
    moments = Table(["metric", "value"], title="Moments")
    for key, value in summary.items():
        moments.add_row([key, value])
    result.add_table(moments)

    cdf = Table(["percentile", "latency_ms"], title="CDF series")
    for q in PERCENTILE_GRID:
        cdf.add_row([q, dist.percentile(q) * 1e3])
    result.add_table(cdf)

    fit = dist.fit_lognormal()
    fit_table = Table(["parameter", "value"], title="Lognormal fit")
    fit_table.add_row(["mu (log-seconds)", fit.mu])
    fit_table.add_row(["sigma", fit.sigma])
    fit_table.add_row(["implied mean (ms)", fit.mean * 1e3])
    fit_table.add_row(["implied median (ms)", fit.median * 1e3])
    result.add_table(fit_table)

    result.add_check(
        "heavy tail: p99/p50 >= 5 (paper reports order-of-magnitude skew)",
        dist.tail_ratio() >= 5.0,
        f"p99/p50 = {dist.tail_ratio():.1f}",
    )
    result.add_check(
        "high variability: squared CV >= 1 (worse than exponential)",
        dist.squared_cv >= 1.0,
        f"scv = {dist.squared_cv:.2f}",
    )
    mean_ms = summary["mean_ms"]
    result.add_check(
        "milliseconds-scale mean service time",
        0.05 <= mean_ms <= 100.0,
        f"mean = {mean_ms:.2f} ms",
    )
    result.data = {"summary": summary, "lognormal": {"mu": fit.mu, "sigma": fit.sigma}}
    return result

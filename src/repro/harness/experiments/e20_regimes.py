"""E20 (extension) — Regime shifts: online control vs offline thresholds.

The paper's adaptive policy is calibrated *offline* from a stationary
profile, and the strong deployed baseline adds predictive deadline
shedding: at dispatch, a query whose queue wait plus *predicted* cost
already exceeds the deadline is dropped. That admission check makes the
offline stack nearly optimal against overload it can *price* — a
legitimate flash crowd, or a flood of queries the cost model knows are
expensive, both self-stabilize.

Its blind spot is calibration: the cost predictor underestimates the
most expensive tail queries by 50-60%, so traffic built from those
queries sails through the deadline check at its predicted (cheap) cost
and then eats the node's cores at its true cost. This experiment
subjects both stacks to exactly that — regime-based traffic
(:mod:`repro.sim.traffic`) with attack flows drawn from the predictor's
underprediction residual — and compares the offline stack against the
online one: the same threshold table steered at runtime by windowed
tail-latency/shed-rate feedback (:mod:`repro.policies.online`) plus the
anomaly-guarded degradation ladder (:mod:`repro.sim.anomaly`), which
sheds *labeled* attack classes at the front door without consulting the
cost model at all.

Four scenarios, both policies on identically seeded arrival and query
streams:

* **stationary** — flat background, no bursts. The online controller
  treats the offline calibration as its ceiling (``max_scale = 1``) and
  the guard requires an anomaly alarm *and* an SLA violation in the
  same window to escalate, so the online stack must *match* the offline
  one within noise: no regression on the traffic the paper tuned for.
* **flash crowd** — a legitimate surge past sequential saturation.
  Cost-visible overload: deadline shedding absorbs it for both stacks,
  and the guard stays out (the SLA holds). Parity expected — the point
  is that the guard distinguishes absorbable surges from attacks.
* **slow-query flood** — extra traffic drawn from the top decile of the
  underprediction residual ``t1 - predicted``. The offline deadline
  check admits these at their predicted cost; served floods finish late
  and crowd out background queries. The guard's class shedding refuses
  them at arrival, preserving background goodput.
* **query of death** — one maximally underpredicted query repeated at
  high rate; same mechanism, single-query flavor.

Per-run span traces provide the windowed view: background ("legit")
SLO attainment and goodput *during* each burst window — attack queries
are excluded from the windowed metric on both sides, so refusing attack
traffic is not itself penalized — and the measured recovery time after
the burst (time until windowed P99 is back under the SLO with no
shedding).
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.obs.registry import RunObserver
from repro.obs.spans import QueryTrace, RecordingTracer, TraceRun
from repro.policies.online import (
    OnlineAdaptivePolicy,
    OnlineControllerConfig,
    OnlineDegreeController,
)
from repro.sim.anomaly import AnomalyGuard, AnomalyGuardConfig, DegradationLevel
from repro.sim.traffic import (
    FLASH_CROWD,
    QUERY_OF_DEATH,
    SLOW_QUERY_FLOOD,
    Burst,
    ClassAwareQuerySampler,
    DiurnalProfile,
    RegimeTraffic,
    TrafficConfig,
)
from repro.util.rng import RngFactory
from repro.util.tables import Table

EXPERIMENT_ID = "e20"
TITLE = "Regime shifts: online tail-feedback control vs offline thresholds"

#: Scenario horizon as a multiple of the per-scale sim duration (regime
#: shifts need room for onset, dwell, and recovery).
HORIZON_MULTIPLE = 1.5
#: SLO budget as a multiple of the idle sequential P99 (E8/E19 convention).
SLO_MULTIPLE = 2.5
#: Baseline admission cap per core (same as E19).
QUEUE_CAP_PER_CORE = 32
#: Background load (x sequential saturation) common to all scenarios.
BACKGROUND_UTILIZATION = 0.45
#: Extra load the flash crowd adds at its plateau (x saturation) — the
#: total during the burst exceeds sequential capacity.
FLASH_UTILIZATION = 0.55
#: Extra *labeled attack* arrival rate (x saturation). Attack queries
#: draw from the underpredicted expensive tail, so their true work is
#: several times what the admission check prices them at.
FLOOD_UTILIZATION = 0.30
DEATH_UTILIZATION = 0.25

OFFLINE = "adaptive (offline)"
ONLINE = "online-adaptive"

ATTACK_SCENARIOS = ("slow-query flood", "query of death")
PARITY_TOLERANCE = 0.10


def _scenarios(saturation: float, horizon_s: float) -> Dict[str, TrafficConfig]:
    base = BACKGROUND_UTILIZATION * saturation
    return {
        "stationary": TrafficConfig(
            background=DiurnalProfile(base_rate=1.2 * base, amplitude=0.0),
        ),
        "flash crowd": TrafficConfig(
            background=DiurnalProfile(
                base_rate=base, amplitude=0.15, period_s=horizon_s
            ),
            bursts=(
                Burst(
                    kind=FLASH_CROWD,
                    start_s=0.30 * horizon_s,
                    duration_s=0.25 * horizon_s,
                    peak_rate=FLASH_UTILIZATION * saturation,
                ),
            ),
        ),
        "slow-query flood": TrafficConfig(
            background=DiurnalProfile(base_rate=base, amplitude=0.0),
            bursts=(
                Burst(
                    kind=SLOW_QUERY_FLOOD,
                    start_s=0.30 * horizon_s,
                    duration_s=0.25 * horizon_s,
                    peak_rate=FLOOD_UTILIZATION * saturation,
                ),
            ),
        ),
        "query of death": TrafficConfig(
            background=DiurnalProfile(base_rate=base, amplitude=0.0),
            bursts=(
                Burst(
                    kind=QUERY_OF_DEATH,
                    start_s=0.30 * horizon_s,
                    duration_s=0.20 * horizon_s,
                    peak_rate=DEATH_UTILIZATION * saturation,
                ),
            ),
        ),
    }


def _window_stats(
    traces: List[QueryTrace],
    start_s: float,
    end_s: float,
    slo_s: float,
    exclude: FrozenSet[int] = frozenset(),
) -> Dict[str, float]:
    """Demand / SLO attainment / goodput for arrivals in [start, end).

    ``exclude`` drops query indices (the attack population) from the
    windowed accounting so both policies are judged on what they did
    for *legitimate* traffic during the burst.
    """
    demand = [
        t
        for t in traces
        if start_s <= t.arrival_s < end_s and t.query_index not in exclude
    ]
    in_slo = sum(1 for t in demand if t.completed and t.latency_s <= slo_s)
    n_shed = sum(1 for t in demand if t.shed_reason is not None)
    n = len(demand)
    return {
        "demand": float(n),
        "attainment": in_slo / n if n else float("nan"),
        "goodput": in_slo / (end_s - start_s),
        "shed": float(n_shed),
    }


def _recovery_s(
    traces: List[QueryTrace],
    burst_end_s: float,
    horizon_s: float,
    slo_s: float,
    bucket_s: float,
) -> float:
    """Time after ``burst_end_s`` until the tail is back under the SLO.

    Buckets arrivals after the burst into ``bucket_s`` windows; the node
    has recovered at the start of the first of two consecutive buckets
    with no shedding and bucket P99 <= SLO (empty buckets pass — an
    idle node is a recovered node). Returns the remaining horizon when
    recovery never happens.
    """
    n_buckets = max(1, int(math.floor((horizon_s - burst_end_s) / bucket_s)))
    ok: List[bool] = []
    for k in range(n_buckets):
        lo = burst_end_s + k * bucket_s
        hi = lo + bucket_s
        window = [t for t in traces if lo <= t.arrival_s < hi]
        shed = any(t.shed_reason is not None for t in window)
        latencies = [t.latency_s for t in window if t.completed]
        tail_ok = (
            not latencies
            or float(np.percentile(np.asarray(latencies), 99)) <= slo_s
        )
        ok.append(not shed and tail_ok)
    for k in range(len(ok) - 1):
        if ok[k] and ok[k + 1]:
            return k * bucket_s
    return horizon_s - burst_end_s


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "Offline-calibrated thresholds with predictive deadline "
            "shedding vs the online-adaptive stack (tail-feedback "
            "threshold scaling + anomaly-guarded degradation) under "
            "four traffic regimes: stationary, a legitimate flash "
            "crowd, a slow-query flood, and a query-of-death "
            "repetition. Attack flows draw from the cost predictor's "
            "underprediction residual — traffic the offline admission "
            "check cannot price. Both policies see identically seeded "
            "arrival and query streams; burst-window metrics count "
            "legitimate traffic only."
        ),
    )

    saturation = system.saturation_rate
    horizon_s = HORIZON_MULTIPLE * ctx.sim_duration
    warmup_s = horizon_s / 10.0
    slo_s = SLO_MULTIPLE * float(system.service_distribution.percentile(99))
    cap = QUEUE_CAP_PER_CORE * system.n_cores
    window_s = horizon_s / 40.0
    t1 = system.cost_table.sequential_latencies()
    predicted = system.oracle.predicted
    # The attack population (and its exclusion set for windowed metrics)
    # is a deterministic function of the profile: top residual decile.
    reference_sampler = ClassAwareQuerySampler(
        t1, RngFactory(0), predicted_latencies=predicted
    )
    attack_population = frozenset(
        int(i) for i in reference_sampler.attack_indices
    ) | {reference_sampler.death_index}

    controller_config = OnlineControllerConfig(
        target_p99_s=slo_s,
        window_s=window_s,
        step=0.3,
        deadband=0.1,
        min_scale=0.25,
        # The offline calibration is the ceiling: the controller only
        # tightens under distress and relaxes back to scale 1, so on
        # stationary traffic it cannot do worse than the paper's policy.
        max_scale=1.0,
        shed_rate_high=0.02,
        min_samples=5,
    )
    guard_config = AnomalyGuardConfig(
        slo_s=slo_s,
        window_s=window_s,
        sla_epsilon=0.05,
        degraded_degree_cap=max(2, system.threshold_table.max_degree // 4),
        shedding_queue_cap=4 * system.n_cores,
        shed_classes=(SLOW_QUERY_FLOOD, QUERY_OF_DEATH),
        recovery_windows=2,
    )

    # One tracer for the burst scenarios: the CLI's --trace tracer when
    # it is a RecordingTracer (so spans export as usual), a local one
    # otherwise — E20 needs recorded spans for its windowed statistics.
    # Stationary runs go untraced; their checks use run summaries and
    # the guard's own transition log.
    tracer = (
        ctx.tracer
        if isinstance(ctx.tracer, RecordingTracer)
        else RecordingTracer()
    )

    def run_one(
        scenario: TrafficConfig, seed: int, online: bool, traced: bool
    ) -> Tuple[object, Optional[TraceRun], Optional[OnlineDegreeController],
               Optional[AnomalyGuard]]:
        streams = RngFactory(seed)
        traffic = RegimeTraffic(scenario, streams, horizon_s=horizon_s)
        sampler = ClassAwareQuerySampler(
            t1, streams, predicted_latencies=predicted
        )
        controller: Optional[OnlineDegreeController] = None
        guard: Optional[AnomalyGuard] = None
        run_tracer = tracer if traced else None
        if online:
            policy: object = OnlineAdaptivePolicy(system.threshold_table)
            controller = OnlineDegreeController(
                policy, controller_config, tracer=run_tracer
            )
            guard = AnomalyGuard(guard_config, policy=policy, tracer=run_tracer)
            controllers: Tuple[object, ...] = (controller, guard)
        else:
            policy = system.policy("adaptive")
            controllers = ()
        n_runs_before = len(tracer.runs)
        summary = system.run_point(
            policy,
            scenario.background.base_rate,
            duration=horizon_s,
            warmup=warmup_s,
            seed=seed,
            arrivals=traffic,
            deadline=slo_s,
            max_queue_length=cap,
            slo=slo_s,
            observer=RunObserver(tracer=tracer) if traced else None,
            controllers=controllers,
            query_sampler=sampler,
        )
        run_bucket = tracer.runs[n_runs_before] if traced else None
        return summary, run_bucket, controller, guard

    scenarios = _scenarios(saturation, horizon_s)
    summaries: Dict[Tuple[str, str], object] = {}
    run_buckets: Dict[Tuple[str, str], TraceRun] = {}
    burst_stats: Dict[Tuple[str, str], List[Dict[str, float]]] = {}
    recoveries: Dict[Tuple[str, str], List[float]] = {}
    guards: Dict[Tuple[str, str], AnomalyGuard] = {}
    class_shed_counts: Dict[Tuple[str, str], int] = {}

    main_table = Table(
        ["scenario", "policy", "goodput (qps)", "SLO attainment",
         "shed rate", "P99 (ms)"],
        title=f"Regime-shift comparison (SLO = {slo_s*1e3:.1f} ms, "
              f"horizon {horizon_s:.0f} s)",
    )
    burst_table = Table(
        ["scenario", "burst", "policy", "legit attainment in burst",
         "legit goodput in burst (qps)", "legit shed in burst",
         "recovery (s)"],
        title="Per-burst windows (legitimate traffic only) and recovery time",
    )

    for i, (label, scenario) in enumerate(scenarios.items()):
        seed = 200 + i
        traced = bool(scenario.bursts)
        exclude = attack_population if label in ATTACK_SCENARIOS else frozenset()
        for policy_label, online in ((OFFLINE, False), (ONLINE, True)):
            summary, run_bucket, controller, guard = run_one(
                scenario, seed, online, traced
            )
            key = (label, policy_label)
            summaries[key] = summary
            if guard is not None:
                guards[key] = guard
            main_table.add_row(
                [label, policy_label, summary.goodput,
                 summary.slo_attainment, summary.shed_rate,
                 summary.p99_latency * 1e3]
            )
            if run_bucket is None:
                continue
            run_buckets[key] = run_bucket
            class_shed_counts[key] = sum(
                t.shed_reason == "class" for t in run_bucket.traces
            )
            stats: List[Dict[str, float]] = []
            recs: List[float] = []
            for burst in scenario.bursts:
                stat = _window_stats(
                    run_bucket.traces, burst.start_s, burst.end_s, slo_s,
                    exclude=exclude,
                )
                recovery = _recovery_s(
                    run_bucket.traces, burst.end_s, horizon_s, slo_s,
                    bucket_s=window_s,
                )
                stats.append(stat)
                recs.append(recovery)
                burst_table.add_row(
                    [label, burst.kind, policy_label, stat["attainment"],
                     stat["goodput"], int(stat["shed"]), recovery]
                )
            burst_stats[key] = stats
            recoveries[key] = recs

    result.add_table(main_table)
    result.add_table(burst_table)

    # ---------------------------------------------------------------
    # Shape checks.
    # ---------------------------------------------------------------
    st_off = summaries[("stationary", OFFLINE)]
    st_on = summaries[("stationary", ONLINE)]
    parity = abs(st_on.goodput - st_off.goodput) <= max(
        PARITY_TOLERANCE * st_off.goodput, 1.0
    )
    result.add_check(
        "stationary traffic: online matches offline within noise "
        "(goodput within 10%)",
        parity,
        f"{st_on.goodput:.1f} vs {st_off.goodput:.1f} qps",
    )

    flash_on = burst_stats[("flash crowd", ONLINE)][0]
    flash_off = burst_stats[("flash crowd", OFFLINE)][0]
    flash_parity = abs(flash_on["goodput"] - flash_off["goodput"]) <= max(
        PARITY_TOLERANCE * flash_off["goodput"], 1.0
    )
    result.add_check(
        "flash crowd (legitimate, cost-visible surge): online matches "
        "offline within 10% goodput in the burst window",
        flash_parity,
        f"goodput {flash_on['goodput']:.1f} vs {flash_off['goodput']:.1f} "
        f"qps, attainment {flash_on['attainment']:.3f} vs "
        f"{flash_off['attainment']:.3f}",
    )

    for label in ATTACK_SCENARIOS:
        on = burst_stats[(label, ONLINE)][0]
        off = burst_stats[(label, OFFLINE)][0]
        better = (
            on["attainment"] > off["attainment"]
            and on["goodput"] > off["goodput"]
        )
        result.add_check(
            f"{label}: online beats offline for legitimate traffic in the "
            "burst window (SLO attainment and goodput)",
            better,
            f"attainment {on['attainment']:.3f} vs {off['attainment']:.3f}, "
            f"goodput {on['goodput']:.1f} vs {off['goodput']:.1f} qps",
        )

    recovery_ok = True
    recovery_details: List[str] = []
    for label in ATTACK_SCENARIOS:
        rec_on = recoveries[(label, ONLINE)][0]
        rec_off = recoveries[(label, OFFLINE)][0]
        recovery_ok = recovery_ok and rec_on <= rec_off + window_s
        recovery_details.append(f"{label}: {rec_on:.2f} vs {rec_off:.2f} s")
    result.add_check(
        "online recovers from attack bursts at least as fast as offline "
        "(within one control window)",
        recovery_ok,
        "; ".join(recovery_details),
    )

    guard_engaged = all(
        any(level >= DegradationLevel.SHEDDING
            for _, level in guards[(label, ONLINE)].transitions)
        and class_shed_counts.get((label, ONLINE), 0) > 0
        for label in ATTACK_SCENARIOS
    )
    result.add_check(
        "the anomaly guard escalated to class shedding under both attacks "
        "(labeled attack traffic refused at arrival)",
        guard_engaged,
        ", ".join(
            f"{label}: {len(guards[(label, ONLINE)].transitions)} "
            f"transitions, {class_shed_counts.get((label, ONLINE), 0)} "
            "class sheds"
            for label in ATTACK_SCENARIOS
        ),
    )

    quiet_ok = not guards[("stationary", ONLINE)].transitions and not (
        guards[("flash crowd", ONLINE)].transitions
    )
    result.add_check(
        "the guard never degrades on stationary traffic or the legitimate "
        "flash crowd (no false-positive escalation)",
        quiet_ok,
        f"stationary: {guards[('stationary', ONLINE)].transitions}, "
        f"flash crowd: {guards[('flash crowd', ONLINE)].transitions}",
    )

    result.data = {
        "slo_ms": slo_s * 1e3,
        "horizon_s": horizon_s,
        "window_s": window_s,
        "saturation_qps": saturation,
        "attack_population_size": len(attack_population),
        "goodput_qps": {
            f"{s}/{p}": summaries[(s, p)].goodput for s, p in summaries
        },
        "slo_attainment": {
            f"{s}/{p}": summaries[(s, p)].slo_attainment for s, p in summaries
        },
        "shed_rate": {
            f"{s}/{p}": summaries[(s, p)].shed_rate for s, p in summaries
        },
        "burst_legit_attainment": {
            f"{s}/{p}": [b["attainment"] for b in stats]
            for (s, p), stats in burst_stats.items()
        },
        "burst_legit_goodput": {
            f"{s}/{p}": [b["goodput"] for b in stats]
            for (s, p), stats in burst_stats.items()
        },
        "recovery_s": {f"{s}/{p}": r for (s, p), r in recoveries.items()},
        "class_sheds": {
            f"{s}/{p}": c for (s, p), c in class_shed_counts.items()
        },
        "guard_transitions": {
            f"{s}/{p}": [
                [when, int(level)] for when, level in guard.transitions
            ]
            for (s, p), guard in guards.items()
        },
    }
    return result

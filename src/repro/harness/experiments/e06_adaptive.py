"""E6 — Adaptive vs fixed parallelism (the headline figure).

Reconstructs the paper's main result: the load-adaptive policy tracks
the *lower envelope* of all the fixed-degree curves — it matches wide
parallelism's tail-latency cuts at low load and sequential execution's
throughput at high load, with no reconfiguration.
"""

from __future__ import annotations

import numpy as np

from repro.harness.context import ExperimentContext
from repro.harness.result import ExperimentResult
from repro.util.ascii_chart import line_chart
from repro.util.tables import Table

EXPERIMENT_ID = "e06"
TITLE = "Adaptive parallelism vs fixed degrees (headline)"

POLICIES = ("sequential", "fixed-2", "fixed-4", "fixed-8", "adaptive")
FIXED = ("sequential", "fixed-2", "fixed-4", "fixed-8")


def run(ctx: ExperimentContext) -> ExperimentResult:
    system = ctx.system
    utilizations = list(ctx.utilization_grid)
    comparison = system.sweep(
        POLICIES, utilizations, duration=ctx.sim_duration, warmup=ctx.sim_warmup
    )
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        description=(
            "P99 latency vs load for the adaptive policy against every "
            "fixed degree, plus the adaptive policy's regret against the "
            "pointwise-best fixed configuration."
        ),
    )

    names = [system.policy(p).name for p in POLICIES]
    p99 = {name: comparison.p99(name) for name in names}
    envelope = comparison.envelope_p99(list(FIXED))
    regret = comparison.regret_vs_envelope("adaptive", list(FIXED))

    table = Table(
        ["utilization"] + names + ["best-fixed", "adaptive regret"],
        title="P99 latency (ms) and adaptive regret",
    )
    for i, u in enumerate(utilizations):
        row = [u] + [p99[name][i] * 1e3 for name in names]
        row.append(envelope[i] * 1e3)
        row.append(regret[i])
        table.add_row(row)
    result.add_table(table)

    gain_vs_sequential = 1.0 - p99["adaptive"] / p99["sequential"]
    result.add_chart(
        line_chart(
            utilizations,
            {name: (p99[name] * 1e3).tolist() for name in names},
            log_y=True,
            title="P99 latency vs load (log scale)",
            x_label="utilization",
            y_label="p99 ms",
        )
    )

    gain_table = Table(
        ["utilization", "P99 reduction vs sequential"],
        title="Adaptive tail-latency gain",
    )
    for u, g in zip(utilizations, gain_vs_sequential):
        gain_table.add_row([u, g])
    result.add_table(gain_table)

    low, high = 0, len(utilizations) - 1
    result.add_check(
        "adaptive cuts P99 substantially at low load (>= 30% vs sequential)",
        gain_vs_sequential[low] >= 0.30,
        f"reduction {gain_vs_sequential[low]*100:.0f}% at u={utilizations[low]}",
    )
    result.add_check(
        "adaptive stays close to sequential at the highest load (<= 15% worse)",
        p99["adaptive"][high] <= 1.15 * p99["sequential"][high],
        f"adaptive {p99['adaptive'][high]*1e3:.1f}ms vs sequential "
        f"{p99['sequential'][high]*1e3:.1f}ms",
    )
    result.add_check(
        "adaptive tracks the fixed-policy envelope (mean regret <= 30%)",
        float(np.mean(regret)) <= 0.30,
        f"mean regret {float(np.mean(regret))*100:.0f}%",
    )
    result.add_check(
        "adaptive never blows up the way saturated fixed policies do "
        "(max P99 <= 2x sequential's max)",
        float(p99["adaptive"].max()) <= 2.0 * float(p99["sequential"].max()),
    )
    result.data = {
        "utilizations": utilizations,
        "p99_ms": {n: (p99[n] * 1e3).tolist() for n in names},
        "envelope_ms": (envelope * 1e3).tolist(),
        "adaptive_regret": regret.tolist(),
        "gain_vs_sequential": gain_vs_sequential.tolist(),
        "threshold_table": system.threshold_table.describe(),
    }
    return result

"""Experiment registry and runner."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError
from repro.harness.context import ExperimentContext
from repro.harness.experiments import (
    e01_workload,
    e02_service_time,
    e03_speedup,
    e04_waste,
    e05_fixed_load,
    e06_adaptive,
    e07_degree_mix,
    e08_capacity,
    e09_bursty,
    e10_extensions,
    e11_validation,
    e12_cluster,
    e13_ablation,
    e14_decomposition,
    e15_workload_mix,
    e16_topical,
    e17_thresholds,
    e18_plan_clamp,
    e19_overload,
    e20_regimes,
)
from repro.harness.result import ExperimentResult

ExperimentRunner = Callable[[ExperimentContext], ExperimentResult]

_MODULES = (
    e01_workload,
    e02_service_time,
    e03_speedup,
    e04_waste,
    e05_fixed_load,
    e06_adaptive,
    e07_degree_mix,
    e08_capacity,
    e09_bursty,
    e10_extensions,
    e11_validation,
    e12_cluster,
    e13_ablation,
    e14_decomposition,
    e15_workload_mix,
    e16_topical,
    e17_thresholds,
    e18_plan_clamp,
    e19_overload,
    e20_regimes,
)

EXPERIMENTS: Dict[str, ExperimentRunner] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

TITLES: Dict[str, str] = {module.EXPERIMENT_ID: module.TITLE for module in _MODULES}


def get_experiment(experiment_id: str) -> ExperimentRunner:
    """Look up an experiment runner by id (e.g. ``"e06"``)."""
    try:
        return EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(
    experiment_id: str, ctx: Optional[ExperimentContext] = None
) -> ExperimentResult:
    """Run one experiment, creating a default context if none is given."""
    runner = get_experiment(experiment_id)
    return runner(ctx if ctx is not None else ExperimentContext())

"""Experiment harness: regenerates every table/figure of the evaluation.

Each experiment module under :mod:`repro.harness.experiments` exposes
``run(ctx) -> ExperimentResult``; the registry maps experiment ids
(``e01`` … ``e11``) to them. ``python -m repro <id>`` runs one from the
command line.
"""

from repro.harness.context import ExperimentContext, Scale
from repro.harness.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.harness.result import CheckOutcome, ExperimentResult

__all__ = [
    "ExperimentContext",
    "Scale",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
    "CheckOutcome",
    "ExperimentResult",
]

"""Markdown report generation from saved experiment results.

``python -m repro --all --json-dir out/`` leaves one JSON file per
experiment; :func:`generate_report` folds a directory of those into a
single self-contained markdown report (tables + check status), so a run
can be archived or diffed without re-simulating.

Also exposed through the CLI: ``python -m repro --all --json-dir out/
--report report.md``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ConfigurationError
from repro.util.serde import load_json


def _render_manifest_md(manifest: Dict) -> List[str]:
    """Provenance block from a run manifest (see repro.obs.export)."""
    lines = ["**Provenance**", ""]
    for key in ("seed", "scale", "config_hash", "git_rev", "traced"):
        if manifest.get(key) is not None:
            lines.append(f"- {key}: `{manifest[key]}`")
    experiments = manifest.get("experiments")
    if experiments:
        lines.append(f"- experiments: {', '.join(experiments)}")
    lines.append("")
    return lines


def _render_table_md(table: Dict) -> List[str]:
    """Render one serialized Table as markdown."""
    lines: List[str] = []
    if table.get("title"):
        lines.append(f"**{table['title']}**")
        lines.append("")
    columns = table["columns"]
    lines.append("| " + " | ".join(columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in table["rows"]:
        lines.append("| " + " | ".join(str(row[c]) for c in columns) + " |")
    lines.append("")
    return lines


def _render_experiment_md(payload: Dict) -> List[str]:
    lines = [f"## {payload['experiment_id'].upper()} — {payload['title']}", ""]
    if payload.get("description"):
        lines.append(payload["description"])
        lines.append("")
    for table in payload.get("tables", []):
        lines.extend(_render_table_md(table))
    for chart in payload.get("charts", []):
        lines.append("```text")
        lines.append(chart)
        lines.append("```")
        lines.append("")
    checks = payload.get("checks", [])
    if checks:
        lines.append("**Shape checks**")
        lines.append("")
        for check in checks:
            status = "✅" if check["passed"] else "❌"
            detail = f" — {check['detail']}" if check.get("detail") else ""
            lines.append(f"- {status} {check['name']}{detail}")
        lines.append("")
    return lines


def load_results_dir(results_dir: Union[str, Path]) -> List[Dict]:
    """Load every ``e*.json`` result in a directory, sorted by id."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise ConfigurationError(f"{results_dir} is not a directory")
    payloads = []
    for path in sorted(results_dir.glob("e*.json")):
        payload = load_json(path)
        if not isinstance(payload, dict) or "experiment_id" not in payload:
            raise ConfigurationError(f"{path} is not an experiment result")
        payloads.append(payload)
    if not payloads:
        raise ConfigurationError(f"no experiment results found in {results_dir}")
    return payloads


def generate_report(
    results_dir: Union[str, Path],
    output: Optional[Union[str, Path]] = None,
    title: str = "Reproduction report — Adaptive Parallelism for Web Search",
) -> str:
    """Build the markdown report; optionally write it to ``output``."""
    payloads = load_results_dir(results_dir)
    total_checks = sum(len(p.get("checks", [])) for p in payloads)
    failed = [
        (p["experiment_id"], c["name"])
        for p in payloads
        for c in p.get("checks", [])
        if not c["passed"]
    ]

    lines: List[str] = [f"# {title}", ""]
    lines.append(
        f"{len(payloads)} experiments, {total_checks} shape checks, "
        f"{total_checks - len(failed)} passed / {len(failed)} failed."
    )
    lines.append("")
    manifest_path = Path(results_dir) / "manifest.json"
    if manifest_path.is_file():
        manifest = load_json(manifest_path)
        if isinstance(manifest, dict):
            lines.extend(_render_manifest_md(manifest))
    if failed:
        lines.append("**Failed checks:**")
        lines.append("")
        for experiment_id, name in failed:
            lines.append(f"- {experiment_id}: {name}")
        lines.append("")
    lines.append("---")
    lines.append("")
    for payload in payloads:
        lines.extend(_render_experiment_md(payload))

    text = "\n".join(lines)
    if output is not None:
        output = Path(output)
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(text, encoding="utf-8")
    return text

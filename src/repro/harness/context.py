"""Shared experiment context: one profiled system per scale.

Building the reference shard and measuring the cost table takes tens of
seconds; every experiment shares one cached
:class:`~repro.core.controller.AdaptiveSearchSystem` per scale. The
``REPRO_SCALE`` environment variable (``small`` / ``reference``)
selects the scale globally, so CI can run the full harness quickly while
full runs use the paper-comparable configuration.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.controller import AdaptiveSearchSystem, SystemConfig
from repro.errors import ConfigurationError
from repro.obs.spans import Tracer
from repro.workloads.workbench import WorkbenchConfig, cached_workbench


class Scale(enum.Enum):
    """Experiment scale presets."""

    SMALL = "small"
    REFERENCE = "reference"

    @staticmethod
    def from_env(default: "Scale" = None) -> "Scale":
        raw = os.environ.get("REPRO_SCALE")
        if raw is None:
            return default if default is not None else Scale.REFERENCE
        try:
            return Scale(raw.lower())
        except ValueError:
            raise ConfigurationError(
                f"REPRO_SCALE must be 'small' or 'reference', got {raw!r}"
            ) from None


@dataclass(frozen=True)
class _ScaleParams:
    """Per-scale knobs for experiment sizing."""

    n_profile_queries: int
    sim_duration: float
    sim_warmup: float
    utilization_grid: tuple
    capacity_duration: float

    @staticmethod
    def for_scale(scale: Scale) -> "_ScaleParams":
        if scale is Scale.SMALL:
            return _ScaleParams(
                n_profile_queries=300,
                sim_duration=4.0,
                sim_warmup=1.0,
                utilization_grid=(0.1, 0.3, 0.5, 0.7),
                capacity_duration=3.0,
            )
        return _ScaleParams(
            n_profile_queries=1_200,
            sim_duration=15.0,
            sim_warmup=3.0,
            utilization_grid=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
            capacity_duration=10.0,
        )


class ExperimentContext:
    """Lazily built, cached per-scale experiment state."""

    _SYSTEMS: Dict[Scale, AdaptiveSearchSystem] = {}

    def __init__(
        self,
        scale: Optional[Scale] = None,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.scale = scale if scale is not None else Scale.from_env()
        self.seed = seed
        self.params = _ScaleParams.for_scale(self.scale)
        #: Observability sink installed on the (shared) system while this
        #: context is the one driving it; None = untraced (the default).
        self.tracer = tracer

    def workbench_config(self) -> WorkbenchConfig:
        if self.scale is Scale.SMALL:
            return WorkbenchConfig.small(self.seed)
        return WorkbenchConfig.reference(self.seed)

    @property
    def system(self) -> AdaptiveSearchSystem:
        """The profiled system for this scale (built once per process)."""
        cached = self._SYSTEMS.get(self.scale)
        if cached is None:
            workbench = cached_workbench(self.workbench_config())
            cached = AdaptiveSearchSystem.from_workbench(
                workbench,
                SystemConfig(n_queries=self.params.n_profile_queries, seed=self.seed),
            )
            self._SYSTEMS[self.scale] = cached
        # The system instance is shared across contexts (cached per
        # scale); the most recent context's tracer wins, and the common
        # untraced case keeps it cleared.
        cached.tracer = self.tracer
        return cached

    # Convenience pass-throughs used by most experiments -------------

    @property
    def sim_duration(self) -> float:
        return self.params.sim_duration

    @property
    def sim_warmup(self) -> float:
        return self.params.sim_warmup

    @property
    def utilization_grid(self) -> tuple:
        return self.params.utilization_grid

    def __repr__(self) -> str:
        return f"ExperimentContext(scale={self.scale.value}, seed={self.seed})"

"""Speedup and efficiency profiles.

:class:`SpeedupProfile` summarizes a :class:`QueryCostTable` into the two
curves the adaptive policy reasons about:

* ``speedup(p)`` — how much faster a query finishes with ``p`` workers
  (optionally per query-length class: long queries parallelize far
  better than short ones);
* ``work_inflation(p)`` — how much *total CPU* a degree-``p`` execution
  consumes relative to sequential. This is the throughput tax of
  parallelism: an ISN whose queries all run at degree ``p`` saturates at
  ``1 / work_inflation(p)`` times the sequential saturation rate.

:class:`ParametricSpeedup` is a closed-form Amdahl-plus-waste model
fitted to the measured curve; the analytic threshold derivation and the
pure-simulation experiments use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ProfileError
from repro.profiles.measurement import QueryCostTable
from repro.util.validation import require, require_int_in_range

CLASS_NAMES = ("short", "medium", "long")


class SpeedupProfile:
    """Measured speedup/efficiency summary of a query population."""

    def __init__(self, table: QueryCostTable, n_classes: int = 3) -> None:
        require_int_in_range(n_classes, "n_classes", low=1)
        if table.n_queries < n_classes:
            raise ProfileError(
                f"need at least {n_classes} queries to build {n_classes} classes"
            )
        self.table = table
        self.degrees = table.degrees
        self.n_classes = n_classes

        t1 = table.sequential_latencies()
        # Class boundaries at equal-population quantiles of t(1).
        edges = np.percentile(t1, np.linspace(0, 100, n_classes + 1)[1:-1])
        self.class_edges = np.asarray(edges, dtype=np.float64)
        self.class_of_query = np.digitize(t1, self.class_edges)

        # mean_speedup[c][p] over queries of class c; aggregate work
        # inflation uses CPU-time sums (capacity is about total work).
        self._mean_speedup: List[Dict[int, float]] = []
        for cls in range(n_classes):
            mask = self.class_of_query == cls
            per_degree = {}
            for p in self.degrees:
                per_degree[p] = float(table.speedups(p)[mask].mean())
            self._mean_speedup.append(per_degree)
        self._overall_speedup = {
            p: float(table.speedups(p).mean()) for p in self.degrees
        }
        self._work_inflation = {
            p: table.mean_work_inflation(p) for p in self.degrees
        }

    def class_name(self, cls: int) -> str:
        if self.n_classes == 3:
            return CLASS_NAMES[cls]
        return f"class{cls}"

    def classify(self, sequential_latency: float) -> int:
        """Class index of a query given its sequential latency."""
        return int(np.digitize([sequential_latency], self.class_edges)[0])

    def speedup(self, degree: int, cls: Optional[int] = None) -> float:
        """Mean speedup at ``degree``, overall or for one class."""
        self.table.degree_column(degree)  # validates the degree
        if cls is None:
            return self._overall_speedup[degree]
        if not 0 <= cls < self.n_classes:
            raise ProfileError(f"class {cls} outside [0, {self.n_classes})")
        return self._mean_speedup[cls][degree]

    def work_inflation(self, degree: int) -> float:
        """Aggregate CPU inflation V(p) = total_cpu(p) / total_cpu(1)."""
        self.table.degree_column(degree)
        return self._work_inflation[degree]

    def efficiency(self, degree: int) -> float:
        """Capacity efficiency 1 / V(p): fraction of sequential saturation
        throughput retained when every query runs at ``degree``."""
        return 1.0 / self.work_inflation(degree)

    def rows(self) -> List[Tuple]:
        """Tabular view: one row per (class, degree)."""
        out: List[Tuple] = []
        for cls in range(self.n_classes):
            for p in self.degrees:
                out.append((self.class_name(cls), p, self.speedup(p, cls)))
        return out

    def __repr__(self) -> str:
        parts = ", ".join(
            f"S({p})={self._overall_speedup[p]:.2f}" for p in self.degrees
        )
        return f"SpeedupProfile({parts})"


@dataclass(frozen=True)
class ParametricSpeedup:
    """Amdahl-plus-waste speedup model.

    ``S(p) = 1 / (serial + (1 - serial) / p + waste * (p - 1))``

    ``serial`` is the non-parallelizable fraction of a query; ``waste``
    captures per-worker overhead and speculative extra work. The implied
    work inflation is ``V(p) = p / S(p)``.
    """

    serial: float = 0.05
    waste: float = 0.01

    def __post_init__(self) -> None:
        require(0.0 <= self.serial <= 1.0, "serial must be within [0, 1]")
        require(self.waste >= 0.0, "waste must be >= 0")

    def speedup(self, degree: int) -> float:
        if degree < 1:
            raise ProfileError(f"degree must be >= 1, got {degree}")
        denom = self.serial + (1.0 - self.serial) / degree + self.waste * (degree - 1)
        return 1.0 / denom

    def work_inflation(self, degree: int) -> float:
        return degree / self.speedup(degree)

    def efficiency(self, degree: int) -> float:
        return self.speedup(degree) / degree

    @staticmethod
    def fit(degrees: Sequence[int], speedups: Sequence[float]) -> "ParametricSpeedup":
        """Least-squares fit of (serial, waste) to measured ``1/S`` values.

        ``1/S(p) = serial + (1 - serial)/p + waste*(p-1)`` is linear in
        (serial, waste) after moving the ``1/p`` term: with
        ``y = 1/S - 1/p`` and basis ``[(1 - 1/p), (p - 1)]``.
        """
        ps = np.asarray(list(degrees), dtype=np.float64)
        ss = np.asarray(list(speedups), dtype=np.float64)
        if ps.shape != ss.shape or ps.size == 0:
            raise ProfileError("degrees and speedups must be equal-length, non-empty")
        if np.any(ss <= 0):
            raise ProfileError("speedups must be positive")
        y = 1.0 / ss - 1.0 / ps
        basis = np.stack([1.0 - 1.0 / ps, ps - 1.0], axis=1)
        coeffs, *_ = np.linalg.lstsq(basis, y, rcond=None)
        serial = float(np.clip(coeffs[0], 0.0, 1.0))
        waste = float(max(coeffs[1], 0.0))
        return ParametricSpeedup(serial=serial, waste=waste)

    @staticmethod
    def fit_profile(profile: SpeedupProfile) -> "ParametricSpeedup":
        """Fit to a measured profile's overall speedup curve."""
        return ParametricSpeedup.fit(
            profile.degrees, [profile.speedup(p) for p in profile.degrees]
        )

"""Sequential service-time distribution.

Wraps an empirical sample of sequential query latencies with the
statistics the experiments report (moments, percentiles, ECDF) plus a
lognormal fit and resampling — the parametric path is used by the
simulator-only experiments (e.g. the queueing-theory validation) where
no engine is in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ProfileError
from repro.util.validation import require_int_in_range


@dataclass(frozen=True)
class LognormalFit:
    """MLE lognormal parameters of a positive sample."""

    mu: float
    sigma: float

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu + self.sigma**2 / 2.0))

    @property
    def median(self) -> float:
        return float(np.exp(self.mu))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(mean=self.mu, sigma=self.sigma, size=n)


class ServiceTimeDistribution:
    """Empirical distribution of sequential service times (seconds)."""

    def __init__(self, samples: Sequence[float]) -> None:
        arr = np.asarray(samples, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ProfileError("samples must be a non-empty 1-D sequence")
        if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
            raise ProfileError("service times must be positive and finite")
        self.samples = np.sort(arr)

    @property
    def n(self) -> int:
        return int(self.samples.shape[0])

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        return float(self.samples.std(ddof=1)) if self.n > 1 else 0.0

    @property
    def squared_cv(self) -> float:
        """Squared coefficient of variation (key queueing-delay driver)."""
        return (self.std / self.mean) ** 2 if self.mean > 0 else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.samples, q))

    def percentiles(self, qs: Sequence[float]) -> np.ndarray:
        return np.percentile(self.samples, qs)

    def ecdf(self, points: int = 100) -> Tuple[np.ndarray, np.ndarray]:
        """Return (x, F(x)) sampled at ``points`` evenly spaced quantiles."""
        require_int_in_range(points, "points", low=2)
        qs = np.linspace(0.0, 100.0, points)
        return np.percentile(self.samples, qs), qs / 100.0

    def tail_ratio(self, high: float = 99.0, low: float = 50.0) -> float:
        """Skew indicator: p``high`` / p``low`` (≈10–50 for web search)."""
        return self.percentile(high) / self.percentile(low)

    def fit_lognormal(self) -> LognormalFit:
        logs = np.log(self.samples)
        sigma = float(logs.std(ddof=1)) if self.n > 1 else 0.0
        return LognormalFit(mu=float(logs.mean()), sigma=sigma)

    def resample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Bootstrap-resample ``n`` service times from the empirical data."""
        require_int_in_range(n, "n", low=0)
        return rng.choice(self.samples, size=n, replace=True)

    def classify_tertiles(self) -> np.ndarray:
        """Label each sample 0/1/2 for short/medium/long (by tertile)."""
        t1, t2 = np.percentile(self.samples, [33.3333, 66.6667])
        return np.digitize(self.samples, [t1, t2])

    def summary(self) -> dict:
        return {
            "n": self.n,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(50) * 1e3,
            "p90_ms": self.percentile(90) * 1e3,
            "p95_ms": self.percentile(95) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "max_ms": float(self.samples[-1]) * 1e3,
            "squared_cv": self.squared_cv,
            "tail_ratio_p99_p50": self.tail_ratio(),
        }

    def __repr__(self) -> str:
        return (
            f"ServiceTimeDistribution(n={self.n}, mean={self.mean * 1e3:.3f}ms, "
            f"p99={self.percentile(99) * 1e3:.3f}ms)"
        )

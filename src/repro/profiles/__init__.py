"""Execution profiles: service-time distributions and speedup curves.

This subpackage bridges the engine and the simulator: it measures how
real (virtual-time) query executions behave at each parallelism degree,
summarizes the results as speedup/efficiency profiles, and packages
per-query cost tables the discrete-event server model replays.
"""

from repro.profiles.measurement import (
    MeasurementConfig,
    QueryCostTable,
    measure_cost_table,
)
from repro.profiles.servicetime import ServiceTimeDistribution
from repro.profiles.speedup import ParametricSpeedup, SpeedupProfile

__all__ = [
    "MeasurementConfig",
    "QueryCostTable",
    "measure_cost_table",
    "ServiceTimeDistribution",
    "ParametricSpeedup",
    "SpeedupProfile",
]

"""Measure per-query execution costs across parallelism degrees.

:func:`measure_cost_table` runs a query sample through the engine once
per degree (sharing each query's chunk trace across degrees, so every
chunk is evaluated at most once) and records latency, CPU time, and work
counters. The resulting :class:`QueryCostTable` is:

* the simulator's service-time oracle — when the modeled ISN runs query
  ``i`` at degree ``p``, it occupies ``p`` cores for ``latency[i, p]``
  virtual seconds;
* the raw material for :class:`~repro.profiles.speedup.SpeedupProfile`
  and :class:`~repro.profiles.servicetime.ServiceTimeDistribution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.engine.executor import Engine
from repro.engine.query import Query
from repro.errors import ProfileError
from repro.util.validation import require, require_int_in_range


@dataclass(frozen=True)
class MeasurementConfig:
    """Which degrees to measure and how many queries to sample."""

    degrees: Tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12)
    n_queries: int = 1_000

    def __post_init__(self) -> None:
        require(len(self.degrees) > 0, "degrees must not be empty")
        require(1 in self.degrees, "degrees must include 1 (the sequential baseline)")
        require(
            tuple(sorted(set(self.degrees))) == tuple(self.degrees),
            "degrees must be strictly increasing and unique",
        )
        require_int_in_range(self.n_queries, "n_queries", low=1)


class QueryCostTable:
    """Per-query latency/CPU measurements over a fixed set of degrees.

    ``latency[i, j]`` and ``cpu[i, j]`` are the virtual seconds for query
    ``i`` at degree ``degrees[j]``; ``chunks[i, j]`` is the number of
    chunks evaluated (whose growth with ``j`` is the speculative waste);
    ``chunks_skipped[i, j]`` counts candidate chunks bypassed by the safe
    per-chunk score bound (all zeros unless the engine enables
    ``skip_chunks``) — together the two chunk counters decompose where
    the cost model's per-chunk time goes.
    """

    def __init__(
        self,
        queries: Sequence[Query],
        degrees: Sequence[int],
        latency: np.ndarray,
        cpu: np.ndarray,
        chunks: np.ndarray,
        chunks_skipped: Optional[np.ndarray] = None,
    ) -> None:
        n, d = len(queries), len(degrees)
        if chunks_skipped is None:
            chunks_skipped = np.zeros((n, d), dtype=np.int64)
        for name, arr in (
            ("latency", latency),
            ("cpu", cpu),
            ("chunks", chunks),
            ("chunks_skipped", chunks_skipped),
        ):
            if arr.shape != (n, d):
                raise ProfileError(f"{name} must have shape ({n}, {d}), got {arr.shape}")
        self.queries = list(queries)
        self.degrees = tuple(int(p) for p in degrees)
        self.latency = np.ascontiguousarray(latency, dtype=np.float64)
        self.cpu = np.ascontiguousarray(cpu, dtype=np.float64)
        self.chunks = np.ascontiguousarray(chunks, dtype=np.int64)
        self.chunks_skipped = np.ascontiguousarray(chunks_skipped, dtype=np.int64)
        self._degree_index = {p: j for j, p in enumerate(self.degrees)}

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def degree_column(self, degree: int) -> int:
        try:
            return self._degree_index[int(degree)]
        except KeyError:
            raise ProfileError(
                f"degree {degree} not measured; available: {self.degrees}"
            ) from None

    def latency_of(self, query_index: int, degree: int) -> float:
        return float(self.latency[query_index, self.degree_column(degree)])

    def cpu_of(self, query_index: int, degree: int) -> float:
        return float(self.cpu[query_index, self.degree_column(degree)])

    def sequential_latencies(self) -> np.ndarray:
        return self.latency[:, self.degree_column(1)]

    def speedups(self, degree: int) -> np.ndarray:
        """Per-query speedup ``t(1) / t(degree)``."""
        return self.sequential_latencies() / self.latency[:, self.degree_column(degree)]

    def work_inflation(self, degree: int) -> np.ndarray:
        """Per-query CPU inflation ``cpu(degree) / cpu(1)`` (>= 1)."""
        return self.cpu[:, self.degree_column(degree)] / self.cpu[:, self.degree_column(1)]

    def mean_work_inflation(self, degree: int) -> float:
        """Aggregate inflation: total CPU at ``degree`` over total at 1.

        This (not the mean of per-query ratios) is what scales the ISN's
        saturation throughput, because capacity is about total work.
        """
        j = self.degree_column(degree)
        j1 = self.degree_column(1)
        return float(self.cpu[:, j].sum() / self.cpu[:, j1].sum())

    def subset(self, mask: np.ndarray) -> "QueryCostTable":
        """Restrict to queries selected by the boolean ``mask``."""
        indices = np.nonzero(mask)[0]
        return QueryCostTable(
            queries=[self.queries[i] for i in indices],
            degrees=self.degrees,
            latency=self.latency[indices],
            cpu=self.cpu[indices],
            chunks=self.chunks[indices],
            chunks_skipped=self.chunks_skipped[indices],
        )


def measure_cost_table(
    engine: Engine,
    queries: Sequence[Query],
    config: Optional[MeasurementConfig] = None,
) -> QueryCostTable:
    """Execute ``queries`` at every configured degree and tabulate costs."""
    config = config or MeasurementConfig()
    degrees = config.degrees
    if max(degrees) > engine.config.max_degree:
        raise ProfileError(
            f"measurement degree {max(degrees)} exceeds engine max_degree "
            f"{engine.config.max_degree}"
        )
    n = len(queries)
    latency = np.empty((n, len(degrees)), dtype=np.float64)
    cpu = np.empty((n, len(degrees)), dtype=np.float64)
    chunks = np.empty((n, len(degrees)), dtype=np.int64)
    skipped = np.empty((n, len(degrees)), dtype=np.int64)
    for i, query in enumerate(queries):
        trace = engine.trace(query)
        for j, degree in enumerate(degrees):
            result = engine.execute_trace(trace, degree)
            latency[i, j] = result.latency
            cpu[i, j] = result.cpu_time
            chunks[i, j] = result.chunks_evaluated
            skipped[i, j] = result.chunks_skipped
    return QueryCostTable(queries, degrees, latency, cpu, chunks, chunks_skipped=skipped)

"""Text substrate: term-frequency models, vocabulary, tokenization."""

from repro.text.tokenizer import Tokenizer
from repro.text.vocabulary import Vocabulary
from repro.text.zipf import ZipfMandelbrot

__all__ = ["Tokenizer", "Vocabulary", "ZipfMandelbrot"]

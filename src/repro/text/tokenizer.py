"""Minimal query/document tokenizer.

Real web search applies heavy analysis (stemming, spell-correction,
segmentation); for this reproduction the corpus is synthetic, so the
tokenizer only needs to normalize case, strip punctuation, drop stopwords,
and map words to term ids through a :class:`~repro.text.Vocabulary`.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List, Optional

from repro.text.vocabulary import Vocabulary

DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    "a an and are as at be by for from has he in is it its of on that the to was were will with".split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+")


class Tokenizer:
    """Lowercasing word tokenizer with optional stopword removal."""

    def __init__(
        self,
        stopwords: Optional[FrozenSet[str]] = None,
        min_token_length: int = 1,
    ) -> None:
        self.stopwords = DEFAULT_STOPWORDS if stopwords is None else frozenset(stopwords)
        self.min_token_length = max(1, int(min_token_length))

    def tokenize(self, text: str) -> List[str]:
        """Split ``text`` into normalized tokens."""
        tokens = _TOKEN_RE.findall(text.lower())
        return [
            token
            for token in tokens
            if len(token) >= self.min_token_length and token not in self.stopwords
        ]

    def to_term_ids(self, text: str, vocabulary: Vocabulary) -> List[int]:
        """Tokenize and map to term ids; unknown words are skipped."""
        ids: List[int] = []
        for token in self.tokenize(text):
            try:
                ids.append(vocabulary.term_id(token))
            except Exception:
                continue
        return ids

    def __repr__(self) -> str:
        return (
            f"Tokenizer(stopwords={len(self.stopwords)}, "
            f"min_token_length={self.min_token_length})"
        )

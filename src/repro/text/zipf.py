"""Zipf–Mandelbrot term-popularity model.

Web-corpus term frequencies famously follow a Zipf–Mandelbrot law:
``P(rank = r) ∝ 1 / (r + q)^s``. Posting-list lengths in the inverted
index inherit this skew, which is the structural property that makes web
query service times heavy-tailed — the property the paper's adaptive
parallelism exploits. This module provides an exact finite-support
sampler with O(log V) draws via inverse-CDF lookup.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.util.validation import require_in_range, require_int_in_range, require_positive


class ZipfMandelbrot:
    """Finite Zipf–Mandelbrot distribution over ranks ``0..size-1``.

    Parameters
    ----------
    size:
        Support size (vocabulary size). Must be >= 1.
    exponent:
        The Zipf exponent ``s`` (> 0). Web text typically has s ≈ 1.0–1.2.
    shift:
        The Mandelbrot shift ``q`` (>= 0); flattens the head of the
        distribution, matching real vocabularies better than pure Zipf.
    """

    def __init__(self, size: int, exponent: float = 1.05, shift: float = 2.7) -> None:
        require_int_in_range(size, "size", low=1)
        require_positive(float(exponent), "exponent")
        require_in_range(float(shift), "shift", low=0.0)
        self.size = size
        self.exponent = float(exponent)
        self.shift = float(shift)
        ranks = np.arange(1, size + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks + self.shift, self.exponent)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        # Guard against floating-point drift in the final bucket.
        self._cdf[-1] = 1.0

    def pmf(self, rank: int) -> float:
        """Probability of drawing ``rank`` (0-based)."""
        if not 0 <= rank < self.size:
            raise ConfigurationError(f"rank {rank} outside [0, {self.size})")
        return float(self._pmf[rank])

    def pmf_array(self) -> np.ndarray:
        """Full probability vector (copy)."""
        return self._pmf.copy()

    def expected_rank(self) -> float:
        """Mean rank under the distribution."""
        return float(np.dot(np.arange(self.size), self._pmf))

    def sample(
        self, rng: np.random.Generator, n: Optional[int] = None
    ) -> np.ndarray:
        """Draw ``n`` ranks (or a scalar when ``n`` is None)."""
        if n is None:
            u = rng.random()
            return int(np.searchsorted(self._cdf, u, side="left"))
        require_int_in_range(n, "n", low=0)
        u = rng.random(n)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def head_mass(self, top: int) -> float:
        """Total probability mass of the ``top`` most popular ranks."""
        require_int_in_range(top, "top", low=0, high=self.size)
        if top == 0:
            return 0.0
        return float(self._cdf[top - 1])

    def __repr__(self) -> str:
        return (
            f"ZipfMandelbrot(size={self.size}, exponent={self.exponent}, "
            f"shift={self.shift})"
        )

"""Synthetic vocabulary: stable term ids with generated surface strings.

The engine operates on integer term ids throughout; surface strings exist
only so examples and debugging output read like search queries. Term id
equals popularity rank (0 = most popular), which keeps corpus generation,
index statistics, and query generation aligned on one convention.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import ConfigurationError
from repro.util.validation import require_int_in_range

_CONSONANTS = "bcdfghjklmnprstvwz"
_VOWELS = "aeiou"


def _synth_word(index: int) -> str:
    """Deterministically build a pronounceable pseudo-word for a term id."""
    syllables: List[str] = []
    value = index
    while True:
        consonant = _CONSONANTS[value % len(_CONSONANTS)]
        value //= len(_CONSONANTS)
        vowel = _VOWELS[value % len(_VOWELS)]
        value //= len(_VOWELS)
        syllables.append(consonant + vowel)
        if value == 0:
            break
    return "".join(syllables)


class Vocabulary:
    """A fixed-size vocabulary mapping term ids <-> surface strings.

    Term id is the popularity rank: id 0 is the most frequent term in the
    synthetic corpus model. Strings are generated lazily and cached.
    """

    def __init__(self, size: int) -> None:
        require_int_in_range(size, "size", low=1)
        self.size = size
        self._id_to_word: Dict[int, str] = {}
        self._word_to_id: Dict[str, int] = {}

    def __len__(self) -> int:
        return self.size

    def __contains__(self, term_id: int) -> bool:
        return 0 <= term_id < self.size

    def word(self, term_id: int) -> str:
        """Surface string for ``term_id``."""
        require_int_in_range(term_id, "term_id", low=0, high=self.size - 1)
        cached = self._id_to_word.get(term_id)
        if cached is not None:
            return cached
        word = _synth_word(term_id)
        # Disambiguate the rare syllable collisions by suffixing the id.
        if word in self._word_to_id and self._word_to_id[word] != term_id:
            word = f"{word}{term_id}"
        self._id_to_word[term_id] = word
        self._word_to_id[word] = term_id
        return word

    def term_id(self, word: str) -> int:
        """Inverse lookup; only words previously produced are known."""
        try:
            return self._word_to_id[word]
        except KeyError:
            raise ConfigurationError(f"unknown word {word!r}") from None

    def words(self, term_ids: Iterator[int]) -> List[str]:
        return [self.word(t) for t in term_ids]

    def __repr__(self) -> str:
        return f"Vocabulary(size={self.size})"

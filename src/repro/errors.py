"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at an API boundary. Subclasses are
grouped by subsystem: configuration, corpus/index construction, query
execution, simulation, and analysis.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class CorpusError(ReproError):
    """Corpus construction or access failed (empty corpus, bad doc id...)."""


class IndexError_(ReproError):
    """Index construction or lookup failed.

    Named with a trailing underscore to avoid shadowing the builtin
    ``IndexError`` while still reading naturally at call sites
    (``except IndexError_``).
    """


class QueryError(ReproError):
    """A query could not be parsed or executed."""


class ExecutionError(ReproError):
    """Query execution failed (engine invariant violated, bad degree...)."""


class PolicyError(ReproError):
    """A parallelism policy was misconfigured or returned an invalid degree."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency."""


class DeadlineExceeded(SimulationError):
    """A query missed its SLO deadline and was shed or abandoned.

    Raised only when robustness machinery is asked to *enforce* a
    deadline synchronously; the simulator normally records sheds as
    metrics rather than raising, so this also serves as the taxonomy
    anchor for deadline-related accounting.
    """


class FaultInjectionError(SimulationError):
    """A fault schedule was malformed (overlapping windows, bad bounds...)."""


class AnalysisError(ReproError):
    """A statistical analysis routine received unusable input."""


class ProfileError(ReproError):
    """Speedup/service-time profile construction or lookup failed."""

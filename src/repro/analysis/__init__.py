"""Statistical analysis: percentiles, distributions, queueing theory."""

from repro.analysis.compare import PolicyComparison, find_crossover
from repro.analysis.distributions import ecdf, histogram, lognormal_mle
from repro.analysis.percentiles import P2QuantileEstimator, exact_percentile
from repro.analysis.queueing_theory import (
    erlang_c,
    mg1_mean_wait,
    mmc_mean_queue_delay,
    mmc_mean_response,
)

__all__ = [
    "PolicyComparison",
    "find_crossover",
    "ecdf",
    "histogram",
    "lognormal_mle",
    "P2QuantileEstimator",
    "exact_percentile",
    "erlang_c",
    "mg1_mean_wait",
    "mmc_mean_queue_delay",
    "mmc_mean_response",
]

"""Distribution utilities: ECDF, histograms, lognormal fits."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.util.validation import require_int_in_range


def ecdf(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted x, F(x)) with F in (0, 1]."""
    arr = np.sort(np.asarray(samples, dtype=np.float64))
    if arr.size == 0:
        raise AnalysisError("ecdf of an empty sample")
    fractions = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, fractions


def histogram(
    samples: Sequence[float], bins: int = 20, log_bins: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram densities; ``log_bins`` uses log-spaced edges (for
    heavy-tailed service times)."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise AnalysisError("histogram of an empty sample")
    require_int_in_range(bins, "bins", low=1)
    if log_bins:
        positive = arr[arr > 0]
        if positive.size == 0:
            raise AnalysisError("log-binned histogram needs positive samples")
        edges = np.logspace(
            np.log10(positive.min()), np.log10(positive.max()), bins + 1
        )
        counts, edges = np.histogram(positive, bins=edges)
    else:
        counts, edges = np.histogram(arr, bins=bins)
    return counts.astype(np.int64), edges


def lognormal_mle(samples: Sequence[float]) -> Tuple[float, float]:
    """MLE (mu, sigma) of a lognormal for a positive sample."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0 or np.any(arr <= 0):
        raise AnalysisError("lognormal fit requires a non-empty positive sample")
    logs = np.log(arr)
    sigma = float(logs.std(ddof=1)) if arr.size > 1 else 0.0
    return float(logs.mean()), sigma


def tail_index_hill(samples: Sequence[float], tail_fraction: float = 0.1) -> float:
    """Hill estimator of the tail index over the top ``tail_fraction``.

    Smaller values mean heavier tails; values <= 2 indicate infinite
    variance. Used descriptively in the workload characterization.
    """
    arr = np.sort(np.asarray(samples, dtype=np.float64))
    if arr.size < 10:
        raise AnalysisError("Hill estimator needs at least 10 samples")
    if not 0.0 < tail_fraction < 1.0:
        raise AnalysisError("tail_fraction must be in (0, 1)")
    k = max(2, int(arr.size * tail_fraction))
    tail = arr[-k:]
    if tail[0] <= 0:
        raise AnalysisError("Hill estimator requires positive tail samples")
    logs = np.log(tail)
    return 1.0 / float((logs[1:] - logs[0]).mean()) if k > 1 else float("inf")

"""Policy comparison across a load sweep: envelopes and crossovers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.sim.experiment import LoadPointSummary


def find_crossover(
    rates: Sequence[float], a: Sequence[float], b: Sequence[float]
) -> Optional[float]:
    """First rate at which curve ``a`` stops beating curve ``b``.

    Returns the linearly interpolated rate where ``a - b`` changes sign
    from negative (a better, for latency metrics lower is better) to
    positive, or None if no crossover occurs.
    """
    r = np.asarray(rates, dtype=np.float64)
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    if r.shape != diff.shape or r.size < 2:
        raise AnalysisError("rates, a, b must be equal-length with >= 2 points")
    for i in range(1, diff.size):
        if diff[i - 1] < 0 <= diff[i]:
            # Linear interpolation of the zero crossing.
            span = diff[i] - diff[i - 1]
            fraction = -diff[i - 1] / span if span != 0 else 0.0
            return float(r[i - 1] + fraction * (r[i] - r[i - 1]))
    return None


@dataclass
class PolicyComparison:
    """Aligned load-sweep results for several policies.

    ``summaries[policy_name]`` is a list of :class:`LoadPointSummary`
    at the shared ``rates`` grid.
    """

    rates: List[float]
    summaries: Dict[str, List[LoadPointSummary]]

    def __post_init__(self) -> None:
        for name, rows in self.summaries.items():
            if len(rows) != len(self.rates):
                raise AnalysisError(
                    f"policy {name!r} has {len(rows)} points, expected "
                    f"{len(self.rates)}"
                )

    def metric(self, policy: str, attribute: str) -> np.ndarray:
        try:
            rows = self.summaries[policy]
        except KeyError:
            raise AnalysisError(f"unknown policy {policy!r}") from None
        return np.asarray([getattr(r, attribute) for r in rows], dtype=np.float64)

    def p99(self, policy: str) -> np.ndarray:
        return self.metric(policy, "p99_latency")

    def envelope_p99(self, policies: Optional[Sequence[str]] = None) -> np.ndarray:
        """Pointwise best (minimum) P99 over the given policies."""
        names = list(policies) if policies is not None else list(self.summaries)
        stacked = np.stack([self.p99(name) for name in names])
        return stacked.min(axis=0)

    def regret_vs_envelope(
        self, policy: str, envelope_policies: Sequence[str]
    ) -> np.ndarray:
        """Relative P99 excess of ``policy`` over the fixed-policy envelope.

        The paper's headline claim is that adaptive tracks this envelope;
        small regret across all loads is the quantitative version.
        """
        own = self.p99(policy)
        envelope = self.envelope_p99(envelope_policies)
        return own / envelope - 1.0

    def crossover(
        self, policy_a: str, policy_b: str, attribute: str = "p99_latency"
    ) -> Optional[float]:
        """Rate at which ``policy_a`` stops beating ``policy_b``."""
        return find_crossover(
            self.rates, self.metric(policy_a, attribute), self.metric(policy_b, attribute)
        )

    def capacity_at_slo(self, policy: str, slo: float) -> Optional[float]:
        """Highest swept rate whose P99 meets ``slo`` (None if none does).

        Scans from the high end so a dip back under the SLO past
        saturation (noise) is not rewarded.
        """
        p99 = self.p99(policy)
        for i in range(len(self.rates) - 1, -1, -1):
            if p99[i] <= slo and all(p99[j] <= slo for j in range(i + 1)):
                return float(self.rates[i])
        return None

"""Percentile estimation: exact and streaming.

``exact_percentile`` wraps numpy with input validation; the
:class:`P2QuantileEstimator` implements the classic P² algorithm (Jain &
Chlamtac, 1985) for O(1)-memory streaming quantiles — useful for
long simulations where retaining every latency sample is wasteful. Tests
check it against the exact estimator.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.util.validation import require_in_range


def exact_percentile(samples: Sequence[float], q: float) -> float:
    """Exact percentile (linear interpolation), q in [0, 100]."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size == 0:
        raise AnalysisError("cannot take a percentile of an empty sample")
    require_in_range(q, "q", low=0.0, high=100.0)
    return float(np.percentile(arr, q))


class P2QuantileEstimator:
    """Streaming quantile via the P² algorithm (five markers, O(1) memory)."""

    def __init__(self, quantile: float) -> None:
        require_in_range(
            quantile, "quantile", low=0.0, high=1.0,
            low_inclusive=False, high_inclusive=False,
        )
        self.quantile = float(quantile)
        self._initial: List[float] = []
        self._count = 0
        # Marker state, established after the first five observations.
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments: List[float] = []

    @property
    def count(self) -> int:
        return self._count

    def add(self, value: float) -> None:
        """Observe one sample."""
        value = float(value)
        self._count += 1
        if self._count <= 5:
            self._initial.append(value)
            if self._count == 5:
                self._initialize()
            return
        self._update(value)

    def add_many(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def _initialize(self) -> None:
        q = self.quantile
        self._heights = sorted(self._initial)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def _update(self, value: float) -> None:
        heights, positions = self._heights, self._positions
        # Locate the cell containing the new observation; extend extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                direction = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, direction)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, direction)
                positions[i] += direction

    def _parabolic(self, i: int, direction: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + direction / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + direction)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - direction)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, direction: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(direction)
        return h[i] + direction * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current quantile estimate."""
        if self._count == 0:
            raise AnalysisError("no samples observed")
        if self._count <= 5:
            # Fall back to the exact small-sample quantile.
            return exact_percentile(self._initial, self.quantile * 100.0)
        return self._heights[2]

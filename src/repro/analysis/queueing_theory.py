"""Classic queueing formulas used to validate the simulator.

Experiment E11 runs the discrete-event ISN model with exponential
service times at degree 1 — which makes it an M/M/c queue — and checks
the measured mean queueing delay against Erlang-C. An M/G/1 bound and
the Allen–Cunneen M/G/c approximation are provided for the
general-service sanity checks.
"""

from __future__ import annotations

from repro.errors import AnalysisError


def _validate_mmc(arrival_rate: float, service_rate: float, servers: int) -> float:
    if arrival_rate <= 0 or service_rate <= 0:
        raise AnalysisError("rates must be positive")
    if servers < 1:
        raise AnalysisError("servers must be >= 1")
    rho = arrival_rate / (servers * service_rate)
    if rho >= 1.0:
        raise AnalysisError(f"unstable queue: utilization {rho:.3f} >= 1")
    return rho


def erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Probability an arriving query must wait (M/M/c).

    Computed with the numerically stable iterative Erlang-B recursion,
    then converted to Erlang-C.
    """
    _validate_mmc(arrival_rate, service_rate, servers)
    offered = arrival_rate / service_rate  # in Erlangs
    # Erlang-B via recursion: B(0) = 1; B(k) = a*B(k-1) / (k + a*B(k-1)).
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered * blocking / (k + offered * blocking)
    rho = offered / servers
    return blocking / (1.0 - rho + rho * blocking)


def mmc_mean_queue_delay(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """Mean waiting time in queue for M/M/c (seconds)."""
    rho = _validate_mmc(arrival_rate, service_rate, servers)
    wait_probability = erlang_c(arrival_rate, service_rate, servers)
    return wait_probability / (servers * service_rate * (1.0 - rho))


def mmc_mean_response(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean response time (wait + service) for M/M/c."""
    return mmc_mean_queue_delay(arrival_rate, service_rate, servers) + 1.0 / service_rate


def mg1_mean_wait(arrival_rate: float, mean_service: float, scv: float) -> float:
    """Pollaczek–Khinchine mean wait for M/G/1.

    ``scv`` is the squared coefficient of variation of service time.
    """
    if arrival_rate <= 0 or mean_service <= 0 or scv < 0:
        raise AnalysisError("invalid M/G/1 parameters")
    rho = arrival_rate * mean_service
    if rho >= 1.0:
        raise AnalysisError(f"unstable queue: utilization {rho:.3f} >= 1")
    return rho * mean_service * (1.0 + scv) / (2.0 * (1.0 - rho))


def littles_law_gap(
    n_observed: int,
    window: float,
    mean_latency: float,
    mean_in_system: float,
) -> float:
    """Relative gap between L and λ·W (Little's law).

    For any stable queueing system, time-average population L equals
    throughput λ times mean sojourn W. Given a measurement window's
    completion count, mean latency, and independently measured mean
    population, returns ``|L − λW| / max(L, λW)`` — a consistency check
    on a simulation's bookkeeping (0 for a perfect, stationary window).
    """
    if window <= 0 or n_observed < 0 or mean_latency < 0 or mean_in_system < 0:
        raise AnalysisError("invalid Little's-law inputs")
    lam_w = (n_observed / window) * mean_latency
    denominator = max(mean_in_system, lam_w)
    if denominator == 0:
        return 0.0
    return abs(mean_in_system - lam_w) / denominator


def mgc_mean_wait_allen_cunneen(
    arrival_rate: float, mean_service: float, scv: float, servers: int
) -> float:
    """Allen–Cunneen approximation of mean wait for M/G/c.

    ``W ≈ W_MMc * (1 + scv) / 2`` — exact for exponential service, a good
    engineering approximation otherwise. Used as a sanity band, not an
    exact target.
    """
    if mean_service <= 0:
        raise AnalysisError("mean_service must be positive")
    service_rate = 1.0 / mean_service
    base = mmc_mean_queue_delay(arrival_rate, service_rate, servers)
    return base * (1.0 + scv) / 2.0

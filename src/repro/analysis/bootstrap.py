"""Bootstrap confidence intervals for latency statistics.

Percentile statistics of heavy-tailed latency samples are themselves
noisy; the harness uses nonparametric bootstrap CIs to state, e.g., that
an adaptive-vs-sequential P99 difference is outside sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import AnalysisError
from repro.util.validation import require_in_range, require_int_in_range


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided bootstrap interval around a point estimate."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.estimate:.6g} "
            f"[{self.low:.6g}, {self.high:.6g}] @{self.confidence:.0%}"
        )


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 1_000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Percentile-method bootstrap CI for an arbitrary statistic."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1 or arr.size < 2:
        raise AnalysisError("need a 1-D sample with at least 2 observations")
    require_int_in_range(n_resamples, "n_resamples", low=10)
    require_in_range(confidence, "confidence", low=0.5, high=0.9999)
    rng = rng or np.random.default_rng(0)

    estimates = np.empty(n_resamples, dtype=np.float64)
    n = arr.size
    for i in range(n_resamples):
        estimates[i] = statistic(arr[rng.integers(0, n, size=n)])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(estimates, [100 * alpha, 100 * (1 - alpha)])
    return ConfidenceInterval(
        estimate=float(statistic(arr)),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def percentile_ci(
    samples: Sequence[float],
    q: float,
    n_resamples: int = 1_000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Bootstrap CI for the q-th percentile (q in [0, 100])."""
    require_in_range(q, "q", low=0.0, high=100.0)
    return bootstrap_ci(
        samples,
        lambda arr: float(np.percentile(arr, q)),
        n_resamples=n_resamples,
        confidence=confidence,
        rng=rng,
    )


def mean_ci(
    samples: Sequence[float],
    n_resamples: int = 1_000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> ConfidenceInterval:
    """Bootstrap CI for the sample mean."""
    return bootstrap_ci(
        samples,
        lambda arr: float(arr.mean()),
        n_resamples=n_resamples,
        confidence=confidence,
        rng=rng,
    )


def difference_significant(
    a: Sequence[float],
    b: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    n_resamples: int = 1_000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> bool:
    """True when the bootstrap CI of statistic(a) − statistic(b) excludes 0.

    Samples are resampled independently (unpaired comparison).
    """
    arr_a = np.asarray(a, dtype=np.float64)
    arr_b = np.asarray(b, dtype=np.float64)
    if arr_a.size < 2 or arr_b.size < 2:
        raise AnalysisError("both samples need at least 2 observations")
    rng = rng or np.random.default_rng(0)
    diffs = np.empty(n_resamples, dtype=np.float64)
    for i in range(n_resamples):
        resample_a = arr_a[rng.integers(0, arr_a.size, size=arr_a.size)]
        resample_b = arr_b[rng.integers(0, arr_b.size, size=arr_b.size)]
        diffs[i] = statistic(resample_a) - statistic(resample_b)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(diffs, [100 * alpha, 100 * (1 - alpha)])
    return not (low <= 0.0 <= high)

"""Sim-vs-live parity: decision sequences and tolerance bands.

Two layers of evidence that the live runtime is the simulator's model
on a different clock:

1. **Exact decision parity** (deterministic). :func:`run_scripted_live`
   replays a :class:`~repro.sim.script.ScriptedArrival` script through
   a :class:`~repro.runtime.node.ServingNode` on a manually-advanced
   :class:`~repro.runtime.clock.FakeClock`, mirroring the simulator's
   horizon-then-bounded-drain schedule. :func:`decision_events`
   flattens the traced lifecycle of either run into the ordered
   sequence of (admit | shed | degree_grant | escalate) decisions with
   their timestamps and attributes; :func:`compare_decision_sequences`
   demands bit-for-bit equality. Because both hostings execute the
   same model arithmetic in the same order, any divergence is a real
   behavioral difference, not jitter.

2. **Tolerance-band validation** (statistical). A wall-clock smoke run
   cannot be bit-identical — the event loop adds real jitter — so
   :func:`tolerance_report` compares a live load point's summary
   against the simulator's prediction at the matched load point,
   metric by metric, against declared bands (relative for latencies
   and throughput, absolute for rates in [0, 1]); the result is a
   machine-readable dict suitable for a CI artifact.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.spans import (
    EVENT_ADMIT,
    EVENT_DEGREE_GRANT,
    EVENT_ESCALATE,
    EVENT_SHED,
    QueryTrace,
    Tracer,
)
from repro.policies.base import ParallelismPolicy
from repro.runtime.clock import FakeClock
from repro.runtime.node import ServingConfig, ServingNode
from repro.sim.experiment import LoadPointConfig, LoadPointSummary
from repro.sim.oracle import ServiceOracle
from repro.sim.script import ScriptedArrival

__all__ = [
    "DEFAULT_TOLERANCES",
    "DecisionEvent",
    "decision_events",
    "compare_decision_sequences",
    "run_scripted_live",
    "tolerance_report",
]

#: One kernel decision: (trace_id, query_index, event name, time_s,
#: sorted attribute items). Two runs are in parity iff their sequences
#: of these tuples are equal.
DecisionEvent = Tuple[int, int, str, float, Tuple[Tuple[str, Any], ...]]

_DECISION_NAMES = (EVENT_ADMIT, EVENT_SHED, EVENT_DEGREE_GRANT, EVENT_ESCALATE)

#: Default tolerance bands for wall-clock smoke validation. Relative
#: bands (fraction of the sim value) for time-shaped metrics; absolute
#: bands for metrics already in [0, 1]. Wide enough for a loaded
#: single-core CI runner at dilation >= 5, tight enough that a wrong
#: decision path (shedding, degree misgrants) lands far outside.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "p50_latency": 0.35,
    "p99_latency": 0.50,
    "mean_latency": 0.35,
    "throughput": 0.15,
    "shed_rate": 0.10,  # absolute
    "slo_attainment": 0.15,  # absolute
}

#: Metrics compared with absolute deviation (already dimensionless
#: fractions); everything else is relative.
_ABSOLUTE_METRICS = frozenset({"shed_rate", "slo_attainment"})


def decision_events(traces: Sequence[QueryTrace]) -> List[DecisionEvent]:
    """Flatten traced queries into the ordered decision sequence.

    Traces are ordered by ``trace_id`` — the server assigns ids in
    submission order, so the sequence is deterministic and comparable
    across hostings of the same script.
    """
    events: List[DecisionEvent] = []
    for trace in sorted(traces, key=lambda t: t.trace_id):
        for event in trace.root.events:
            if event.name in _DECISION_NAMES:
                attrs = tuple(sorted(event.attrs.items()))
                events.append(
                    (trace.trace_id, trace.query_index, event.name,
                     event.time_s, attrs)
                )
    return events


def compare_decision_sequences(
    left: Sequence[DecisionEvent], right: Sequence[DecisionEvent]
) -> Dict[str, Any]:
    """Compare two decision sequences for exact equality.

    Returns ``{"identical": bool, "n_left": int, "n_right": int,
    "first_divergence": None | {"index", "left", "right"}}`` — the
    first differing position makes parity failures debuggable instead
    of a bare assert.
    """
    first_divergence: Optional[Dict[str, Any]] = None
    for index, (a, b) in enumerate(zip(left, right)):
        if a != b:
            first_divergence = {"index": index, "left": a, "right": b}
            break
    if first_divergence is None and len(left) != len(right):
        index = min(len(left), len(right))
        first_divergence = {
            "index": index,
            "left": left[index] if index < len(left) else None,
            "right": right[index] if index < len(right) else None,
        }
    return {
        "identical": first_divergence is None,
        "n_left": len(left),
        "n_right": len(right),
        "first_divergence": first_divergence,
    }


def run_scripted_live(
    oracle: ServiceOracle,
    policy: ParallelismPolicy,
    config: LoadPointConfig,
    script: Sequence[ScriptedArrival],
    controllers: Sequence[object] = (),
    tracer: Optional[Tracer] = None,
    engine_search: Optional[Any] = None,
) -> Tuple[LoadPointSummary, ServingNode]:
    """Replay ``script`` through the live node on a :class:`FakeClock`.

    The schedule mirrors :func:`~repro.sim.script.run_scripted_point`
    exactly — run to the horizon (events at the boundary fire), then
    bounded drain while jobs remain — so a sim run and this live run
    on the same script are comparable event for event. No wall time
    passes: the clock only moves when this function advances it.
    """
    clock = FakeClock()
    node = ServingNode(
        clock,
        oracle,
        policy,
        ServingConfig(
            n_cores=config.n_cores,
            horizon_s=config.duration,
            warmup_s=config.warmup,
            deadline_s=config.deadline,
            max_queue_length=config.max_queue_length,
            clamp_to_plan=config.clamp_to_plan,
        ),
        engine_search=engine_search,
        tracer=tracer,
    )
    node.attach_controllers(controllers, horizon_s=config.duration)
    for arrival in script:
        clock.schedule_at(
            arrival.time_s,
            lambda a=arrival: node.submit(a.query_index, query_class=a.query_class),
        )
    clock.advance_to(config.duration)
    drain_limit = config.duration * 10.0
    while (
        node.server.n_running or node.server.queue_length
    ) and clock.now < drain_limit and clock.pending:
        next_event = clock.next_event_s()
        assert next_event is not None
        clock.advance_to(next_event)
    return node.summary(config.rate), node


def _deviation(metric: str, sim_value: float, live_value: float) -> float:
    """Deviation of live from sim: absolute for [0, 1] metrics,
    relative (to the sim value, floored to dodge divide-by-tiny)
    otherwise."""
    if metric in _ABSOLUTE_METRICS:
        return abs(live_value - sim_value)
    return abs(live_value - sim_value) / max(abs(sim_value), 1e-12)


def tolerance_report(
    sim_summary: LoadPointSummary,
    live_summary: LoadPointSummary,
    tolerances: Optional[Mapping[str, float]] = None,
) -> Dict[str, Any]:
    """Compare a live load point against its simulator prediction.

    Metrics where both sides are NaN (e.g. ``slo_attainment`` with no
    SLO configured) count as within band. Returns a machine-readable
    dict: per-metric sim/live values, deviation, band, and pass flag,
    plus an overall ``ok``.
    """
    bands = dict(DEFAULT_TOLERANCES if tolerances is None else tolerances)
    metrics: Dict[str, Any] = {}
    ok = True
    for metric, band in sorted(bands.items()):
        sim_value = float(getattr(sim_summary, metric))
        live_value = float(getattr(live_summary, metric))
        if math.isnan(sim_value) and math.isnan(live_value):
            entry = {
                "sim": None, "live": None, "deviation": 0.0,
                "band": band, "kind": "skipped-nan", "ok": True,
            }
        else:
            deviation = _deviation(metric, sim_value, live_value)
            entry = {
                "sim": sim_value,
                "live": live_value,
                "deviation": deviation,
                "band": band,
                "kind": ("absolute" if metric in _ABSOLUTE_METRICS
                         else "relative"),
                "ok": bool(deviation <= band),
            }
        ok = ok and bool(entry["ok"])
        metrics[metric] = entry
    return {
        "ok": ok,
        "policy": sim_summary.policy,
        "rate": sim_summary.rate,
        "n_observed_sim": sim_summary.observed,
        "n_observed_live": live_summary.observed,
        "metrics": metrics,
    }
